//! Cross-crate integration: the whole stack — simulator, Ω, consensus,
//! replicated log — exercised together in paper-shaped scenarios.

use std::collections::BTreeMap;

use consensus::checker::{check_consensus_safety, check_log_consistency, DecisionRecord};
use consensus::{Consensus, ConsensusEvent, ConsensusParams, ReplicatedLog};
use lls_primitives::{Instant, ProcessId};
use netsim::{SimBuilder, SystemSParams, Topology};
use omega::spec::{stabilization, tail_cut, LeaderRecord};
use omega::{CommEffOmega, OmegaParams};

/// The full pipeline of the paper in one run: (1) Ω elects a leader
/// communication-efficiently in system S; (2) consensus, driven by that Ω,
/// decides; (3) both theorems' checkers pass on the same trace style.
#[test]
fn omega_then_consensus_pipeline() {
    let n = 5;
    let topo = Topology::system_s(n, ProcessId(2), SystemSParams::default());

    // Stage 1: bare Ω.
    let mut sim = SimBuilder::new(n)
        .seed(1)
        .topology(topo.clone())
        .build_with(|env| CommEffOmega::new(env, OmegaParams::default()));
    sim.run_until(Instant::from_ticks(50_000));
    let trace: Vec<LeaderRecord> = sim
        .outputs()
        .iter()
        .map(|e| LeaderRecord {
            at: e.at,
            process: e.process,
            leader: e.output,
        })
        .collect();
    let correct: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
    let stab = stabilization(&trace, &correct).expect("Ω must hold");
    assert!(stab.at <= tail_cut(sim.now(), 20));
    let omega_leader = stab.leader;

    // Stage 2: consensus over the same topology and seed elects the same
    // kind of leader and decides a proposed value.
    let mut csim = SimBuilder::new(n)
        .seed(1)
        .topology(topo)
        .build_with(|env| Consensus::new(env, ConsensusParams::default(), Some(env.id().0 as u64)));
    csim.run_until(Instant::from_ticks(80_000));
    let ds: Vec<DecisionRecord<u64>> = csim
        .outputs()
        .iter()
        .filter_map(|e| match &e.output {
            ConsensusEvent::Decided(v) => Some(DecisionRecord {
                at: e.at,
                process: e.process,
                value: *v,
            }),
            _ => None,
        })
        .collect();
    let proposals: Vec<u64> = (0..n as u64).collect();
    check_consensus_safety(&ds, &proposals).unwrap();
    assert_eq!(ds.len(), n);
    // The embedded Ω and the bare Ω are the same code over the same world:
    // identical seeds and topologies elect the same leader.
    assert_eq!(csim.node(ProcessId(0)).omega().leader(), omega_leader);
}

/// Determinism across the whole stack: identical configuration ⇒ identical
/// outputs, message counts and decisions, crate boundaries notwithstanding.
#[test]
fn full_stack_runs_are_reproducible() {
    let run = || {
        let n = 4;
        let topo = Topology::system_s(n, ProcessId(1), SystemSParams::default());
        let mut sim = SimBuilder::new(n)
            .seed(99)
            .topology(topo)
            .crash_at(ProcessId(3), Instant::from_ticks(7_000))
            .request_at(Instant::from_ticks(12_000), ProcessId(1), 5u64)
            .build_with(|env| ReplicatedLog::<u64>::new(env, ConsensusParams::default()));
        sim.run_until(Instant::from_ticks(40_000));
        let outs: Vec<String> = sim
            .outputs()
            .iter()
            .map(|e| format!("{}:{}:{:?}", e.at.ticks(), e.process, e.output))
            .collect();
        (outs, sim.stats().total_sent())
    };
    assert_eq!(run(), run());
}

/// The replicated log stays consistent even when the Ω layer churns: run
/// with an aggressive pre-GST phase so leadership changes several times
/// while commands are in flight.
#[test]
fn log_safety_through_leadership_churn() {
    let n = 5;
    let topo = Topology::system_s(
        n,
        ProcessId(4),
        SystemSParams {
            gst: 20_000, // long chaos phase
            pre_gst_loss: 0.8,
            mesh_loss: 0.4,
            ..SystemSParams::default()
        },
    );
    let mut builder = SimBuilder::new(n).seed(13).topology(topo);
    // Blast commands at several would-be leaders during the chaos.
    for k in 0..10u64 {
        for p in 0..n as u32 {
            builder = builder.request_at(Instant::from_ticks(1_000 + 700 * k), ProcessId(p), k);
        }
    }
    let mut sim =
        builder.build_with(|env| ReplicatedLog::<u64>::new(env, ConsensusParams::default()));
    sim.run_until(Instant::from_ticks(150_000));

    let logs: Vec<BTreeMap<u64, Option<u64>>> = (0..n as u32)
        .map(|p| sim.node(ProcessId(p)).chosen_log())
        .collect();
    check_log_consistency(&logs).unwrap();
    // Liveness: after GST every submitted command value appears somewhere.
    let union: std::collections::BTreeSet<u64> = logs
        .iter()
        .flat_map(|l| l.values().flatten().copied())
        .collect();
    for k in 0..10u64 {
        assert!(union.contains(&k), "command {k} lost; union={union:?}");
    }
}

/// Ω's communication efficiency survives having the consensus machinery
/// stacked on top: after the last decision, the only steady senders are the
/// leader's heartbeats.
#[test]
fn stacked_protocol_still_quiesces_to_the_leader() {
    let n = 4;
    let topo = Topology::system_s(n, ProcessId(0), SystemSParams::default());
    let mut sim = SimBuilder::new(n)
        .seed(5)
        .topology(topo)
        .build_with(|env| Consensus::new(env, ConsensusParams::default(), Some(env.id().0 as u64)));
    sim.run_until(Instant::from_ticks(120_000));
    // Everybody decided…
    for p in (0..n as u32).map(ProcessId) {
        assert!(sim.node(p).decision().is_some(), "{p} undecided");
    }
    // …and the tail sender set is exactly the Ω leader.
    let cut = tail_cut(sim.now(), 10);
    let senders = sim.stats().senders_since(cut);
    let leader = sim.node(ProcessId(0)).omega().leader();
    assert_eq!(senders, vec![leader], "tail senders: {senders:?}");
}
