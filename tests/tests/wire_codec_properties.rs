//! Properties of the wire codec shared by every message type that crosses a
//! TCP connection in `wirenet`:
//!
//! 1. **Roundtrip** — encoding any Ω, consensus, RSM, or KV message into a
//!    frame and deframing + decoding it yields the original value.
//! 2. **Corruption is detected** — flipping any single bit of a frame's
//!    payload (version, body, or checksum) makes decoding fail with an
//!    error; it never panics and never misparses.
//! 3. **Truncation is detected** — a frame cut short decodes to an error.
//! 4. **Resync** — after a corrupted frame, the deframer stays on frame
//!    boundaries and the following good frames decode intact.
//! 5. **No panic on garbage** — arbitrary bytes fed to the deframer in
//!    arbitrary chunkings produce values or errors, never a panic.

use consensus::{Ballot, ConsensusMsg, Entry, RsmMsg};
use kvstore::{ClientId, KvCmd, KvResponse, Tagged};
use lls_primitives::wire::{decode_frame, encode_frame, Deframer, Wire};
use lls_primitives::ProcessId;
use omega::OmegaMsg;
use proptest::prelude::*;

/// The frame's 4-byte length prefix (everything before the checksummed
/// region).
const LEN_PREFIX: usize = 4;

fn omega_msg() -> impl Strategy<Value = OmegaMsg> {
    prop_oneof![
        any::<u64>().prop_map(|counter| OmegaMsg::Alive { counter }),
        any::<u64>().prop_map(|counter| OmegaMsg::Accuse { counter }),
    ]
}

fn ballot() -> impl Strategy<Value = Ballot> {
    (any::<u64>(), 0u32..16).prop_map(|(round, p)| Ballot::new(round, ProcessId(p)))
}

/// Short ASCII strings, empty included (the codec must not care what the
/// bytes spell).
fn small_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(b'a'..=b'z', 0..5).prop_map(|v| String::from_utf8(v).expect("ascii"))
}

fn kv_cmd() -> impl Strategy<Value = KvCmd> {
    prop_oneof![
        (small_string(), small_string()).prop_map(|(k, v)| KvCmd::put(k, v)),
        small_string().prop_map(KvCmd::delete),
        (
            small_string(),
            proptest::option::of(small_string()),
            small_string()
        )
            .prop_map(|(k, e, v)| KvCmd::cas(k, e.as_deref(), v)),
    ]
}

fn tagged() -> impl Strategy<Value = Tagged<KvCmd>> {
    (any::<u64>(), any::<u64>(), kv_cmd()).prop_map(|(client, seq, cmd)| Tagged {
        client: ClientId(client),
        seq,
        cmd,
    })
}

fn kv_response() -> impl Strategy<Value = KvResponse> {
    prop_oneof![
        proptest::option::of(small_string()).prop_map(|previous| KvResponse::Applied { previous }),
        proptest::option::of(small_string()).prop_map(|actual| KvResponse::CasFailed { actual }),
        Just(KvResponse::Duplicate),
    ]
}

fn entry() -> impl Strategy<Value = Entry<Tagged<KvCmd>>> {
    prop_oneof![Just(Entry::Noop), tagged().prop_map(Entry::Cmd)]
}

fn consensus_msg() -> impl Strategy<Value = ConsensusMsg<Tagged<KvCmd>>> {
    prop_oneof![
        omega_msg().prop_map(ConsensusMsg::Omega),
        ballot().prop_map(|b| ConsensusMsg::Prepare { b }),
        (ballot(), proptest::option::of((ballot(), tagged())))
            .prop_map(|(b, accepted)| ConsensusMsg::Promise { b, accepted }),
        (ballot(), tagged()).prop_map(|(b, v)| ConsensusMsg::Accept { b, v }),
        ballot().prop_map(|b| ConsensusMsg::Accepted { b }),
        (ballot(), ballot()).prop_map(|(b, higher)| ConsensusMsg::Nack { b, higher }),
        tagged().prop_map(|v| ConsensusMsg::Decide { v }),
        Just(ConsensusMsg::DecideAck),
    ]
}

fn rsm_msg() -> impl Strategy<Value = RsmMsg<Tagged<KvCmd>>> {
    prop_oneof![
        omega_msg().prop_map(RsmMsg::Omega),
        (ballot(), any::<u64>()).prop_map(|(b, from_slot)| RsmMsg::Prepare { b, from_slot }),
        (
            ballot(),
            proptest::collection::vec((any::<u64>(), ballot(), entry()), 0..4),
            any::<u64>(),
        )
            .prop_map(|(b, accepted, low_slot)| RsmMsg::Promise {
                b,
                accepted,
                low_slot
            }),
        (ballot(), any::<u64>(), entry()).prop_map(|(b, slot, entry)| RsmMsg::Accept {
            b,
            slot,
            entry
        }),
        (ballot(), any::<u64>()).prop_map(|(b, slot)| RsmMsg::Accepted { b, slot }),
        (ballot(), ballot()).prop_map(|(b, higher)| RsmMsg::Nack { b, higher }),
        (any::<u64>(), entry()).prop_map(|(slot, entry)| RsmMsg::Decide { slot, entry }),
        any::<u64>().prop_map(|slot| RsmMsg::DecideAck { slot }),
    ]
}

/// Frame → deframe → decode must reproduce the original exactly.
fn assert_roundtrip<M: Wire + PartialEq + std::fmt::Debug>(msg: &M) -> Result<(), TestCaseError> {
    let frame = encode_frame(msg);
    let mut d = Deframer::new();
    d.extend(&frame);
    let payload = d
        .next_frame()
        .expect("well-formed frame")
        .expect("complete frame");
    prop_assert_eq!(&decode_frame::<M>(&payload).expect("valid payload"), msg);
    prop_assert_eq!(d.buffered(), 0);
    // The raw body codec agrees with the framed path.
    prop_assert_eq!(&M::from_bytes(&msg.to_bytes()).expect("raw roundtrip"), msg);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn omega_messages_roundtrip(msg in omega_msg()) {
        assert_roundtrip(&msg)?;
    }

    #[test]
    fn consensus_messages_roundtrip(msg in consensus_msg()) {
        assert_roundtrip(&msg)?;
    }

    #[test]
    fn rsm_messages_roundtrip(msg in rsm_msg()) {
        assert_roundtrip(&msg)?;
    }

    #[test]
    fn kv_payloads_roundtrip(t in tagged(), r in kv_response()) {
        assert_roundtrip(&t)?;
        assert_roundtrip(&r)?;
    }

    #[test]
    fn single_bit_flip_is_always_detected(msg in rsm_msg(), pick in any::<u64>()) {
        // Flip one bit anywhere in the checksummed region (version byte,
        // body, or the CRC itself): CRC32 detects every single-bit error.
        let frame = encode_frame(&msg);
        let payload_len = frame.len() - LEN_PREFIX;
        let bit = pick as usize % (payload_len * 8);
        let mut payload = frame[LEN_PREFIX..].to_vec();
        payload[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(decode_frame::<RsmMsg<Tagged<KvCmd>>>(&payload).is_err());
    }

    #[test]
    fn truncated_frames_are_rejected(msg in rsm_msg(), pick in any::<u64>()) {
        let frame = encode_frame(&msg);
        let payload = &frame[LEN_PREFIX..];
        let cut = pick as usize % payload.len();
        prop_assert!(decode_frame::<RsmMsg<Tagged<KvCmd>>>(&payload[..cut]).is_err());
    }

    #[test]
    fn deframer_resyncs_after_a_corrupted_frame(
        a in rsm_msg(),
        b in rsm_msg(),
        c in rsm_msg(),
        pick in any::<u64>(),
    ) {
        // Corrupt one payload byte of the middle frame (not its length
        // prefix, which is what keeps the stream alignable).
        let mut bad = encode_frame(&b);
        let i = LEN_PREFIX + pick as usize % (bad.len() - LEN_PREFIX);
        bad[i] ^= 0xFF;

        let mut stream = encode_frame(&a);
        stream.extend_from_slice(&bad);
        stream.extend_from_slice(&encode_frame(&c));

        let mut d = Deframer::new();
        d.extend(&stream);
        let first = d.next_frame().expect("frame 1").expect("complete");
        prop_assert_eq!(decode_frame::<RsmMsg<Tagged<KvCmd>>>(&first).expect("frame 1 intact"), a);
        let middle = d.next_frame().expect("length prefix intact").expect("complete");
        prop_assert!(decode_frame::<RsmMsg<Tagged<KvCmd>>>(&middle).is_err());
        let last = d.next_frame().expect("frame 3").expect("complete");
        prop_assert_eq!(decode_frame::<RsmMsg<Tagged<KvCmd>>>(&last).expect("frame 3 intact"), c);
        prop_assert_eq!(d.buffered(), 0);
    }

    #[test]
    fn arbitrary_bytes_never_panic(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
        chunk in 1usize..32,
    ) {
        // Feed garbage through the full receive path in arbitrary chunkings:
        // every outcome is a value or an error, never a panic or a hang.
        let mut d = Deframer::new();
        for piece in bytes.chunks(chunk) {
            d.extend(piece);
            loop {
                match d.next_frame() {
                    Ok(Some(payload)) => {
                        let _ = decode_frame::<RsmMsg<Tagged<KvCmd>>>(&payload);
                    }
                    Ok(None) => break,
                    Err(_) => break, // fatal framing error: a real reader drops the connection
                }
            }
        }
    }
}
