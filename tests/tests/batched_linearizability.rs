//! Linearizability of the batched/pipelined KV path, on every substrate.
//!
//! Three concurrent clients write an interleaved stream of unique values
//! to one register while the log runs with batching and pipelining
//! enabled (`max_batch = 8`, `pipeline_depth = 4`), so many ops ride in
//! multi-command slots. The decided slot sequence is the linearization
//! witness, and the history is linearizable iff:
//!
//! 1. every replica applies the *identical* total order of operations,
//!    each exactly once (batches unfold the same way everywhere);
//! 2. the order respects each client's session order (`seq` increasing);
//! 3. every reported response matches a sequential replay of the witness
//!    order — for a register of unique writes, each op's `previous` must
//!    be exactly the value of its predecessor in the order;
//! 4. the order respects real time: an op that committed before another
//!    was issued must precede it (checked on netsim, where both issue
//!    and commit times are exact ticks).
//!
//! The same workload and checker run on the deterministic simulator, the
//! thread mesh, and real TCP sockets.

use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration as StdDuration, Instant as StdInstant};

use consensus::{BatchParams, ConsensusParams};
use kvstore::{ClientId, KvCmd, KvEvent, KvReplica, KvResponse, Tagged};
use lls_primitives::{Duration, Instant, ProcessId};
use netsim::{SimBuilder, Topology};
use threadnet::{Cluster, NetConfig};
use wirenet::{BackoffConfig, WireCluster, WireConfig};

const N: usize = 3;
const CLIENTS: u64 = 3;
const OPS_PER_CLIENT: u64 = 20;

/// One applied operation as observed at a replica, in application order.
type HistoryOp = (ClientId, u64, KvResponse);

fn batched_params() -> ConsensusParams {
    ConsensusParams {
        batch: BatchParams {
            max_batch: 8,
            pipeline_depth: 4,
        },
        ..ConsensusParams::default()
    }
}

/// The value client `c` writes at sequence `s` — unique per operation, so
/// a register replay pins the entire linearization order.
fn value_of(c: ClientId, s: u64) -> String {
    format!("{}:{s}", c.0)
}

/// The interleaved workload: round-robin across clients, every op a write
/// to the same register.
fn workload() -> Vec<Tagged<KvCmd>> {
    let mut ops = Vec::new();
    for s in 1..=OPS_PER_CLIENT {
        for c in 1..=CLIENTS {
            ops.push(Tagged {
                client: ClientId(c),
                seq: s,
                cmd: KvCmd::put("x", value_of(ClientId(c), s)),
            });
        }
    }
    ops
}

/// The core checker: identical witness order everywhere, exactly-once,
/// session order, and a register replay of the responses.
fn check_linearizable(histories: &[Vec<HistoryOp>], substrate: &str) {
    let total = (CLIENTS * OPS_PER_CLIENT) as usize;
    for (p, h) in histories.iter().enumerate() {
        assert_eq!(
            h.len(),
            total,
            "{substrate}: replica {p} applied {} of {total} ops",
            h.len()
        );
    }
    for (p, h) in histories.iter().enumerate().skip(1) {
        assert_eq!(
            h, &histories[0],
            "{substrate}: replica {p} disagrees with the witness order"
        );
    }
    let witness = &histories[0];
    let mut seen = BTreeSet::new();
    let mut last_seq: BTreeMap<ClientId, u64> = BTreeMap::new();
    let mut prev: Option<String> = None;
    for (c, s, resp) in witness {
        assert!(
            seen.insert((*c, *s)),
            "{substrate}: op ({c:?}, {s}) applied twice"
        );
        let prior = last_seq.insert(*c, *s);
        assert!(
            prior.is_none_or(|p| p < *s),
            "{substrate}: {c:?} session order violated at seq {s}"
        );
        assert_eq!(
            resp,
            &KvResponse::Applied {
                previous: prev.clone()
            },
            "{substrate}: response of ({c:?}, {s}) contradicts the witness order"
        );
        prev = Some(value_of(*c, *s));
    }
}

#[test]
fn batched_history_is_linearizable_on_netsim() {
    let ops = workload();
    let mut sim = SimBuilder::new(N)
        .seed(13)
        .topology(Topology::all_timely(N, Duration::from_ticks(2)))
        .build_with(|env| KvReplica::new(env, batched_params()));
    sim.run_until(Instant::from_ticks(2_000));
    let leader = sim.node(ProcessId(0)).omega().leader();
    // Two ops per tick: faster than the one-slot-per-round-trip rate, so
    // batches really form.
    let issue_tick = |i: usize| 2_001 + (i as u64) / 2;
    for (i, op) in ops.iter().enumerate() {
        sim.schedule_request(Instant::from_ticks(issue_tick(i)), leader, op.clone());
    }
    sim.run_until(Instant::from_ticks(2_000 + ops.len() as u64 * 12 + 10_000));

    let mut histories: Vec<Vec<HistoryOp>> = vec![Vec::new(); N];
    let mut commit_tick: BTreeMap<(ClientId, u64), u64> = BTreeMap::new();
    for ev in sim.outputs() {
        if let KvEvent::Applied {
            client,
            seq,
            ref response,
            ..
        } = ev.output
        {
            histories[ev.process.as_usize()].push((client, seq, response.clone()));
            if ev.process == leader {
                commit_tick.entry((client, seq)).or_insert(ev.at.ticks());
            }
        }
    }
    check_linearizable(&histories, "netsim");

    // Real-time order: an op that committed before another was issued must
    // precede it in the witness.
    let witness = &histories[0];
    let position: BTreeMap<(ClientId, u64), usize> = witness
        .iter()
        .enumerate()
        .map(|(i, (c, s, _))| ((*c, *s), i))
        .collect();
    for a in ops.iter() {
        for (j, b) in ops.iter().enumerate() {
            let (ca, cb) = ((a.client, a.seq), (b.client, b.seq));
            if commit_tick[&ca] < issue_tick(j) {
                assert!(
                    position[&ca] < position[&cb],
                    "netsim: {ca:?} committed at t{} before {cb:?} was issued at t{} \
                     yet follows it in the witness",
                    commit_tick[&ca],
                    issue_tick(j)
                );
            }
        }
    }
}

/// Awaits a leader that every node reports and that stays stable, reading
/// a cluster's latest outputs through `latest`.
fn await_stable_leader(latest: impl Fn() -> Vec<Option<KvEvent>>, substrate: &str) -> ProcessId {
    let deadline = StdInstant::now() + StdDuration::from_secs(10);
    let stable_for = StdDuration::from_millis(300);
    let mut held: Option<(ProcessId, StdInstant)> = None;
    loop {
        let view: Vec<Option<ProcessId>> = latest()
            .into_iter()
            .map(|o| match o {
                Some(KvEvent::Leader(l)) => Some(l),
                _ => None,
            })
            .collect();
        let unanimous = match view.first() {
            Some(&Some(l)) if view.iter().all(|v| *v == Some(l)) => Some(l),
            _ => None,
        };
        match (unanimous, held) {
            (Some(l), Some((h, since))) if l == h => {
                if since.elapsed() >= stable_for {
                    return l;
                }
            }
            (Some(l), _) => held = Some((l, StdInstant::now())),
            (None, _) => held = None,
        }
        assert!(
            StdInstant::now() < deadline,
            "{substrate}: no stable leader"
        );
        std::thread::sleep(StdDuration::from_millis(20));
    }
}

fn histories_from(outputs: &[(ProcessId, KvEvent)]) -> Vec<Vec<HistoryOp>> {
    let mut histories: Vec<Vec<HistoryOp>> = vec![Vec::new(); N];
    for (p, ev) in outputs {
        if let KvEvent::Applied {
            client,
            seq,
            response,
            ..
        } = ev
        {
            histories[p.as_usize()].push((*client, *seq, response.clone()));
        }
    }
    histories
}

#[test]
fn batched_history_is_linearizable_on_threadnet() {
    let cluster = Cluster::spawn(
        NetConfig {
            n: N,
            loss: 0.0,
            min_delay: StdDuration::from_micros(100),
            max_delay: StdDuration::from_micros(500),
            tick: StdDuration::from_millis(1),
            seed: 13,
        },
        |env| KvReplica::new(env, batched_params()),
    );
    let leader = await_stable_leader(|| cluster.latest_outputs(), "threadnet");
    let ops = workload();
    for op in &ops {
        cluster.request(leader, op.clone());
    }
    // Wait until every replica has applied the whole workload.
    let total = ops.len();
    let deadline = StdInstant::now() + StdDuration::from_secs(30);
    loop {
        let outputs = cluster.outputs_so_far();
        let done = (0..N as u32).map(ProcessId).all(|p| {
            outputs
                .iter()
                .filter(|t| t.process == p && matches!(t.output, KvEvent::Applied { .. }))
                .count()
                >= total
        });
        if done {
            break;
        }
        assert!(
            StdInstant::now() < deadline,
            "threadnet: replicas never applied the full workload"
        );
        std::thread::sleep(StdDuration::from_millis(5));
    }
    let report = cluster.stop();
    let outputs: Vec<(ProcessId, KvEvent)> = report
        .outputs
        .iter()
        .map(|t| (t.process, t.output.clone()))
        .collect();
    check_linearizable(&histories_from(&outputs), "threadnet");
}

#[test]
fn batched_history_is_linearizable_on_wirenet() {
    let cluster = WireCluster::try_spawn(
        WireConfig {
            n: N,
            tick: StdDuration::from_millis(1),
            queue_capacity: 1024,
            backoff: BackoffConfig::default(),
            faults: None,
        },
        |env| KvReplica::new(env, batched_params()),
    )
    .expect("bind 127.0.0.1 listeners");
    let leader = await_stable_leader(|| cluster.latest_outputs(), "wirenet");
    let ops = workload();
    for op in &ops {
        cluster.request(leader, op.clone());
    }
    // The socket substrate exposes only each node's newest output mid-run;
    // under a stable leader ops apply in submission order, so the workload
    // is done when every node's newest event is the last op's application.
    let last = ops.last().expect("non-empty workload");
    let deadline = StdInstant::now() + StdDuration::from_secs(30);
    loop {
        let latest = cluster.latest_outputs();
        let done = latest.iter().all(|o| {
            matches!(
                o,
                Some(KvEvent::Applied { client, seq, .. })
                    if *client == last.client && *seq == last.seq
            )
        });
        if done {
            break;
        }
        assert!(
            StdInstant::now() < deadline,
            "wirenet: replicas never applied the full workload: {latest:?}"
        );
        std::thread::sleep(StdDuration::from_millis(5));
    }
    let report = cluster.stop();
    let outputs: Vec<(ProcessId, KvEvent)> = report
        .outputs
        .iter()
        .map(|t| (t.process, t.output.clone()))
        .collect();
    check_linearizable(&histories_from(&outputs), "wirenet");
}
