//! Property: an acceptor killed at an arbitrary point of a ballot storm and
//! restarted from its WAL never votes contrary to its pre-crash promises.
//!
//! The acceptor (a non-proposing `Consensus` instance) absorbs a random
//! prefix of `Prepare`/`Accept` messages with random ballots, crashes
//! (dropped), and is rebuilt from the same [`StorageHandle`]. Afterwards:
//!
//! 1. its promised ballot is at least the pre-crash one (monotone across
//!    the crash);
//! 2. any `Prepare`/`Accept` below the pre-crash promise is `Nack`ed —
//!    restarting must not re-open a closed ballot;
//! 3. a higher `Prepare` reveals exactly the highest-ballot value the
//!    acceptor had acknowledged with `Accepted` before the crash — an
//!    accepted value can survive or be superseded, never silently vanish.
//!
//! The second half covers the sharded node: killing a node that carries
//! *multiple* shard groups and restarting it must bring back **every**
//! attached group from its own WAL segment — file-backed, one segment per
//! group plus one for the shared Ω counter — with no bleed between
//! segments, and the restarted node must keep committing.

use std::collections::BTreeMap;
use std::path::PathBuf;

use consensus::shard::{
    PlacementManager, PlacementMap, ShardEvent, ShardId, ShardMsg, ShardRequest, ShardedNode,
};
use consensus::{Ballot, Consensus, ConsensusMsg, ConsensusParams, Entry, RsmMsg};
use lls_primitives::{Ctx, Effects, Env, Instant, ProcessId, Sm, StorageHandle};
use proptest::prelude::*;

type Msg = ConsensusMsg<u64>;

/// One scripted stimulus for the acceptor.
#[derive(Debug, Clone)]
enum Stim {
    Prepare { b: Ballot },
    Accept { b: Ballot, v: u64 },
}

fn ballot() -> impl Strategy<Value = Ballot> {
    // Rounds stay small so collisions (equal and re-used ballots) are
    // frequent; leaders are the two peers of the 3-process system.
    (0u64..12, prop_oneof![Just(0u32), Just(2u32)])
        .prop_map(|(round, p)| Ballot::new(round, ProcessId(p)))
}

fn stim() -> impl Strategy<Value = Stim> {
    prop_oneof![
        ballot().prop_map(|b| Stim::Prepare { b }),
        (ballot(), 0u64..100).prop_map(|(b, v)| Stim::Accept { b, v }),
    ]
}

/// Delivers `msg` from `from` and returns the effects.
fn deliver(
    env: &Env,
    sm: &mut Consensus<u64>,
    fx: &mut Effects<Msg, consensus::ConsensusEvent<u64>>,
    from: ProcessId,
    msg: Msg,
) -> Effects<Msg, consensus::ConsensusEvent<u64>> {
    let mut ctx = Ctx::new(env, Instant::ZERO, fx);
    sm.on_message(&mut ctx, from, msg);
    fx.take()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn restarted_acceptor_never_contradicts_its_past(
        script in proptest::collection::vec(stim(), 1..24),
        crash_at in any::<usize>(),
    ) {
        let n = 3;
        let me = ProcessId(1); // pure acceptor: proposes nothing
        let env = Env::new(me, n);
        let store = StorageHandle::in_memory();
        let params = ConsensusParams::default();
        let mut fx = Effects::new();

        let mut sm = Consensus::<u64>::with_storage(&env, params, None, store.clone())
            .expect("fresh in-memory store");
        sm.on_start(&mut Ctx::new(&env, Instant::ZERO, &mut fx));
        fx.take();

        // Drive a random prefix of the script, tracking what the acceptor
        // acknowledged: the crash point hits anywhere in the storm.
        let cut = crash_at % (script.len() + 1);
        let mut acked: Option<(Ballot, u64)> = None;
        for s in &script[..cut] {
            match *s {
                Stim::Prepare { b } => {
                    deliver(&env, &mut sm, &mut fx, b.leader(), Msg::Prepare { b });
                }
                Stim::Accept { b, v } => {
                    let out = deliver(&env, &mut sm, &mut fx, b.leader(), Msg::Accept { b, v });
                    let accepted = out
                        .sends
                        .iter()
                        .any(|s| matches!(s.msg, Msg::Accepted { b: ab } if ab == b));
                    if accepted && acked.as_ref().is_none_or(|(ab, _)| b >= *ab) {
                        acked = Some((b, v));
                    }
                }
            }
        }
        let promised_before = sm.promised();
        drop(sm); // crash

        let mut sm = Consensus::<u64>::with_storage(&env, params, None, store)
            .expect("recover from WAL");
        sm.on_start(&mut Ctx::new(&env, Instant::ZERO, &mut fx));
        fx.take();

        // (1) The promise is monotone across the crash.
        prop_assert!(
            sm.promised() >= promised_before,
            "promise regressed over restart: {:?} -> {:?}",
            promised_before,
            sm.promised()
        );

        // (2) Ballots below the pre-crash promise stay closed.
        if promised_before > Ballot::ZERO && promised_before.round() > 0 {
            let low = Ballot::new(promised_before.round() - 1, ProcessId(0));
            let out = deliver(&env, &mut sm, &mut fx, ProcessId(0), Msg::Prepare { b: low });
            prop_assert!(
                !out.sends.iter().any(|s| matches!(s.msg, Msg::Promise { .. })),
                "restarted acceptor re-promised a stale ballot {low:?}: {out:?}"
            );
            let out = deliver(
                &env, &mut sm, &mut fx, ProcessId(0), Msg::Accept { b: low, v: 999 },
            );
            prop_assert!(
                !out.sends.iter().any(|s| matches!(s.msg, Msg::Accepted { .. })),
                "restarted acceptor voted for a stale ballot {low:?}: {out:?}"
            );
        }

        // (3) A higher Prepare reveals exactly the pre-crash accepted pair.
        let high = Ballot::new(1_000, ProcessId(0));
        let out = deliver(&env, &mut sm, &mut fx, ProcessId(0), Msg::Prepare { b: high });
        let revealed = out.sends.iter().find_map(|s| match &s.msg {
            Msg::Promise { accepted, .. } => Some(*accepted),
            _ => None,
        });
        prop_assert_eq!(
            revealed,
            Some(acked),
            "recovery lost or invented an accepted value"
        );
    }
}

// ---------------------------------------------------------------------------
// Sharded node: restart recovers every attached group from its own segment.
// ---------------------------------------------------------------------------

type ShardFx = Effects<ShardMsg<u64>, ShardEvent<u64>>;

/// Temp WAL segment files, removed on drop.
struct TempSegments {
    paths: Vec<PathBuf>,
}

impl TempSegments {
    fn new(tags: &[&str]) -> Self {
        let pid = std::process::id();
        TempSegments {
            paths: tags
                .iter()
                .map(|t| std::env::temp_dir().join(format!("lls-shard-restart-{pid}-{t}.wal")))
                .collect(),
        }
    }

    fn handle(&self, i: usize) -> StorageHandle {
        StorageHandle::file_wal(&self.paths[i]).expect("open WAL segment")
    }
}

impl Drop for TempSegments {
    fn drop(&mut self) {
        for p in &self.paths {
            let _ = std::fs::remove_file(p);
        }
    }
}

/// Minimal quorum driver for a two-shard node at p0 in a 3-replica system:
/// p1's replies (echoing whatever ballot p0 is using) are the quorum.
struct ShardDriver {
    env: Env,
    sm: ShardedNode<u64>,
    fx: ShardFx,
}

impl ShardDriver {
    fn start(&mut self) -> ShardFx {
        let mut ctx = Ctx::new(&self.env, Instant::ZERO, &mut self.fx);
        self.sm.on_start(&mut ctx);
        self.fx.take()
    }

    fn deliver(&mut self, msg: ShardMsg<u64>) -> ShardFx {
        let mut ctx = Ctx::new(&self.env, Instant::ZERO, &mut self.fx);
        self.sm.on_message(&mut ctx, ProcessId(1), msg);
        self.fx.take()
    }

    fn request(&mut self, shard: u32, cmd: u64) -> ShardFx {
        let mut ctx = Ctx::new(&self.env, Instant::ZERO, &mut self.fx);
        self.sm.on_request(
            &mut ctx,
            ShardRequest {
                shard: ShardId(shard),
                cmd,
            },
        );
        self.fx.take()
    }

    /// Extracts the ballot of `shard`'s outgoing Prepares and answers with
    /// one Promise from p1 — a quorum at p0.
    fn establish(&mut self, out: &ShardFx, shard: u32) {
        let b = out
            .sends
            .iter()
            .find_map(|s| match &s.msg {
                ShardMsg::Rsm {
                    shard: sh,
                    msg: RsmMsg::Prepare { b, .. },
                } if sh.0 == shard => Some(*b),
                _ => None,
            })
            .unwrap_or_else(|| panic!("shard{shard} sent no Prepare: {:?}", out.sends));
        self.deliver(ShardMsg::Rsm {
            shard: ShardId(shard),
            msg: RsmMsg::Promise {
                b,
                accepted: vec![],
                low_slot: 0,
            },
        });
        assert!(
            self.sm
                .group(ShardId(shard))
                .expect("attached")
                .is_established_leader(),
            "shard{shard} must be led after a promise quorum"
        );
    }

    /// Issues `cmd` on `shard` and echoes p1's Accepted for the resulting
    /// Accept — committing one slot — and returns that slot.
    fn commit(&mut self, shard: u32, cmd: u64) -> u64 {
        let out = self.request(shard, cmd);
        let (b, slot) = out
            .sends
            .iter()
            .find_map(|s| match &s.msg {
                ShardMsg::Rsm {
                    shard: sh,
                    msg: RsmMsg::Accept { b, slot, .. },
                } if sh.0 == shard => Some((*b, *slot)),
                _ => None,
            })
            .unwrap_or_else(|| panic!("shard{shard} sent no Accept: {:?}", out.sends));
        let out = self.deliver(ShardMsg::Rsm {
            shard: ShardId(shard),
            msg: RsmMsg::Accepted { b, slot },
        });
        assert!(
            out.outputs.iter().any(|o| matches!(
                o,
                ShardEvent::Committed { shard: sh, slot: sl, .. }
                    if sh.0 == shard && *sl == slot
            )),
            "shard{shard} slot {slot} must commit on the quorum ack: {:?}",
            out.outputs
        );
        slot
    }
}

fn committed(sm: &ShardedNode<u64>, shard: u32) -> Vec<u64> {
    sm.group(ShardId(shard))
        .expect("attached")
        .committed_commands()
        .copied()
        .collect()
}

#[test]
fn restart_of_a_two_shard_node_recovers_both_groups_from_their_own_segments() {
    let segments = TempSegments::new(&["shard0", "shard1", "omega"]);
    let placement = PlacementManager::with_all_attached(PlacementMap::uniform(2, 3));
    let mut stores = BTreeMap::new();
    stores.insert(ShardId(0), segments.handle(0));
    stores.insert(ShardId(1), segments.handle(1));
    let params = ConsensusParams::default();
    let env = Env::new(ProcessId(0), 3);

    // Life before the crash: both groups led, asymmetric histories (two
    // commands in group 0, one in group 1).
    {
        let sm =
            ShardedNode::with_storage(&env, params, placement.clone(), &stores, segments.handle(2))
                .expect("fresh segments");
        let mut d = ShardDriver {
            env,
            sm,
            fx: Effects::new(),
        };
        let out = d.start();
        d.establish(&out, 0);
        d.establish(&out, 1);
        d.commit(0, 10);
        d.commit(0, 11);
        d.commit(1, 20);
        assert_eq!(committed(&d.sm, 0), vec![10, 11]);
        assert_eq!(committed(&d.sm, 1), vec![20]);
        // Crash: the whole node drops; only the files survive.
    }

    // Restart from the same file-backed segments (fresh handles, as a real
    // process restart would open them).
    let mut stores = BTreeMap::new();
    stores.insert(ShardId(0), segments.handle(0));
    stores.insert(ShardId(1), segments.handle(1));
    let sm = ShardedNode::with_storage(&env, params, placement, &stores, segments.handle(2))
        .expect("recover every group from its own WAL segment");

    // Every attached group is back, each with exactly its own history.
    assert_eq!(
        committed(&sm, 0),
        vec![10, 11],
        "group 0 recovers its own segment"
    );
    assert_eq!(
        committed(&sm, 1),
        vec![20],
        "group 1 recovers its own segment, not group 0's"
    );
    assert_eq!(
        sm.omega().own_counter(),
        1,
        "the shared Ω rejoins one incarnation above its persisted counter"
    );

    // And the restarted node keeps working. Rejoining one incarnation up,
    // its shared Ω correctly defers to a lower-counter peer — the restart
    // demotes the node to follower in *every* group at once (no Prepares),
    // and both groups keep applying the new leader's decisions right after
    // their own recovered prefixes.
    let mut d = ShardDriver {
        env,
        sm,
        fx: Effects::new(),
    };
    let out = d.start();
    assert!(
        out.outputs
            .iter()
            .any(|o| matches!(o, ShardEvent::Leader(l) if *l != ProcessId(0))),
        "the restarted node must announce the deferred leader: {:?}",
        out.outputs
    );
    assert!(
        out.sends.iter().all(|s| !matches!(
            &s.msg,
            ShardMsg::Rsm {
                msg: RsmMsg::Prepare { .. },
                ..
            }
        )),
        "a follower reboot opens no ballots: {:?}",
        out.sends
    );
    for (shard, slot, cmd, expect) in [
        (0u32, 2u64, 12u64, vec![10, 11, 12]),
        (1, 1, 21, vec![20, 21]),
    ] {
        let out = d.deliver(ShardMsg::Rsm {
            shard: ShardId(shard),
            msg: RsmMsg::Decide {
                slot,
                entry: Entry::Cmd(cmd),
            },
        });
        assert!(
            out.outputs.iter().any(|o| matches!(
                o,
                ShardEvent::Committed { shard: sh, slot: sl, cmd: Some(c) }
                    if sh.0 == shard && *sl == slot && *c == cmd
            )),
            "shard{shard} must apply the new leader's decision: {:?}",
            out.outputs
        );
        assert_eq!(
            committed(&d.sm, shard),
            expect,
            "shard{shard} continues exactly after its recovered prefix"
        );
    }
}
