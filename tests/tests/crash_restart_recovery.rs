//! Property: an acceptor killed at an arbitrary point of a ballot storm and
//! restarted from its WAL never votes contrary to its pre-crash promises.
//!
//! The acceptor (a non-proposing `Consensus` instance) absorbs a random
//! prefix of `Prepare`/`Accept` messages with random ballots, crashes
//! (dropped), and is rebuilt from the same [`StorageHandle`]. Afterwards:
//!
//! 1. its promised ballot is at least the pre-crash one (monotone across
//!    the crash);
//! 2. any `Prepare`/`Accept` below the pre-crash promise is `Nack`ed —
//!    restarting must not re-open a closed ballot;
//! 3. a higher `Prepare` reveals exactly the highest-ballot value the
//!    acceptor had acknowledged with `Accepted` before the crash — an
//!    accepted value can survive or be superseded, never silently vanish.

use consensus::{Ballot, Consensus, ConsensusMsg, ConsensusParams};
use lls_primitives::{Ctx, Effects, Env, Instant, ProcessId, Sm, StorageHandle};
use proptest::prelude::*;

type Msg = ConsensusMsg<u64>;

/// One scripted stimulus for the acceptor.
#[derive(Debug, Clone)]
enum Stim {
    Prepare { b: Ballot },
    Accept { b: Ballot, v: u64 },
}

fn ballot() -> impl Strategy<Value = Ballot> {
    // Rounds stay small so collisions (equal and re-used ballots) are
    // frequent; leaders are the two peers of the 3-process system.
    (0u64..12, prop_oneof![Just(0u32), Just(2u32)])
        .prop_map(|(round, p)| Ballot::new(round, ProcessId(p)))
}

fn stim() -> impl Strategy<Value = Stim> {
    prop_oneof![
        ballot().prop_map(|b| Stim::Prepare { b }),
        (ballot(), 0u64..100).prop_map(|(b, v)| Stim::Accept { b, v }),
    ]
}

/// Delivers `msg` from `from` and returns the effects.
fn deliver(
    env: &Env,
    sm: &mut Consensus<u64>,
    fx: &mut Effects<Msg, consensus::ConsensusEvent<u64>>,
    from: ProcessId,
    msg: Msg,
) -> Effects<Msg, consensus::ConsensusEvent<u64>> {
    let mut ctx = Ctx::new(env, Instant::ZERO, fx);
    sm.on_message(&mut ctx, from, msg);
    fx.take()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn restarted_acceptor_never_contradicts_its_past(
        script in proptest::collection::vec(stim(), 1..24),
        crash_at in any::<usize>(),
    ) {
        let n = 3;
        let me = ProcessId(1); // pure acceptor: proposes nothing
        let env = Env::new(me, n);
        let store = StorageHandle::in_memory();
        let params = ConsensusParams::default();
        let mut fx = Effects::new();

        let mut sm = Consensus::<u64>::with_storage(&env, params, None, store.clone())
            .expect("fresh in-memory store");
        sm.on_start(&mut Ctx::new(&env, Instant::ZERO, &mut fx));
        fx.take();

        // Drive a random prefix of the script, tracking what the acceptor
        // acknowledged: the crash point hits anywhere in the storm.
        let cut = crash_at % (script.len() + 1);
        let mut acked: Option<(Ballot, u64)> = None;
        for s in &script[..cut] {
            match *s {
                Stim::Prepare { b } => {
                    deliver(&env, &mut sm, &mut fx, b.leader(), Msg::Prepare { b });
                }
                Stim::Accept { b, v } => {
                    let out = deliver(&env, &mut sm, &mut fx, b.leader(), Msg::Accept { b, v });
                    let accepted = out
                        .sends
                        .iter()
                        .any(|s| matches!(s.msg, Msg::Accepted { b: ab } if ab == b));
                    if accepted && acked.as_ref().is_none_or(|(ab, _)| b >= *ab) {
                        acked = Some((b, v));
                    }
                }
            }
        }
        let promised_before = sm.promised();
        drop(sm); // crash

        let mut sm = Consensus::<u64>::with_storage(&env, params, None, store)
            .expect("recover from WAL");
        sm.on_start(&mut Ctx::new(&env, Instant::ZERO, &mut fx));
        fx.take();

        // (1) The promise is monotone across the crash.
        prop_assert!(
            sm.promised() >= promised_before,
            "promise regressed over restart: {:?} -> {:?}",
            promised_before,
            sm.promised()
        );

        // (2) Ballots below the pre-crash promise stay closed.
        if promised_before > Ballot::ZERO && promised_before.round() > 0 {
            let low = Ballot::new(promised_before.round() - 1, ProcessId(0));
            let out = deliver(&env, &mut sm, &mut fx, ProcessId(0), Msg::Prepare { b: low });
            prop_assert!(
                !out.sends.iter().any(|s| matches!(s.msg, Msg::Promise { .. })),
                "restarted acceptor re-promised a stale ballot {low:?}: {out:?}"
            );
            let out = deliver(
                &env, &mut sm, &mut fx, ProcessId(0), Msg::Accept { b: low, v: 999 },
            );
            prop_assert!(
                !out.sends.iter().any(|s| matches!(s.msg, Msg::Accepted { .. })),
                "restarted acceptor voted for a stale ballot {low:?}: {out:?}"
            );
        }

        // (3) A higher Prepare reveals exactly the pre-crash accepted pair.
        let high = Ballot::new(1_000, ProcessId(0));
        let out = deliver(&env, &mut sm, &mut fx, ProcessId(0), Msg::Prepare { b: high });
        let revealed = out.sends.iter().find_map(|s| match &s.msg {
            Msg::Promise { accepted, .. } => Some(*accepted),
            _ => None,
        });
        prop_assert_eq!(
            revealed,
            Some(acked),
            "recovery lost or invented an accepted value"
        );
    }
}
