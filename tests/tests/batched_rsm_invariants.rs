//! Property: batching and pipelining preserve the replicated log's
//! invariants for *arbitrary* knob settings.
//!
//! Two properties, mirroring the two halves of the throughput path:
//!
//! 1. **Gap-free identical decided sequence.** For any `(max_batch,
//!    pipeline_depth)` and any request schedule, every replica commits
//!    the same slot sequence with no gaps, the per-command unfold order
//!    equals the submission order, and all replicas agree on the exact
//!    entry (batch boundaries included) of every chosen slot.
//! 2. **Crash–restart mid-pipeline never contradicts a decided batch.**
//!    A batching leader crashed at an arbitrary point of a random
//!    request/ack storm and rebuilt from its WAL still reports every
//!    pre-crash chosen slot with the identical entry — a decided batch
//!    can never change shape or content across a restart (the group
//!    commit's prefix-durability guarantee is strong enough).

use std::collections::BTreeMap;

use consensus::{Ballot, BatchParams, ConsensusParams, ReplicatedLog, RsmEvent, RsmMsg};
use lls_primitives::{Ctx, Duration, Effects, Env, Instant, ProcessId, Sm, StorageHandle};
use netsim::{SimBuilder, Topology};
use proptest::prelude::*;

fn params_with(max_batch: usize, pipeline_depth: usize) -> ConsensusParams {
    ConsensusParams {
        batch: BatchParams {
            max_batch,
            pipeline_depth,
        },
        ..ConsensusParams::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn decided_sequence_is_gap_free_and_identical_for_any_knobs(
        max_batch in 1usize..=33,
        depth in 1usize..=12,
        seed in 0u64..1_000,
        commands in 1u64..=48,
        per_tick in 1u64..=4,
    ) {
        let n = 3;
        let params = params_with(max_batch, depth);
        let mut sim = SimBuilder::new(n)
            .seed(seed)
            .topology(Topology::all_timely(n, Duration::from_ticks(2)))
            .build_with(|env| ReplicatedLog::<u64>::new(env, params));
        sim.run_until(Instant::from_ticks(2_000));
        let leader = sim.node(ProcessId(0)).omega().leader();
        for i in 0..commands {
            sim.schedule_request(Instant::from_ticks(2_001 + i / per_tick), leader, i);
        }
        sim.run_until(Instant::from_ticks(2_000 + commands * 16 + 10_000));

        let mut streams: Vec<Vec<(u64, Option<u64>)>> = vec![Vec::new(); n];
        for ev in sim.outputs() {
            if let RsmEvent::Committed { slot, cmd } = ev.output {
                streams[ev.process.as_usize()].push((slot, cmd));
            }
        }
        for (p, stream) in streams.iter().enumerate() {
            // Slots are emitted in order with no gaps, starting at 0
            // (several consecutive events share a slot when it was a batch).
            prop_assert_eq!(
                stream.first().map(|e| e.0), Some(0),
                "replica {} must start committing at slot 0", p
            );
            for w in stream.windows(2) {
                prop_assert!(
                    w[1].0 == w[0].0 || w[1].0 == w[0].0 + 1,
                    "replica {} committed slot {} right after slot {}: gap or reorder",
                    p, w[1].0, w[0].0
                );
            }
            // The per-command unfold order is exactly the submission order.
            let cmds: Vec<u64> = stream.iter().filter_map(|e| e.1).collect();
            let expected: Vec<u64> = (0..commands).collect();
            prop_assert_eq!(
                cmds, expected,
                "replica {} commands diverge from submission order", p
            );
        }
        for p in 1..n {
            prop_assert_eq!(
                &streams[p], &streams[0],
                "replica {} decided a different sequence than replica 0", p
            );
        }
        // Entry-level agreement: batch boundaries are part of the decision.
        let reference = sim.node(ProcessId(0)).chosen_entries();
        for p in 1..n as u32 {
            prop_assert_eq!(
                sim.node(ProcessId(p)).chosen_entries(),
                reference.clone(),
                "replica {} disagrees on chosen entries", p
            );
        }
    }
}

/// One step of the leader-side storm: a client request, or a peer
/// acknowledging its oldest unacknowledged slot.
#[derive(Debug, Clone)]
enum Step {
    Request(u64),
    AckFrom(u32),
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u64..1_000).prop_map(Step::Request),
        prop_oneof![Just(1u32), Just(2u32)].prop_map(Step::AckFrom),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn crash_restart_mid_pipeline_never_contradicts_a_decided_batch(
        max_batch in 1usize..=16,
        depth in 1usize..=8,
        script in proptest::collection::vec(step(), 1..40),
        crash_at in any::<usize>(),
    ) {
        let env = Env::new(ProcessId(0), 3);
        let store = StorageHandle::in_memory();
        let params = params_with(max_batch, depth);
        let mut fx = Effects::new();

        let mut sm = ReplicatedLog::<u64>::with_storage(&env, params, store.clone())
            .expect("fresh in-memory store");
        sm.on_start(&mut Ctx::new(&env, Instant::ZERO, &mut fx));
        fx.take();
        // Establish leadership: one peer's promise completes the quorum.
        sm.on_message(
            &mut Ctx::new(&env, Instant::ZERO, &mut fx),
            ProcessId(1),
            RsmMsg::Promise {
                b: Ballot::new(1, ProcessId(0)),
                accepted: vec![],
                low_slot: 0,
            },
        );
        fx.take();
        prop_assert!(sm.is_established_leader());

        // Drive a random prefix of the storm: requests pump batches into
        // the pipeline, acks choose slots (quorum of 2 with the self-ack).
        let cut = crash_at % (script.len() + 1);
        let mut next_ack: BTreeMap<u32, u64> = BTreeMap::new();
        for s in &script[..cut] {
            let mut ctx = Ctx::new(&env, Instant::ZERO, &mut fx);
            match *s {
                Step::Request(v) => sm.on_request(&mut ctx, v),
                Step::AckFrom(peer) => {
                    let slot = next_ack.entry(peer).or_insert(0);
                    sm.on_message(
                        &mut ctx,
                        ProcessId(peer),
                        RsmMsg::Accepted {
                            b: Ballot::new(1, ProcessId(0)),
                            slot: *slot,
                        },
                    );
                    *slot += 1;
                }
            }
            fx.take();
        }
        let chosen_before = sm.chosen_entries();
        drop(sm); // crash mid-pipeline

        let sm = ReplicatedLog::<u64>::with_storage(&env, params, store)
            .expect("recover from WAL");
        let chosen_after = sm.chosen_entries();
        for (slot, entry) in &chosen_before {
            prop_assert_eq!(
                chosen_after.get(slot),
                Some(entry),
                "decided slot {} changed across the restart", slot
            );
        }
    }
}
