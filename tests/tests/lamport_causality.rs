//! Properties of the causal tracing plane over seeded runs:
//!
//! 1. **Happens-before on deliveries** — for every message the simulator
//!    actually delivered, the receiver's clock after the merge is strictly
//!    greater than the sender's stamp (`merged > stamp`): no receive is
//!    ever causally before its send.
//! 2. **Per-node monotonicity** — each node's recorded probe events carry
//!    non-decreasing Lamport values (a node's clock never runs backwards),
//!    on the deterministic simulator and on the thread mesh alike.
//! 3. **Reconstruction soundness** — every span reconstructed from those
//!    streams is causally ordered (cross-node hops strictly increase the
//!    clock), for any seed.

use std::sync::Arc;
use std::time::Duration as StdDuration;

use lls_obs::{reconstruct_spans, NodeRecorders, SpanRecord};
use lls_primitives::{Instant, ProcessId};
use netsim::{SimBuilder, SystemSParams, Topology};
use omega::{classify_msg, CommEffOmega, OmegaParams};
use proptest::prelude::*;
use threadnet::{Cluster, NetConfig};

/// Runs a seeded Ω election on the simulator with trace clocks attached
/// and returns (per-delivery causal log, per-node event streams).
fn traced_netsim_run(
    n: usize,
    seed: u64,
    horizon: u64,
) -> (Vec<netsim::CausalDelivery>, Arc<NodeRecorders>) {
    let recorders = Arc::new(NodeRecorders::new(n, 4096));
    let topo = Topology::system_s(
        n,
        ProcessId((seed % n as u64) as u32),
        SystemSParams::default(),
    );
    let mut sim = SimBuilder::new(n)
        .seed(seed)
        .topology(topo)
        .classify(classify_msg)
        .trace_clocks(recorders.clocks())
        .build_with(|env| {
            CommEffOmega::new_with_probe(env, OmegaParams::default(), recorders.probe_for(env.id()))
        });
    sim.run_until(Instant::from_ticks(horizon / 2));
    // A mid-run leader kill forces accusations and a re-election, so the
    // streams exercise cross-node chains, not just heartbeats.
    let victim = sim.node(ProcessId(0)).leader();
    sim.kill(victim);
    sim.run_until(Instant::from_ticks(horizon));
    let log = sim.causal_log().to_vec();
    (log, recorders)
}

fn assert_streams_monotone(recorders: &NodeRecorders) {
    for (i, stream) in recorders.all_events().iter().enumerate() {
        for w in stream.windows(2) {
            assert!(
                w[1].lamport >= w[0].lamport,
                "node p{i}: lamport regressed {} -> {} (seq {} -> {})",
                w[0].lamport,
                w[1].lamport,
                w[0].seq,
                w[1].seq
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Deliveries respect happens-before and reconstruction never emits a
    /// receive-before-send span, for any seed.
    #[test]
    fn netsim_lamport_stamps_respect_happens_before(seed in 0u64..500) {
        let n = 4;
        let (log, recorders) = traced_netsim_run(n, seed, 20_000);
        prop_assert!(!log.is_empty(), "a 20k-tick run must deliver messages");
        for d in &log {
            prop_assert!(
                d.merged > d.stamp,
                "delivery {} -> {}: merged clock {} not past the stamp {}",
                d.from, d.to, d.merged, d.stamp
            );
        }
        assert_streams_monotone(&recorders);
        for span in reconstruct_spans(&recorders.all_events()) {
            prop_assert!(
                span.causally_ordered(),
                "reconstructed span violates happens-before: {span:?}"
            );
        }
    }
}

/// The deterministic simulator replays the same seed to the same causal
/// log — stamps included — so traces are diffable run-to-run.
#[test]
fn netsim_causal_log_is_deterministic() {
    let (a, _) = traced_netsim_run(4, 7, 12_000);
    let (b, _) = traced_netsim_run(4, 7, 12_000);
    assert_eq!(a, b);
}

/// The same monotonicity and soundness properties hold on the thread mesh,
/// where clock ticks and merges race with real scheduling.
#[test]
fn threadnet_streams_are_monotone_and_spans_ordered() {
    let n = 4;
    let recorders = Arc::new(NodeRecorders::new(n, 4096));
    let config = NetConfig {
        n,
        loss: 0.05,
        min_delay: StdDuration::from_micros(100),
        max_delay: StdDuration::from_micros(900),
        tick: StdDuration::from_millis(1),
        seed: 3,
    };
    let cluster = Cluster::spawn_traced(config, recorders.clocks(), |env| {
        CommEffOmega::new_with_probe(env, OmegaParams::default(), recorders.probe_for(env.id()))
    });
    std::thread::sleep(StdDuration::from_millis(800));
    cluster.kill(ProcessId(0));
    std::thread::sleep(StdDuration::from_millis(800));
    cluster.stop();
    assert_streams_monotone(&recorders);
    let spans = reconstruct_spans(&recorders.all_events());
    assert!(
        spans.iter().all(SpanRecord::causally_ordered),
        "threadnet spans must be causally ordered: {spans:?}"
    );
}
