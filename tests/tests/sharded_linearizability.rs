//! The sharded KV path: key-router properties and cross-shard
//! linearizability.
//!
//! Two halves:
//!
//! 1. **Router properties** (proptest): the key → shard router is *total*
//!    (every key maps to a shard in range, for arbitrary shard counts)
//!    and *stable* (the mapping is a pure function of the key bytes and
//!    the shard count — independent of map instance, attach state, or
//!    call order). Stability is what makes client-side routing sound:
//!    any client anywhere computes the same shard for a key.
//! 2. **Cross-shard linearizability** (netsim): three clients write
//!    interleaved unique values to one register *per shard* through a
//!    [`ShardedKvNode`], and the decided per-shard slot sequences are the
//!    linearization witnesses. Each shard's history must satisfy the same
//!    checks as the single-log suite in `batched_linearizability`:
//!    identical witness order on every replica, exactly-once application,
//!    per-client session order, and a register replay in which every
//!    response's `previous` is exactly its predecessor's value. Shards
//!    commit independently, so there is no cross-shard total order to
//!    check — per-shard linearizability plus the total router is the
//!    whole correctness story.

use std::collections::{BTreeMap, BTreeSet};

use consensus::shard::{fnv1a64, PlacementManager, PlacementMap, ShardId};
use consensus::ConsensusParams;
use kvstore::{ClientId, KvCmd, KvResponse, ShardedKvEvent, ShardedKvNode, Tagged};
use lls_primitives::{Duration, Instant, ProcessId};
use netsim::{SimBuilder, Topology};
use proptest::prelude::*;

proptest! {
    /// Totality: for an arbitrary shard count and arbitrary key bytes,
    /// the router produces exactly one shard, and it is in range.
    #[test]
    fn router_is_total(shards in 1u32..=64, key in proptest::collection::vec(any::<u8>(), 0..48)) {
        let key = String::from_utf8_lossy(&key).into_owned();
        let map = PlacementMap::uniform(shards, 3);
        let shard = map.shard_of_key(&key);
        prop_assert!(shard.0 < shards, "key {key:?} routed to {shard} of {shards}");
    }

    /// Stability: the mapping depends only on the key bytes and the shard
    /// count — repeated calls, fresh map instances, different cluster
    /// sizes, and attach/detach churn all agree.
    #[test]
    fn router_is_stable(shards in 1u32..=64, key in proptest::collection::vec(any::<u8>(), 0..48)) {
        let key = String::from_utf8_lossy(&key).into_owned();
        let map = PlacementMap::uniform(shards, 3);
        let first = map.shard_of_key(&key);
        prop_assert_eq!(first, map.shard_of_key(&key));
        prop_assert_eq!(first, PlacementMap::uniform(shards, 5).shard_of_key(&key));
        prop_assert_eq!(first, map.shard_of_hash(fnv1a64(key.as_bytes())));
        let mut manager = PlacementManager::with_all_attached(map);
        manager.detach(first);
        prop_assert_eq!(
            first,
            manager.map().shard_of_key(&key),
            "routing is placement, not attachment"
        );
    }

    /// The shard-count partition: with `S` shards, the ranges of the
    /// router over a key population never leave `0..S`, and for `S = 1`
    /// everything lands on shard 0.
    #[test]
    fn single_shard_routes_everything_to_zero(key in proptest::collection::vec(any::<u8>(), 0..48)) {
        let key = String::from_utf8_lossy(&key).into_owned();
        prop_assert_eq!(PlacementMap::uniform(1, 3).shard_of_key(&key), ShardId(0));
    }
}

const N: usize = 3;
const SHARDS: u32 = 4;
const CLIENTS: u64 = 3;
const OPS_PER_CLIENT: u64 = 16;

/// One applied operation as observed at a replica, in that shard's
/// application order.
type HistoryOp = (ClientId, u64, KvResponse);

/// A key that the router sends to `shard` — found by brute force so the
/// workload can aim a register at every shard.
fn key_for(map: &PlacementMap, shard: ShardId) -> String {
    (0u64..)
        .map(|i| format!("reg{i}"))
        .find(|k| map.shard_of_key(k) == shard)
        .expect("some key hashes to every shard")
}

/// The value client `c` writes at sequence `s` — unique per operation, so
/// each shard's register replay pins that shard's linearization order.
fn value_of(c: ClientId, s: u64) -> String {
    format!("{}:{s}", c.0)
}

/// The mixed-shard workload: each client's ops cycle over the shard
/// registers (client seq keeps increasing across shards), interleaved
/// round-robin across clients.
fn workload(keys: &[String]) -> Vec<Tagged<KvCmd>> {
    let mut ops = Vec::new();
    for s in 1..=OPS_PER_CLIENT {
        for c in 1..=CLIENTS {
            let key = &keys[((s - 1) as usize + c as usize) % keys.len()];
            ops.push(Tagged {
                client: ClientId(c),
                seq: s,
                cmd: KvCmd::put(key, value_of(ClientId(c), s)),
            });
        }
    }
    ops
}

/// The per-shard checker: every replica saw the identical witness order
/// for this shard, each op applied exactly once, client sessions in
/// order, and the register replay consistent with the witness.
fn check_shard_linearizable(shard: ShardId, histories: &[Vec<HistoryOp>]) {
    for (p, h) in histories.iter().enumerate().skip(1) {
        assert_eq!(
            h, &histories[0],
            "replica {p} disagrees with {shard}'s witness order"
        );
    }
    let witness = &histories[0];
    let mut seen = BTreeSet::new();
    let mut last_seq: BTreeMap<ClientId, u64> = BTreeMap::new();
    let mut prev: Option<String> = None;
    for (c, s, resp) in witness {
        assert!(
            seen.insert((*c, *s)),
            "op ({c:?}, {s}) applied twice in {shard}"
        );
        let prior = last_seq.insert(*c, *s);
        assert!(
            prior.is_none_or(|p| p < *s),
            "{c:?} session order violated at seq {s} in {shard}"
        );
        assert_eq!(
            resp,
            &KvResponse::Applied {
                previous: prev.clone()
            },
            "response of ({c:?}, {s}) contradicts {shard}'s witness order"
        );
        prev = Some(value_of(*c, *s));
    }
}

#[test]
fn cross_shard_history_is_linearizable_per_shard() {
    let map = PlacementMap::uniform(SHARDS, N);
    let keys: Vec<String> = map.shard_ids().map(|s| key_for(&map, s)).collect();
    let ops = workload(&keys);

    let placement_map = map.clone();
    let mut sim = SimBuilder::new(N)
        .seed(19)
        .topology(Topology::all_timely(N, Duration::from_ticks(2)))
        .build_with(move |env| {
            ShardedKvNode::new(
                env,
                ConsensusParams::default(),
                PlacementManager::with_all_attached(placement_map.clone()),
            )
        });
    sim.run_until(Instant::from_ticks(2_000));
    let leader = sim.node(ProcessId(0)).omega().leader();
    for (i, op) in ops.iter().enumerate() {
        sim.schedule_request(
            Instant::from_ticks(2_001 + (i as u64) / 2),
            leader,
            op.clone(),
        );
    }
    sim.run_until(Instant::from_ticks(2_000 + ops.len() as u64 * 12 + 10_000));

    // Split every replica's applied stream by shard; each shard's slice is
    // an independent witness.
    let mut histories: BTreeMap<ShardId, Vec<Vec<HistoryOp>>> =
        map.shard_ids().map(|s| (s, vec![Vec::new(); N])).collect();
    for ev in sim.outputs() {
        if let ShardedKvEvent::Applied {
            shard,
            client,
            seq,
            ref response,
            ..
        } = ev.output
        {
            histories.get_mut(&shard).expect("routed shard exists")[ev.process.as_usize()].push((
                client,
                seq,
                response.clone(),
            ));
        }
    }

    let total: usize = histories
        .values()
        .map(|per_replica| per_replica[0].len())
        .sum();
    assert_eq!(
        total,
        ops.len(),
        "every op must commit in exactly one shard"
    );
    for (shard, per_replica) in &histories {
        assert!(
            !per_replica[0].is_empty(),
            "the workload must exercise {shard}"
        );
        check_shard_linearizable(*shard, per_replica);
    }

    // And the replicated states agree per register: each shard's register
    // holds the last value of that shard's witness, on every replica.
    for (shard, per_replica) in &histories {
        let (c, s, _) = per_replica[0].last().expect("non-empty witness");
        let key = &keys[shard.0 as usize];
        let expect = value_of(*c, *s);
        for p in 0..N as u32 {
            let node = sim.node(ProcessId(p));
            assert_eq!(
                node.state(*shard)
                    .expect("attached shard has state")
                    .get(key),
                Some(expect.as_str()),
                "replica {p} register {key} in {shard}"
            );
        }
    }
}
