//! Probe-event determinism on the simulator.
//!
//! The observability layer must be a pure observer: two runs of the same
//! seeded simulation have to produce byte-identical probe event streams,
//! per node and in order. If recording ever perturbed the protocols (or the
//! simulator's scheduling leaked into the probes), post-mortem flight
//! recordings could not be trusted to describe the run that actually
//! failed.

use consensus::{Consensus, ConsensusParams};
use lls_obs::{NodeRecorders, RecordedEvent};
use lls_primitives::{Instant, ProcessId};
use netsim::{SimBuilder, SystemSParams, Topology, TraceKind};
use omega::{CommEffOmega, OmegaParams};

/// One seeded Ω run with recording probes: every node's retained events.
fn omega_event_streams(seed: u64) -> Vec<Vec<RecordedEvent>> {
    let n = 4;
    let recorders = NodeRecorders::new(n, 4096);
    let topo = Topology::system_s(n, ProcessId(1), SystemSParams::default());
    let mut sim = SimBuilder::new(n)
        .seed(seed)
        .topology(topo)
        .build_with(|env| {
            CommEffOmega::new_with_probe(env, OmegaParams::default(), recorders.probe_for(env.id()))
        });
    sim.run_until(Instant::from_ticks(15_000));
    (0..n as u32)
        .map(|p| recorders.events_of(ProcessId(p)))
        .collect()
}

/// One seeded consensus run (probes shared between the ballot layer and the
/// embedded Ω): every node's retained events.
fn consensus_event_streams(seed: u64) -> Vec<Vec<RecordedEvent>> {
    let n = 3;
    let recorders = NodeRecorders::new(n, 4096);
    let topo = Topology::system_s(n, ProcessId(0), SystemSParams::default());
    let mut sim = SimBuilder::new(n)
        .seed(seed)
        .topology(topo)
        .build_with(|env| {
            Consensus::new_with_probe(
                env,
                ConsensusParams::default(),
                Some(100 + env.id().0 as u64),
                recorders.probe_for(env.id()),
            )
        });
    sim.run_until(Instant::from_ticks(20_000));
    (0..n as u32)
        .map(|p| recorders.events_of(ProcessId(p)))
        .collect()
}

#[test]
fn same_seed_omega_runs_emit_identical_event_streams() {
    let a = omega_event_streams(42);
    let b = omega_event_streams(42);
    assert_eq!(a, b, "probe streams must be a pure function of the seed");
    assert!(
        a.iter().any(|events| !events.is_empty()),
        "a contested election must emit probe events"
    );
}

#[test]
fn same_seed_consensus_runs_emit_identical_event_streams() {
    let a = consensus_event_streams(7);
    let b = consensus_event_streams(7);
    assert_eq!(a, b);
    // The shared-probe embedding must show both layers in one stream:
    // ballot phases (consensus) and leader changes (the inner Ω).
    let all: Vec<&RecordedEvent> = a.iter().flatten().collect();
    assert!(all
        .iter()
        .any(|r| matches!(r.event, lls_obs::ProbeEvent::Decide { .. })));
    assert!(all
        .iter()
        .any(|r| matches!(r.event, lls_obs::ProbeEvent::PhaseEnter { .. })));
}

#[test]
fn output_trace_records_classifier_labels() {
    let n = 3;
    let mut sim = SimBuilder::new(n)
        .seed(3)
        .topology(Topology::system_s(
            n,
            ProcessId(0),
            SystemSParams::default(),
        ))
        .record_trace(50_000)
        .classify_output(|_leader| "leader")
        .build_with(|env| CommEffOmega::new(env, OmegaParams::default()));
    sim.run_until(Instant::from_ticks(5_000));
    let trace = sim.trace().expect("trace was enabled");
    let labels: Vec<&'static str> = trace
        .records()
        .iter()
        .filter_map(|r| match r.kind {
            TraceKind::Output { label, .. } => Some(label),
            _ => None,
        })
        .collect();
    assert!(
        !labels.is_empty(),
        "on_start publishes the initial leader, so outputs must be traced"
    );
    assert!(labels.iter().all(|&l| l == "leader"));
    assert!(trace.render().contains("OUTPUT"));
}
