//! Substrate parity: the same state-machine code produces the same
//! *qualitative* behaviour on the deterministic simulator and on the
//! real-thread runtime — the property that makes simulator results
//! transferable.

use std::time::{Duration as StdDuration, Instant as StdInstant};

use lls_primitives::{Instant, ProcessId};
use netsim::{SimBuilder, Topology};
use omega::{CommEffOmega, OmegaParams};
use threadnet::{Cluster, NetConfig};

/// On a lossless, low-latency network, both substrates elect p0 (the initial
/// default) and never change leaders after stabilization.
#[test]
fn both_substrates_elect_p0_on_perfect_links() {
    let n = 4;

    // Simulator.
    let mut sim = SimBuilder::new(n)
        .topology(Topology::all_timely(
            n,
            lls_primitives::Duration::from_ticks(1),
        ))
        .build_with(|env| CommEffOmega::new(env, OmegaParams::default()));
    sim.run_until(Instant::from_ticks(10_000));
    for p in (0..n as u32).map(ProcessId) {
        assert_eq!(sim.node(p).leader(), ProcessId(0), "sim: {p} disagrees");
    }

    // Threads.
    let cluster = Cluster::spawn(
        NetConfig {
            n,
            loss: 0.0,
            min_delay: StdDuration::from_micros(50),
            max_delay: StdDuration::from_micros(200),
            tick: StdDuration::from_micros(200),
            seed: 0,
        },
        |env| CommEffOmega::new(env, OmegaParams::default()),
    );
    std::thread::sleep(StdDuration::from_millis(400));
    let report = cluster.stop();
    for p in (0..n as u32).map(ProcessId) {
        assert_eq!(
            report.final_output_of(p),
            Some(&ProcessId(0)),
            "threads: {p} disagrees"
        );
    }
}

/// Crash-stop failover works identically in shape on both substrates: the
/// dead initial leader is replaced by another process on which everyone
/// agrees.
#[test]
fn failover_shape_matches_across_substrates() {
    let n = 4;

    // Simulator run.
    let mut sim = SimBuilder::new(n)
        .topology(Topology::all_timely(
            n,
            lls_primitives::Duration::from_ticks(1),
        ))
        .crash_at(ProcessId(0), Instant::from_ticks(2_000))
        .build_with(|env| CommEffOmega::new(env, OmegaParams::default()));
    sim.run_until(Instant::from_ticks(20_000));
    let sim_final: Vec<ProcessId> = (1..n as u32)
        .map(|p| sim.node(ProcessId(p)).leader())
        .collect();
    assert!(sim_final
        .iter()
        .all(|&l| l == sim_final[0] && l != ProcessId(0)));

    // Thread run.
    let cluster = Cluster::spawn(
        NetConfig {
            n,
            loss: 0.0,
            min_delay: StdDuration::from_micros(50),
            max_delay: StdDuration::from_micros(200),
            tick: StdDuration::from_micros(200),
            seed: 1,
        },
        |env| CommEffOmega::new(env, OmegaParams::default()),
    );
    std::thread::sleep(StdDuration::from_millis(300));
    cluster.crash(ProcessId(0));
    std::thread::sleep(StdDuration::from_millis(900));
    let report = cluster.stop();
    let thread_final: Vec<ProcessId> = (1..n as u32)
        .map(|p| {
            report
                .final_output_of(ProcessId(p))
                .copied()
                .expect("survivor output")
        })
        .collect();
    assert!(
        thread_final
            .iter()
            .all(|&l| l == thread_final[0] && l != ProcessId(0)),
        "thread failover disagrees: {thread_final:?}"
    );
}

/// The full consensus stack (replicated log + embedded Ω) also runs on the
/// thread runtime: commands submitted to the leader commit at every replica.
#[test]
fn replicated_log_commits_on_real_threads() {
    use consensus::{ConsensusParams, ReplicatedLog};

    let n = 3;
    // A generous tick (suspicion timeout = 15 ms) keeps scheduler jitter on
    // a loaded machine from churning the leadership mid-workload.
    let cluster = Cluster::spawn(
        NetConfig {
            n,
            loss: 0.05,
            min_delay: StdDuration::from_micros(50),
            max_delay: StdDuration::from_micros(400),
            tick: StdDuration::from_micros(500),
            seed: 5,
        },
        |env| ReplicatedLog::<u64>::new(env, ConsensusParams::default()),
    );
    // Await a leader that is not merely unanimous but *stays* unanimous for
    // a while: submitting during a momentary agreement risks the commands
    // landing on a leader that is still running (or about to rerun) its
    // prepare phase, and the workload cannot be resubmitted without
    // breaking the exact-log assertion below.
    let deadline = StdInstant::now() + StdDuration::from_secs(10);
    let stable_for = StdDuration::from_millis(400);
    let mut held_since: Option<(ProcessId, StdInstant)> = None;
    let leader = loop {
        let latest = cluster.latest_outputs();
        let unanimous = latest.first().and_then(|o| match o {
            Some(consensus::RsmEvent::Leader(l))
                if latest
                    .iter()
                    .all(|o| matches!(o, Some(consensus::RsmEvent::Leader(x)) if x == l)) =>
            {
                Some(*l)
            }
            _ => None,
        });
        match (unanimous, held_since) {
            (Some(l), Some((h, since))) if l == h => {
                if since.elapsed() >= stable_for {
                    break l;
                }
            }
            (Some(l), _) => held_since = Some((l, StdInstant::now())),
            (None, _) => held_since = None,
        }
        assert!(StdInstant::now() < deadline, "no stable leader on threads");
        std::thread::sleep(StdDuration::from_millis(25));
    };
    for k in 0..5u64 {
        cluster.request(leader, k);
        std::thread::sleep(StdDuration::from_millis(30));
    }
    // Wait until every replica has committed the final command. Scan the
    // full output history, not just the newest output: a leader-change
    // notification emitted after the commit must not mask completion.
    let deadline = StdInstant::now() + StdDuration::from_secs(10);
    loop {
        let outputs = cluster.outputs_so_far();
        let done = (0..n as u32).map(ProcessId).all(|p| {
            outputs.iter().any(|t| {
                t.process == p
                    && matches!(
                        t.output,
                        consensus::RsmEvent::Committed { cmd: Some(4), .. }
                    )
            })
        });
        if done {
            break;
        }
        assert!(
            StdInstant::now() < deadline,
            "replicas never committed the full workload: {:?}",
            cluster.latest_outputs()
        );
        std::thread::sleep(StdDuration::from_millis(25));
    }
    let report = cluster.stop();
    // Every replica committed the same prefix, in order.
    for p in (0..n as u32).map(ProcessId) {
        let committed: Vec<u64> = report
            .outputs
            .iter()
            .filter(|t| t.process == p)
            .filter_map(|t| match &t.output {
                consensus::RsmEvent::Committed { cmd, .. } => *cmd,
                _ => None,
            })
            .collect();
        assert_eq!(committed, vec![0, 1, 2, 3, 4], "{p} log: {committed:?}");
    }
}
