//! Intentionally empty: this member exists to host the cross-crate
//! integration tests under `tests/tests/`.
