//! Offline shim for `crossbeam`: just the `channel` module, implemented on
//! `std::sync::mpsc`. Semantics match what the workspace relies on —
//! unbounded senders never block, bounded senders block when full, dropping
//! all senders disconnects the receiver.

#![forbid(unsafe_code)]

/// Multi-producer channels (subset of `crossbeam::channel`).
pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// A sending half, cloneable across threads.
    pub struct Sender<T>(SenderKind<T>);

    enum SenderKind<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(match &self.0 {
                SenderKind::Unbounded(s) => SenderKind::Unbounded(s.clone()),
                SenderKind::Bounded(s) => SenderKind::Bounded(s.clone()),
            })
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends `t`, blocking on a full bounded channel. Errors only if the
        /// receiver is gone.
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            match &self.0 {
                SenderKind::Unbounded(s) => s.send(t),
                SenderKind::Bounded(s) => s.send(t),
            }
        }
    }

    /// The receiving half.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Blocks up to `timeout`.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Drains currently queued messages without blocking.
        pub fn try_iter(&self) -> mpsc::TryIter<'_, T> {
            self.0.try_iter()
        }

        /// Blocking iterator until disconnection.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.iter()
        }
    }

    /// Creates a channel with unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(SenderKind::Unbounded(tx)), Receiver(rx))
    }

    /// Creates a channel holding at most `cap` queued messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(SenderKind::Bounded(tx)), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn unbounded_round_trip_and_disconnect() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(1).unwrap();
            let tx2 = tx.clone();
            tx2.send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            drop(tx);
            drop(tx2);
            assert!(rx.recv().is_err());
        }

        #[test]
        fn bounded_preserves_order_across_threads() {
            let (tx, rx) = bounded::<u32>(2);
            let h = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<u32> = rx.into_iter().collect();
            h.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded::<u8>();
            assert!(matches!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            ));
            tx.send(9).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)).unwrap(), 9);
        }
    }
}
