//! Offline shim for `parking_lot`: `Mutex` and `RwLock` wrapping their
//! `std::sync` counterparts with the poison-free API. A poisoned std lock
//! (panic while held) just hands out the inner guard, matching parking_lot's
//! "no poisoning" behaviour.

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose acquisition cannot fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8_000);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(41u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
