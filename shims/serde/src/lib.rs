//! Offline shim for `serde`.
//!
//! The workspace only uses serde as a *capability marker* on message and
//! config types (`#[derive(Serialize, Deserialize)]`); actual byte-level
//! encoding is done by the hand-rolled wire codec in `lls-primitives::wire`.
//! The traits here are therefore empty and blanket-implemented, and the
//! derives (re-exported from the `serde_derive` shim) expand to nothing.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`; satisfied by every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize<'de>`; satisfied by every type.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

/// Mirror of `serde::de` far enough for `use serde::de::DeserializeOwned`.
pub mod de {
    pub use crate::DeserializeOwned;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
