//! Case execution: configuration, RNG, and the pass/fail/reject loop.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mirrors `proptest::test_runner::Config` far enough for
/// `ProptestConfig { cases: N, ..ProptestConfig::default() }`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum rejected (assumed-away) cases tolerated before erroring.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 1024,
        }
    }
}

impl ProptestConfig {
    /// Convenience constructor matching the real crate.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property was falsified.
    Fail(String),
    /// The case was discarded by `prop_assume!`.
    Reject(String),
}

impl TestCaseError {
    /// A falsification with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection (assumption failure) with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// The RNG handed to strategies. Wraps the deterministic [`StdRng`] so the
/// strategy layer has a single concrete type.
#[derive(Debug)]
pub struct TestRng {
    pub(crate) rng: StdRng,
}

impl TestRng {
    /// A generator for case `case` of a run with base seed `base`.
    pub fn for_case(base: u64, case: u64) -> Self {
        // Golden-ratio mixing keeps per-case streams well separated.
        TestRng {
            rng: StdRng::seed_from_u64(base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }
}

/// Fixed base seed: runs are reproducible across invocations and machines.
/// Override with `PROPTEST_SEED=<n>` to explore a different sample.
fn base_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FF_EE00_D15E_A5E5)
}

/// Runs `config.cases` successful cases of `f`, panicking on the first
/// falsified property. Rejected cases are retried with fresh input (up to
/// `config.max_global_rejects` in total).
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = base_seed();
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut case = 0u64;
    while passed < config.cases {
        let mut rng = TestRng::for_case(base, case);
        match f(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "proptest '{name}': too many rejected cases ({rejected}); \
                     weaken the prop_assume! preconditions"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest '{name}' falsified at case {case} \
                     (base seed {base:#x}): {msg}"
                );
            }
        }
        case += 1;
    }
}
