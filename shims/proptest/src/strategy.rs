//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of type `Value` from a test RNG.
///
/// Unlike the real proptest there is no value-tree/shrinking machinery:
/// a strategy is just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns for
    /// it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `pred` (rejection sampling, bounded).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Type-erases the strategy for heterogeneous collections
    /// (e.g. [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;
    fn generate(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 1000 consecutive candidates",
            self.whence
        );
    }
}

/// Uniform choice among strategies with a common value type.
pub struct Union<V> {
    variants: Vec<BoxedStrategy<V>>,
}

impl<V> std::fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} variants)", self.variants.len())
    }
}

impl<V> Union<V> {
    /// Builds a union; panics if `variants` is empty.
    pub fn new(variants: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
        Union { variants }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.rng.gen_range(0..self.variants.len());
        self.variants[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
