//! Sampling strategies (`proptest::sample::subsequence`).

use crate::collection::SizeRange;
use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Generates order-preserving subsequences of `values` whose length falls
/// in `size` (clamped to the source length).
pub fn subsequence<T: Clone>(values: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
    Subsequence {
        values,
        size: size.into(),
    }
}

/// See [`subsequence`].
#[derive(Debug, Clone)]
pub struct Subsequence<T> {
    values: Vec<T>,
    size: SizeRange,
}

impl<T: Clone> Strategy for Subsequence<T> {
    type Value = Vec<T>;
    fn generate(&self, rng: &mut TestRng) -> Vec<T> {
        let n = self.values.len();
        let hi = self.size.upper().min(n);
        let lo = self.size.lower().min(hi);
        let len = rng.rng.gen_range(lo..=hi);
        // Partial Fisher–Yates over indices, then sort to preserve order.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..len {
            let j = rng.rng.gen_range(i..n);
            idx.swap(i, j);
        }
        let mut chosen = idx[..len].to_vec();
        chosen.sort_unstable();
        chosen.into_iter().map(|i| self.values[i].clone()).collect()
    }
}
