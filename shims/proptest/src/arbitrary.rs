//! `any::<T>()` — full-range strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical full-range strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Returns the canonical strategy generating any `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-range strategy for a primitive type.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen::<$t>()
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.rng.gen::<bool>()
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

impl Strategy for AnyPrimitive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Finite values only: the workspace uses these as probabilities
        // and magnitudes, where NaN/inf would just add assertion noise.
        rng.rng.gen::<f64>()
    }
}

impl Arbitrary for f64 {
    type Strategy = AnyPrimitive<f64>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}
