//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// An inclusive size range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.rng.gen_range(self.lo..=self.hi)
    }

    /// Smallest permitted length.
    pub fn lower(&self) -> usize {
        self.lo
    }

    /// Largest permitted length (inclusive).
    pub fn upper(&self) -> usize {
        self.hi
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty collection size range");
        SizeRange { lo, hi }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
