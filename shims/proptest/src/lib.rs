//! Offline shim for `proptest`.
//!
//! Implements the subset of the proptest 1.x API this workspace uses:
//! the [`proptest!`] macro, [`prop_assert!`]/[`prop_assert_eq!`]/
//! [`prop_assume!`], the [`Strategy`](strategy::Strategy) trait with
//! `prop_map`/`prop_flat_map`, range and tuple strategies, [`prop_oneof!`],
//! `any::<T>()`, `collection::vec`, `sample::subsequence`, `option::of` and
//! `bool::ANY`.
//!
//! Each test case draws its inputs from a deterministic per-case RNG (a
//! fixed base seed mixed with the case index), so runs are reproducible.
//! Unlike the real proptest there is **no shrinking**: a failing case
//! reports its case index and panics with the assertion message.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

pub mod arbitrary;
pub mod bool;
pub mod collection;
pub mod num;
pub mod option;
pub mod sample;

pub use arbitrary::any;

/// One-stop import mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a property, failing the case (not aborting the
/// process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l != r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Discards the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                &format!($($fmt)*),
            ));
        }
    };
}

/// Chooses uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr);) => {};
    (($config:expr);
     $(#[$attr:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let config = $config;
            $crate::test_runner::run_cases(&config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                #[allow(unreachable_code)]
                (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })()
            });
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}
