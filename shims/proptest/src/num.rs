//! Numeric strategy helpers. Range strategies themselves are implemented
//! directly on `std::ops::Range{,Inclusive}` in [`crate::strategy`]; this
//! module exists so `proptest::num` paths resolve.
