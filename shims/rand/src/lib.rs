//! Offline shim for `rand` 0.8.
//!
//! Provides the exact API surface the workspace uses: `Rng::{gen, gen_bool,
//! gen_range}`, `SeedableRng::seed_from_u64`, and `rngs::StdRng`. The
//! generator is xoshiro256++ seeded through SplitMix64 — deterministic per
//! seed and statistically solid for simulation workloads, but *not* the same
//! stream as the real `StdRng` (ChaCha12) and not cryptographically secure.

#![forbid(unsafe_code)]

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is shimmed).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform sample from `[lo, hi]` (inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi);
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width range: any value is uniform.
                    return rng.next_u64() as $t;
                }
                // Widening multiply avoids modulo bias well beyond the
                // precision any simulation here can observe.
                let wide = (rng.next_u64() as u128).wrapping_mul(span);
                lo.wrapping_add((wide >> 64) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_inclusive(rng, lo as f64, hi as f64) as f32
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + HalfOpen> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_inclusive(rng, self.start, self.end.half_open_upper())
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Converts a half-open upper bound into the largest included value.
pub trait HalfOpen: Sized {
    /// The greatest value strictly below `self`.
    fn half_open_upper(self) -> Self;
}

macro_rules! impl_half_open_int {
    ($($t:ty),*) => {$(
        impl HalfOpen for $t {
            fn half_open_upper(self) -> Self { self - 1 }
        }
    )*};
}
impl_half_open_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl HalfOpen for f64 {
    // For floats the half-open distinction is below sampling resolution.
    fn half_open_upper(self) -> Self {
        self
    }
}
impl HalfOpen for f32 {
    fn half_open_upper(self) -> Self {
        self
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws a value from the standard distribution for the type.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self { rng.next_u64() as $t }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The user-facing generator interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        f64::standard(self) < p
    }

    /// Uniform sample from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`: xoshiro256++
    /// seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5u32..=5);
            assert_eq!(w, 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes_are_exact() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }
}
