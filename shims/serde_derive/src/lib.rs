//! Offline shim for `serde_derive`: the derives accept the usual input
//! (including `#[serde(...)]` helper attributes) and expand to nothing.
//! The matching `serde` shim blanket-implements the traits, so deriving
//! them is a no-op that keeps `#[derive(Serialize, Deserialize)]` valid.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
