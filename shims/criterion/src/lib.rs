//! Offline shim for `criterion`: runs each benchmark `sample_size` times,
//! reports mean/min wall-clock per iteration to stdout. No statistical
//! analysis, no HTML reports, no command-line filtering.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name.to_string());
        group.bench_function("single", f);
        group.finish();
        self
    }
}

/// Units for reporting relative throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `group/function/parameter` style id.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(&id.to_string(), &mut |b| f(b));
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.to_string(), &mut |b| f(b, input));
        self
    }

    /// Ends the group (report flushing is per-benchmark, so this is a no-op).
    pub fn finish(&mut self) {}

    fn run_one(&self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed / b.iters);
            }
        }
        if samples.is_empty() {
            println!("bench {}/{id}: no iterations", self.name);
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = *samples.iter().min().expect("non-empty");
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                format!(", {:.0} elem/s", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                format!(", {:.0} B/s", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "bench {}/{id}: mean {mean:?}, min {min:?} over {} samples{rate}",
            self.name,
            samples.len()
        );
    }
}

/// Times the closure passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Runs and times `f` once per call (the shim does not batch).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Declares a function that runs the given benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` to run benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter(5), &5u32, |b, &n| {
            b.iter(|| {
                runs += 1;
                (0..n).sum::<u32>()
            });
        });
        group.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
    }
}
