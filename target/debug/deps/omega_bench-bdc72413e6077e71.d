/root/repo/target/debug/deps/omega_bench-bdc72413e6077e71.d: crates/bench/src/lib.rs crates/bench/src/e_consensus.rs crates/bench/src/e_omega.rs crates/bench/src/e_thread.rs crates/bench/src/e_wire.rs crates/bench/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libomega_bench-bdc72413e6077e71.rmeta: crates/bench/src/lib.rs crates/bench/src/e_consensus.rs crates/bench/src/e_omega.rs crates/bench/src/e_thread.rs crates/bench/src/e_wire.rs crates/bench/src/table.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/e_consensus.rs:
crates/bench/src/e_omega.rs:
crates/bench/src/e_thread.rs:
crates/bench/src/e_wire.rs:
crates/bench/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
