/root/repo/target/debug/deps/full_stack-692a5150f2563bf1.d: tests/tests/full_stack.rs

/root/repo/target/debug/deps/full_stack-692a5150f2563bf1: tests/tests/full_stack.rs

tests/tests/full_stack.rs:
