/root/repo/target/debug/deps/full_stack-ebe898c5e24dd6c7.d: tests/tests/full_stack.rs Cargo.toml

/root/repo/target/debug/deps/libfull_stack-ebe898c5e24dd6c7.rmeta: tests/tests/full_stack.rs Cargo.toml

tests/tests/full_stack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
