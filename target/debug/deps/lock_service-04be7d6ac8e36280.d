/root/repo/target/debug/deps/lock_service-04be7d6ac8e36280.d: examples/src/bin/lock_service.rs

/root/repo/target/debug/deps/lock_service-04be7d6ac8e36280: examples/src/bin/lock_service.rs

examples/src/bin/lock_service.rs:
