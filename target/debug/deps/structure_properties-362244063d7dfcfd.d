/root/repo/target/debug/deps/structure_properties-362244063d7dfcfd.d: crates/consensus/tests/structure_properties.rs

/root/repo/target/debug/deps/structure_properties-362244063d7dfcfd: crates/consensus/tests/structure_properties.rs

crates/consensus/tests/structure_properties.rs:
