/root/repo/target/debug/deps/quickstart-3f8d2abb31e1bb04.d: examples/src/bin/quickstart.rs Cargo.toml

/root/repo/target/debug/deps/libquickstart-3f8d2abb31e1bb04.rmeta: examples/src/bin/quickstart.rs Cargo.toml

examples/src/bin/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
