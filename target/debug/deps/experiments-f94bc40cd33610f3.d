/root/repo/target/debug/deps/experiments-f94bc40cd33610f3.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-f94bc40cd33610f3: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
