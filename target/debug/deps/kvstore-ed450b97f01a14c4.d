/root/repo/target/debug/deps/kvstore-ed450b97f01a14c4.d: crates/kvstore/src/lib.rs crates/kvstore/src/client.rs crates/kvstore/src/command.rs crates/kvstore/src/replica.rs crates/kvstore/src/state.rs Cargo.toml

/root/repo/target/debug/deps/libkvstore-ed450b97f01a14c4.rmeta: crates/kvstore/src/lib.rs crates/kvstore/src/client.rs crates/kvstore/src/command.rs crates/kvstore/src/replica.rs crates/kvstore/src/state.rs Cargo.toml

crates/kvstore/src/lib.rs:
crates/kvstore/src/client.rs:
crates/kvstore/src/command.rs:
crates/kvstore/src/replica.rs:
crates/kvstore/src/state.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
