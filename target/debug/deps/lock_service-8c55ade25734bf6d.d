/root/repo/target/debug/deps/lock_service-8c55ade25734bf6d.d: examples/src/bin/lock_service.rs Cargo.toml

/root/repo/target/debug/deps/liblock_service-8c55ade25734bf6d.rmeta: examples/src/bin/lock_service.rs Cargo.toml

examples/src/bin/lock_service.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
