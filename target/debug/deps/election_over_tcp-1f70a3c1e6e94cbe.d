/root/repo/target/debug/deps/election_over_tcp-1f70a3c1e6e94cbe.d: crates/wirenet/tests/election_over_tcp.rs

/root/repo/target/debug/deps/election_over_tcp-1f70a3c1e6e94cbe: crates/wirenet/tests/election_over_tcp.rs

crates/wirenet/tests/election_over_tcp.rs:
