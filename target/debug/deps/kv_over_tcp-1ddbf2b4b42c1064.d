/root/repo/target/debug/deps/kv_over_tcp-1ddbf2b4b42c1064.d: examples/src/bin/kv_over_tcp.rs Cargo.toml

/root/repo/target/debug/deps/libkv_over_tcp-1ddbf2b4b42c1064.rmeta: examples/src/bin/kv_over_tcp.rs Cargo.toml

examples/src/bin/kv_over_tcp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
