/root/repo/target/debug/deps/repro_mult-6e53269b43febb19.d: crates/core/tests/repro_mult.rs crates/core/tests/util/mod.rs

/root/repo/target/debug/deps/repro_mult-6e53269b43febb19: crates/core/tests/repro_mult.rs crates/core/tests/util/mod.rs

crates/core/tests/repro_mult.rs:
crates/core/tests/util/mod.rs:
