/root/repo/target/debug/deps/kv_over_tcp-208a845a662dd7a9.d: examples/src/bin/kv_over_tcp.rs

/root/repo/target/debug/deps/kv_over_tcp-208a845a662dd7a9: examples/src/bin/kv_over_tcp.rs

examples/src/bin/kv_over_tcp.rs:
