/root/repo/target/debug/deps/kv_integration-d61108dfa3b68137.d: crates/kvstore/tests/kv_integration.rs

/root/repo/target/debug/deps/kv_integration-d61108dfa3b68137: crates/kvstore/tests/kv_integration.rs

crates/kvstore/tests/kv_integration.rs:
