/root/repo/target/debug/deps/thread_cluster-683e0888fb23c7bf.d: examples/src/bin/thread_cluster.rs Cargo.toml

/root/repo/target/debug/deps/libthread_cluster-683e0888fb23c7bf.rmeta: examples/src/bin/thread_cluster.rs Cargo.toml

examples/src/bin/thread_cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
