/root/repo/target/debug/deps/netsim-b931a3e017e5fed7.d: crates/netsim/src/lib.rs crates/netsim/src/delay.rs crates/netsim/src/event.rs crates/netsim/src/fault.rs crates/netsim/src/link.rs crates/netsim/src/sim.rs crates/netsim/src/stats.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libnetsim-b931a3e017e5fed7.rmeta: crates/netsim/src/lib.rs crates/netsim/src/delay.rs crates/netsim/src/event.rs crates/netsim/src/fault.rs crates/netsim/src/link.rs crates/netsim/src/sim.rs crates/netsim/src/stats.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs Cargo.toml

crates/netsim/src/lib.rs:
crates/netsim/src/delay.rs:
crates/netsim/src/event.rs:
crates/netsim/src/fault.rs:
crates/netsim/src/link.rs:
crates/netsim/src/sim.rs:
crates/netsim/src/stats.rs:
crates/netsim/src/topology.rs:
crates/netsim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
