/root/repo/target/debug/deps/model_check-182348f83557c45d.d: examples/src/bin/model_check.rs

/root/repo/target/debug/deps/model_check-182348f83557c45d: examples/src/bin/model_check.rs

examples/src/bin/model_check.rs:
