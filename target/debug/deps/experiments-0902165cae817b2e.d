/root/repo/target/debug/deps/experiments-0902165cae817b2e.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-0902165cae817b2e: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
