/root/repo/target/debug/deps/wire_codec_properties-1e8bc5cb7793c3bd.d: tests/tests/wire_codec_properties.rs Cargo.toml

/root/repo/target/debug/deps/libwire_codec_properties-1e8bc5cb7793c3bd.rmeta: tests/tests/wire_codec_properties.rs Cargo.toml

tests/tests/wire_codec_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
