/root/repo/target/debug/deps/sim_properties-ec8ca44691c84da2.d: crates/netsim/tests/sim_properties.rs Cargo.toml

/root/repo/target/debug/deps/libsim_properties-ec8ca44691c84da2.rmeta: crates/netsim/tests/sim_properties.rs Cargo.toml

crates/netsim/tests/sim_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
