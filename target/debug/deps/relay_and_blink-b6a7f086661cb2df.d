/root/repo/target/debug/deps/relay_and_blink-b6a7f086661cb2df.d: crates/core/tests/relay_and_blink.rs crates/core/tests/util/mod.rs

/root/repo/target/debug/deps/relay_and_blink-b6a7f086661cb2df: crates/core/tests/relay_and_blink.rs crates/core/tests/util/mod.rs

crates/core/tests/relay_and_blink.rs:
crates/core/tests/util/mod.rs:
