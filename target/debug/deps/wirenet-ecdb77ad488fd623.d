/root/repo/target/debug/deps/wirenet-ecdb77ad488fd623.d: crates/wirenet/src/lib.rs crates/wirenet/src/cluster.rs crates/wirenet/src/counters.rs crates/wirenet/src/link.rs crates/wirenet/src/node.rs Cargo.toml

/root/repo/target/debug/deps/libwirenet-ecdb77ad488fd623.rmeta: crates/wirenet/src/lib.rs crates/wirenet/src/cluster.rs crates/wirenet/src/counters.rs crates/wirenet/src/link.rs crates/wirenet/src/node.rs Cargo.toml

crates/wirenet/src/lib.rs:
crates/wirenet/src/cluster.rs:
crates/wirenet/src/counters.rs:
crates/wirenet/src/link.rs:
crates/wirenet/src/node.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
