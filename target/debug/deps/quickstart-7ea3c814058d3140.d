/root/repo/target/debug/deps/quickstart-7ea3c814058d3140.d: examples/src/bin/quickstart.rs

/root/repo/target/debug/deps/quickstart-7ea3c814058d3140: examples/src/bin/quickstart.rs

examples/src/bin/quickstart.rs:
