/root/repo/target/debug/deps/leader_failover-4f97467d97eef1ae.d: examples/src/bin/leader_failover.rs Cargo.toml

/root/repo/target/debug/deps/libleader_failover-4f97467d97eef1ae.rmeta: examples/src/bin/leader_failover.rs Cargo.toml

examples/src/bin/leader_failover.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
