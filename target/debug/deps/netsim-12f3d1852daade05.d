/root/repo/target/debug/deps/netsim-12f3d1852daade05.d: crates/netsim/src/lib.rs crates/netsim/src/delay.rs crates/netsim/src/event.rs crates/netsim/src/fault.rs crates/netsim/src/link.rs crates/netsim/src/sim.rs crates/netsim/src/stats.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs

/root/repo/target/debug/deps/netsim-12f3d1852daade05: crates/netsim/src/lib.rs crates/netsim/src/delay.rs crates/netsim/src/event.rs crates/netsim/src/fault.rs crates/netsim/src/link.rs crates/netsim/src/sim.rs crates/netsim/src/stats.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs

crates/netsim/src/lib.rs:
crates/netsim/src/delay.rs:
crates/netsim/src/event.rs:
crates/netsim/src/fault.rs:
crates/netsim/src/link.rs:
crates/netsim/src/sim.rs:
crates/netsim/src/stats.rs:
crates/netsim/src/topology.rs:
crates/netsim/src/trace.rs:
