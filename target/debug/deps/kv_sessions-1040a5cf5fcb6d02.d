/root/repo/target/debug/deps/kv_sessions-1040a5cf5fcb6d02.d: examples/src/bin/kv_sessions.rs

/root/repo/target/debug/deps/kv_sessions-1040a5cf5fcb6d02: examples/src/bin/kv_sessions.rs

examples/src/bin/kv_sessions.rs:
