/root/repo/target/debug/deps/mck-5931f05159a9b8a2.d: crates/mck/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmck-5931f05159a9b8a2.rmeta: crates/mck/src/lib.rs Cargo.toml

crates/mck/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
