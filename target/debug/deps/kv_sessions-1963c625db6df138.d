/root/repo/target/debug/deps/kv_sessions-1963c625db6df138.d: examples/src/bin/kv_sessions.rs

/root/repo/target/debug/deps/kv_sessions-1963c625db6df138: examples/src/bin/kv_sessions.rs

examples/src/bin/kv_sessions.rs:
