/root/repo/target/debug/deps/sim_properties-4d44a8df42cb0871.d: crates/netsim/tests/sim_properties.rs

/root/repo/target/debug/deps/sim_properties-4d44a8df42cb0871: crates/netsim/tests/sim_properties.rs

crates/netsim/tests/sim_properties.rs:
