/root/repo/target/debug/deps/substrate_parity-3bba53808ac35eb4.d: tests/tests/substrate_parity.rs

/root/repo/target/debug/deps/substrate_parity-3bba53808ac35eb4: tests/tests/substrate_parity.rs

tests/tests/substrate_parity.rs:
