/root/repo/target/debug/deps/mck-0f3de5d96f5bda6e.d: crates/mck/src/lib.rs

/root/repo/target/debug/deps/mck-0f3de5d96f5bda6e: crates/mck/src/lib.rs

crates/mck/src/lib.rs:
