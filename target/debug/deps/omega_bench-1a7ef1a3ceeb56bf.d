/root/repo/target/debug/deps/omega_bench-1a7ef1a3ceeb56bf.d: crates/bench/src/lib.rs crates/bench/src/e_consensus.rs crates/bench/src/e_omega.rs crates/bench/src/e_thread.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/omega_bench-1a7ef1a3ceeb56bf: crates/bench/src/lib.rs crates/bench/src/e_consensus.rs crates/bench/src/e_omega.rs crates/bench/src/e_thread.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/e_consensus.rs:
crates/bench/src/e_omega.rs:
crates/bench/src/e_thread.rs:
crates/bench/src/table.rs:
