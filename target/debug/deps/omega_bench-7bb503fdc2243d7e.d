/root/repo/target/debug/deps/omega_bench-7bb503fdc2243d7e.d: crates/bench/src/lib.rs crates/bench/src/e_consensus.rs crates/bench/src/e_omega.rs crates/bench/src/e_thread.rs crates/bench/src/e_wire.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/omega_bench-7bb503fdc2243d7e: crates/bench/src/lib.rs crates/bench/src/e_consensus.rs crates/bench/src/e_omega.rs crates/bench/src/e_thread.rs crates/bench/src/e_wire.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/e_consensus.rs:
crates/bench/src/e_omega.rs:
crates/bench/src/e_thread.rs:
crates/bench/src/e_wire.rs:
crates/bench/src/table.rs:
