/root/repo/target/debug/deps/leader_failover-cb4e63dfac660e71.d: examples/src/bin/leader_failover.rs

/root/repo/target/debug/deps/leader_failover-cb4e63dfac660e71: examples/src/bin/leader_failover.rs

examples/src/bin/leader_failover.rs:
