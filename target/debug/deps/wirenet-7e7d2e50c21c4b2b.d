/root/repo/target/debug/deps/wirenet-7e7d2e50c21c4b2b.d: crates/wirenet/src/lib.rs crates/wirenet/src/cluster.rs crates/wirenet/src/counters.rs crates/wirenet/src/link.rs crates/wirenet/src/node.rs

/root/repo/target/debug/deps/wirenet-7e7d2e50c21c4b2b: crates/wirenet/src/lib.rs crates/wirenet/src/cluster.rs crates/wirenet/src/counters.rs crates/wirenet/src/link.rs crates/wirenet/src/node.rs

crates/wirenet/src/lib.rs:
crates/wirenet/src/cluster.rs:
crates/wirenet/src/counters.rs:
crates/wirenet/src/link.rs:
crates/wirenet/src/node.rs:
