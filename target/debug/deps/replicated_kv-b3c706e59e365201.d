/root/repo/target/debug/deps/replicated_kv-b3c706e59e365201.d: examples/src/bin/replicated_kv.rs

/root/repo/target/debug/deps/replicated_kv-b3c706e59e365201: examples/src/bin/replicated_kv.rs

examples/src/bin/replicated_kv.rs:
