/root/repo/target/debug/deps/lls_primitives-812bf708b7dd8def.d: crates/primitives/src/lib.rs crates/primitives/src/fault.rs crates/primitives/src/id.rs crates/primitives/src/sm.rs crates/primitives/src/time.rs crates/primitives/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/liblls_primitives-812bf708b7dd8def.rmeta: crates/primitives/src/lib.rs crates/primitives/src/fault.rs crates/primitives/src/id.rs crates/primitives/src/sm.rs crates/primitives/src/time.rs crates/primitives/src/wire.rs Cargo.toml

crates/primitives/src/lib.rs:
crates/primitives/src/fault.rs:
crates/primitives/src/id.rs:
crates/primitives/src/sm.rs:
crates/primitives/src/time.rs:
crates/primitives/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
