/root/repo/target/debug/deps/lock_service-b6abbca17e9c389f.d: examples/src/bin/lock_service.rs Cargo.toml

/root/repo/target/debug/deps/liblock_service-b6abbca17e9c389f.rmeta: examples/src/bin/lock_service.rs Cargo.toml

examples/src/bin/lock_service.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
