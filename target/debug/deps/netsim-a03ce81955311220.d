/root/repo/target/debug/deps/netsim-a03ce81955311220.d: crates/netsim/src/lib.rs crates/netsim/src/delay.rs crates/netsim/src/event.rs crates/netsim/src/fault.rs crates/netsim/src/link.rs crates/netsim/src/sim.rs crates/netsim/src/stats.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libnetsim-a03ce81955311220.rmeta: crates/netsim/src/lib.rs crates/netsim/src/delay.rs crates/netsim/src/event.rs crates/netsim/src/fault.rs crates/netsim/src/link.rs crates/netsim/src/sim.rs crates/netsim/src/stats.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs Cargo.toml

crates/netsim/src/lib.rs:
crates/netsim/src/delay.rs:
crates/netsim/src/event.rs:
crates/netsim/src/fault.rs:
crates/netsim/src/link.rs:
crates/netsim/src/sim.rs:
crates/netsim/src/stats.rs:
crates/netsim/src/topology.rs:
crates/netsim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
