/root/repo/target/debug/deps/full_stack-549e23a917ed4dd2.d: tests/tests/full_stack.rs

/root/repo/target/debug/deps/full_stack-549e23a917ed4dd2: tests/tests/full_stack.rs

tests/tests/full_stack.rs:
