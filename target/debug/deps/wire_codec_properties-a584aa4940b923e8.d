/root/repo/target/debug/deps/wire_codec_properties-a584aa4940b923e8.d: tests/tests/wire_codec_properties.rs

/root/repo/target/debug/deps/wire_codec_properties-a584aa4940b923e8: tests/tests/wire_codec_properties.rs

tests/tests/wire_codec_properties.rs:
