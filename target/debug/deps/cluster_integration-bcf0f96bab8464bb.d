/root/repo/target/debug/deps/cluster_integration-bcf0f96bab8464bb.d: crates/threadnet/tests/cluster_integration.rs

/root/repo/target/debug/deps/cluster_integration-bcf0f96bab8464bb: crates/threadnet/tests/cluster_integration.rs

crates/threadnet/tests/cluster_integration.rs:
