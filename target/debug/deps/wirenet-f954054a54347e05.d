/root/repo/target/debug/deps/wirenet-f954054a54347e05.d: crates/wirenet/src/lib.rs crates/wirenet/src/cluster.rs crates/wirenet/src/counters.rs crates/wirenet/src/link.rs crates/wirenet/src/node.rs

/root/repo/target/debug/deps/libwirenet-f954054a54347e05.rlib: crates/wirenet/src/lib.rs crates/wirenet/src/cluster.rs crates/wirenet/src/counters.rs crates/wirenet/src/link.rs crates/wirenet/src/node.rs

/root/repo/target/debug/deps/libwirenet-f954054a54347e05.rmeta: crates/wirenet/src/lib.rs crates/wirenet/src/cluster.rs crates/wirenet/src/counters.rs crates/wirenet/src/link.rs crates/wirenet/src/node.rs

crates/wirenet/src/lib.rs:
crates/wirenet/src/cluster.rs:
crates/wirenet/src/counters.rs:
crates/wirenet/src/link.rs:
crates/wirenet/src/node.rs:
