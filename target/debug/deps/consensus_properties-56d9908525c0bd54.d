/root/repo/target/debug/deps/consensus_properties-56d9908525c0bd54.d: crates/consensus/tests/consensus_properties.rs Cargo.toml

/root/repo/target/debug/deps/libconsensus_properties-56d9908525c0bd54.rmeta: crates/consensus/tests/consensus_properties.rs Cargo.toml

crates/consensus/tests/consensus_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
