/root/repo/target/debug/deps/model_check-bd15007e816cf2bc.d: examples/src/bin/model_check.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_check-bd15007e816cf2bc.rmeta: examples/src/bin/model_check.rs Cargo.toml

examples/src/bin/model_check.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
