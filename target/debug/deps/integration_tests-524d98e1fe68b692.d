/root/repo/target/debug/deps/integration_tests-524d98e1fe68b692.d: tests/lib.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_tests-524d98e1fe68b692.rmeta: tests/lib.rs Cargo.toml

tests/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
