/root/repo/target/debug/deps/quickstart-541e94bae6789485.d: examples/src/bin/quickstart.rs

/root/repo/target/debug/deps/quickstart-541e94bae6789485: examples/src/bin/quickstart.rs

examples/src/bin/quickstart.rs:
