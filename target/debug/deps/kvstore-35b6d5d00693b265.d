/root/repo/target/debug/deps/kvstore-35b6d5d00693b265.d: crates/kvstore/src/lib.rs crates/kvstore/src/client.rs crates/kvstore/src/command.rs crates/kvstore/src/replica.rs crates/kvstore/src/state.rs

/root/repo/target/debug/deps/kvstore-35b6d5d00693b265: crates/kvstore/src/lib.rs crates/kvstore/src/client.rs crates/kvstore/src/command.rs crates/kvstore/src/replica.rs crates/kvstore/src/state.rs

crates/kvstore/src/lib.rs:
crates/kvstore/src/client.rs:
crates/kvstore/src/command.rs:
crates/kvstore/src/replica.rs:
crates/kvstore/src/state.rs:
