/root/repo/target/debug/deps/netsim-c3fe7103353d2f45.d: crates/netsim/src/lib.rs crates/netsim/src/delay.rs crates/netsim/src/event.rs crates/netsim/src/fault.rs crates/netsim/src/link.rs crates/netsim/src/sim.rs crates/netsim/src/stats.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs

/root/repo/target/debug/deps/libnetsim-c3fe7103353d2f45.rlib: crates/netsim/src/lib.rs crates/netsim/src/delay.rs crates/netsim/src/event.rs crates/netsim/src/fault.rs crates/netsim/src/link.rs crates/netsim/src/sim.rs crates/netsim/src/stats.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs

/root/repo/target/debug/deps/libnetsim-c3fe7103353d2f45.rmeta: crates/netsim/src/lib.rs crates/netsim/src/delay.rs crates/netsim/src/event.rs crates/netsim/src/fault.rs crates/netsim/src/link.rs crates/netsim/src/sim.rs crates/netsim/src/stats.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs

crates/netsim/src/lib.rs:
crates/netsim/src/delay.rs:
crates/netsim/src/event.rs:
crates/netsim/src/fault.rs:
crates/netsim/src/link.rs:
crates/netsim/src/sim.rs:
crates/netsim/src/stats.rs:
crates/netsim/src/topology.rs:
crates/netsim/src/trace.rs:
