/root/repo/target/debug/deps/repro_mult-64dba0887579342e.d: crates/core/tests/repro_mult.rs crates/core/tests/util/mod.rs Cargo.toml

/root/repo/target/debug/deps/librepro_mult-64dba0887579342e.rmeta: crates/core/tests/repro_mult.rs crates/core/tests/util/mod.rs Cargo.toml

crates/core/tests/repro_mult.rs:
crates/core/tests/util/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
