/root/repo/target/debug/deps/consensus_integration-de9e0bd70b2e7313.d: crates/consensus/tests/consensus_integration.rs

/root/repo/target/debug/deps/consensus_integration-de9e0bd70b2e7313: crates/consensus/tests/consensus_integration.rs

crates/consensus/tests/consensus_integration.rs:
