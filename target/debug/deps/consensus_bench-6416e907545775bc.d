/root/repo/target/debug/deps/consensus_bench-6416e907545775bc.d: crates/bench/benches/consensus_bench.rs Cargo.toml

/root/repo/target/debug/deps/libconsensus_bench-6416e907545775bc.rmeta: crates/bench/benches/consensus_bench.rs Cargo.toml

crates/bench/benches/consensus_bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
