/root/repo/target/debug/deps/model_check-b5ea8dad8cea5c52.d: examples/src/bin/model_check.rs

/root/repo/target/debug/deps/model_check-b5ea8dad8cea5c52: examples/src/bin/model_check.rs

examples/src/bin/model_check.rs:
