/root/repo/target/debug/deps/omega-8d054919fcbfecea.d: crates/core/src/lib.rs crates/core/src/baseline/mod.rs crates/core/src/baseline/all_to_all.rs crates/core/src/baseline/broadcast_source.rs crates/core/src/comm_efficient.rs crates/core/src/msg.rs crates/core/src/params.rs crates/core/src/qos.rs crates/core/src/rank.rs crates/core/src/relay.rs crates/core/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/libomega-8d054919fcbfecea.rmeta: crates/core/src/lib.rs crates/core/src/baseline/mod.rs crates/core/src/baseline/all_to_all.rs crates/core/src/baseline/broadcast_source.rs crates/core/src/comm_efficient.rs crates/core/src/msg.rs crates/core/src/params.rs crates/core/src/qos.rs crates/core/src/rank.rs crates/core/src/relay.rs crates/core/src/spec.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/baseline/mod.rs:
crates/core/src/baseline/all_to_all.rs:
crates/core/src/baseline/broadcast_source.rs:
crates/core/src/comm_efficient.rs:
crates/core/src/msg.rs:
crates/core/src/params.rs:
crates/core/src/qos.rs:
crates/core/src/rank.rs:
crates/core/src/relay.rs:
crates/core/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
