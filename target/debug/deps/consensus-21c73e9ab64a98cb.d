/root/repo/target/debug/deps/consensus-21c73e9ab64a98cb.d: crates/consensus/src/lib.rs crates/consensus/src/ballot.rs crates/consensus/src/checker.rs crates/consensus/src/msg.rs crates/consensus/src/rotating.rs crates/consensus/src/rsm.rs crates/consensus/src/single.rs Cargo.toml

/root/repo/target/debug/deps/libconsensus-21c73e9ab64a98cb.rmeta: crates/consensus/src/lib.rs crates/consensus/src/ballot.rs crates/consensus/src/checker.rs crates/consensus/src/msg.rs crates/consensus/src/rotating.rs crates/consensus/src/rsm.rs crates/consensus/src/single.rs Cargo.toml

crates/consensus/src/lib.rs:
crates/consensus/src/ballot.rs:
crates/consensus/src/checker.rs:
crates/consensus/src/msg.rs:
crates/consensus/src/rotating.rs:
crates/consensus/src/rsm.rs:
crates/consensus/src/single.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
