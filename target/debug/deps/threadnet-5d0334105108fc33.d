/root/repo/target/debug/deps/threadnet-5d0334105108fc33.d: crates/threadnet/src/lib.rs crates/threadnet/src/cluster.rs crates/threadnet/src/router.rs

/root/repo/target/debug/deps/threadnet-5d0334105108fc33: crates/threadnet/src/lib.rs crates/threadnet/src/cluster.rs crates/threadnet/src/router.rs

crates/threadnet/src/lib.rs:
crates/threadnet/src/cluster.rs:
crates/threadnet/src/router.rs:
