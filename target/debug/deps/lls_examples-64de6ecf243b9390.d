/root/repo/target/debug/deps/lls_examples-64de6ecf243b9390.d: examples/src/lib.rs

/root/repo/target/debug/deps/liblls_examples-64de6ecf243b9390.rlib: examples/src/lib.rs

/root/repo/target/debug/deps/liblls_examples-64de6ecf243b9390.rmeta: examples/src/lib.rs

examples/src/lib.rs:
