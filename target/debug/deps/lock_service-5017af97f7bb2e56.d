/root/repo/target/debug/deps/lock_service-5017af97f7bb2e56.d: examples/src/bin/lock_service.rs

/root/repo/target/debug/deps/lock_service-5017af97f7bb2e56: examples/src/bin/lock_service.rs

examples/src/bin/lock_service.rs:
