/root/repo/target/debug/deps/thread_cluster-7b35cbb27a19697e.d: examples/src/bin/thread_cluster.rs

/root/repo/target/debug/deps/thread_cluster-7b35cbb27a19697e: examples/src/bin/thread_cluster.rs

examples/src/bin/thread_cluster.rs:
