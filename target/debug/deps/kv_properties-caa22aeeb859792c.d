/root/repo/target/debug/deps/kv_properties-caa22aeeb859792c.d: crates/kvstore/tests/kv_properties.rs

/root/repo/target/debug/deps/kv_properties-caa22aeeb859792c: crates/kvstore/tests/kv_properties.rs

crates/kvstore/tests/kv_properties.rs:
