/root/repo/target/debug/deps/threadnet-d99abd0f77e2ff16.d: crates/threadnet/src/lib.rs crates/threadnet/src/cluster.rs crates/threadnet/src/router.rs

/root/repo/target/debug/deps/threadnet-d99abd0f77e2ff16: crates/threadnet/src/lib.rs crates/threadnet/src/cluster.rs crates/threadnet/src/router.rs

crates/threadnet/src/lib.rs:
crates/threadnet/src/cluster.rs:
crates/threadnet/src/router.rs:
