/root/repo/target/debug/deps/integration_tests-9ff7d1880e875e87.d: tests/lib.rs

/root/repo/target/debug/deps/integration_tests-9ff7d1880e875e87: tests/lib.rs

tests/lib.rs:
