/root/repo/target/debug/deps/consensus-095a56fbbb3f1c0b.d: crates/consensus/src/lib.rs crates/consensus/src/ballot.rs crates/consensus/src/checker.rs crates/consensus/src/msg.rs crates/consensus/src/rotating.rs crates/consensus/src/rsm.rs crates/consensus/src/single.rs

/root/repo/target/debug/deps/consensus-095a56fbbb3f1c0b: crates/consensus/src/lib.rs crates/consensus/src/ballot.rs crates/consensus/src/checker.rs crates/consensus/src/msg.rs crates/consensus/src/rotating.rs crates/consensus/src/rsm.rs crates/consensus/src/single.rs

crates/consensus/src/lib.rs:
crates/consensus/src/ballot.rs:
crates/consensus/src/checker.rs:
crates/consensus/src/msg.rs:
crates/consensus/src/rotating.rs:
crates/consensus/src/rsm.rs:
crates/consensus/src/single.rs:
