/root/repo/target/debug/deps/election-3d0466a9352c922b.d: crates/core/tests/election.rs crates/core/tests/util/mod.rs

/root/repo/target/debug/deps/election-3d0466a9352c922b: crates/core/tests/election.rs crates/core/tests/util/mod.rs

crates/core/tests/election.rs:
crates/core/tests/util/mod.rs:
