/root/repo/target/debug/deps/consensus-d279d66c3d1b2d7a.d: crates/consensus/src/lib.rs crates/consensus/src/ballot.rs crates/consensus/src/checker.rs crates/consensus/src/msg.rs crates/consensus/src/rotating.rs crates/consensus/src/rsm.rs crates/consensus/src/single.rs

/root/repo/target/debug/deps/libconsensus-d279d66c3d1b2d7a.rlib: crates/consensus/src/lib.rs crates/consensus/src/ballot.rs crates/consensus/src/checker.rs crates/consensus/src/msg.rs crates/consensus/src/rotating.rs crates/consensus/src/rsm.rs crates/consensus/src/single.rs

/root/repo/target/debug/deps/libconsensus-d279d66c3d1b2d7a.rmeta: crates/consensus/src/lib.rs crates/consensus/src/ballot.rs crates/consensus/src/checker.rs crates/consensus/src/msg.rs crates/consensus/src/rotating.rs crates/consensus/src/rsm.rs crates/consensus/src/single.rs

crates/consensus/src/lib.rs:
crates/consensus/src/ballot.rs:
crates/consensus/src/checker.rs:
crates/consensus/src/msg.rs:
crates/consensus/src/rotating.rs:
crates/consensus/src/rsm.rs:
crates/consensus/src/single.rs:
