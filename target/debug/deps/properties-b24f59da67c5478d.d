/root/repo/target/debug/deps/properties-b24f59da67c5478d.d: crates/core/tests/properties.rs crates/core/tests/util/mod.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-b24f59da67c5478d.rmeta: crates/core/tests/properties.rs crates/core/tests/util/mod.rs Cargo.toml

crates/core/tests/properties.rs:
crates/core/tests/util/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
