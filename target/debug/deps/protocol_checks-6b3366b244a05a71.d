/root/repo/target/debug/deps/protocol_checks-6b3366b244a05a71.d: crates/mck/tests/protocol_checks.rs

/root/repo/target/debug/deps/protocol_checks-6b3366b244a05a71: crates/mck/tests/protocol_checks.rs

crates/mck/tests/protocol_checks.rs:
