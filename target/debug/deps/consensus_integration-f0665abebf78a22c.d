/root/repo/target/debug/deps/consensus_integration-f0665abebf78a22c.d: crates/consensus/tests/consensus_integration.rs Cargo.toml

/root/repo/target/debug/deps/libconsensus_integration-f0665abebf78a22c.rmeta: crates/consensus/tests/consensus_integration.rs Cargo.toml

crates/consensus/tests/consensus_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
