/root/repo/target/debug/deps/structure_properties-1572c4c66d47e1af.d: crates/consensus/tests/structure_properties.rs Cargo.toml

/root/repo/target/debug/deps/libstructure_properties-1572c4c66d47e1af.rmeta: crates/consensus/tests/structure_properties.rs Cargo.toml

crates/consensus/tests/structure_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
