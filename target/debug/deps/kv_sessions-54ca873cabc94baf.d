/root/repo/target/debug/deps/kv_sessions-54ca873cabc94baf.d: examples/src/bin/kv_sessions.rs Cargo.toml

/root/repo/target/debug/deps/libkv_sessions-54ca873cabc94baf.rmeta: examples/src/bin/kv_sessions.rs Cargo.toml

examples/src/bin/kv_sessions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
