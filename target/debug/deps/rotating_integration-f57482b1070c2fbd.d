/root/repo/target/debug/deps/rotating_integration-f57482b1070c2fbd.d: crates/consensus/tests/rotating_integration.rs Cargo.toml

/root/repo/target/debug/deps/librotating_integration-f57482b1070c2fbd.rmeta: crates/consensus/tests/rotating_integration.rs Cargo.toml

crates/consensus/tests/rotating_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
