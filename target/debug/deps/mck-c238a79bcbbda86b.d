/root/repo/target/debug/deps/mck-c238a79bcbbda86b.d: crates/mck/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmck-c238a79bcbbda86b.rmeta: crates/mck/src/lib.rs Cargo.toml

crates/mck/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
