/root/repo/target/debug/deps/lls_examples-a06b84cd96153c81.d: examples/src/lib.rs

/root/repo/target/debug/deps/lls_examples-a06b84cd96153c81: examples/src/lib.rs

examples/src/lib.rs:
