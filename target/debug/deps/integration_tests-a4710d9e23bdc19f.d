/root/repo/target/debug/deps/integration_tests-a4710d9e23bdc19f.d: tests/lib.rs

/root/repo/target/debug/deps/integration_tests-a4710d9e23bdc19f: tests/lib.rs

tests/lib.rs:
