/root/repo/target/debug/deps/properties-f82221c8a8fef059.d: crates/core/tests/properties.rs crates/core/tests/util/mod.rs

/root/repo/target/debug/deps/properties-f82221c8a8fef059: crates/core/tests/properties.rs crates/core/tests/util/mod.rs

crates/core/tests/properties.rs:
crates/core/tests/util/mod.rs:
