/root/repo/target/debug/deps/election-5bd8bd38404199ba.d: crates/bench/benches/election.rs Cargo.toml

/root/repo/target/debug/deps/libelection-5bd8bd38404199ba.rmeta: crates/bench/benches/election.rs Cargo.toml

crates/bench/benches/election.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
