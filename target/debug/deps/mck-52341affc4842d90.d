/root/repo/target/debug/deps/mck-52341affc4842d90.d: crates/mck/src/lib.rs

/root/repo/target/debug/deps/libmck-52341affc4842d90.rlib: crates/mck/src/lib.rs

/root/repo/target/debug/deps/libmck-52341affc4842d90.rmeta: crates/mck/src/lib.rs

crates/mck/src/lib.rs:
