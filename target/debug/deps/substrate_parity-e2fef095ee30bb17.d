/root/repo/target/debug/deps/substrate_parity-e2fef095ee30bb17.d: tests/tests/substrate_parity.rs

/root/repo/target/debug/deps/substrate_parity-e2fef095ee30bb17: tests/tests/substrate_parity.rs

tests/tests/substrate_parity.rs:
