/root/repo/target/debug/deps/replicated_kv-170011a1fac0cbc0.d: examples/src/bin/replicated_kv.rs Cargo.toml

/root/repo/target/debug/deps/libreplicated_kv-170011a1fac0cbc0.rmeta: examples/src/bin/replicated_kv.rs Cargo.toml

examples/src/bin/replicated_kv.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
