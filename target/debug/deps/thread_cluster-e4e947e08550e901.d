/root/repo/target/debug/deps/thread_cluster-e4e947e08550e901.d: examples/src/bin/thread_cluster.rs

/root/repo/target/debug/deps/thread_cluster-e4e947e08550e901: examples/src/bin/thread_cluster.rs

examples/src/bin/thread_cluster.rs:
