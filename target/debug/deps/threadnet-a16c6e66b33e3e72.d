/root/repo/target/debug/deps/threadnet-a16c6e66b33e3e72.d: crates/threadnet/src/lib.rs crates/threadnet/src/cluster.rs crates/threadnet/src/router.rs

/root/repo/target/debug/deps/libthreadnet-a16c6e66b33e3e72.rlib: crates/threadnet/src/lib.rs crates/threadnet/src/cluster.rs crates/threadnet/src/router.rs

/root/repo/target/debug/deps/libthreadnet-a16c6e66b33e3e72.rmeta: crates/threadnet/src/lib.rs crates/threadnet/src/cluster.rs crates/threadnet/src/router.rs

crates/threadnet/src/lib.rs:
crates/threadnet/src/cluster.rs:
crates/threadnet/src/router.rs:
