/root/repo/target/debug/deps/cluster_integration-9da08a736993f3c6.d: crates/threadnet/tests/cluster_integration.rs

/root/repo/target/debug/deps/cluster_integration-9da08a736993f3c6: crates/threadnet/tests/cluster_integration.rs

crates/threadnet/tests/cluster_integration.rs:
