/root/repo/target/debug/deps/omega-f604143332e57e3a.d: crates/core/src/lib.rs crates/core/src/baseline/mod.rs crates/core/src/baseline/all_to_all.rs crates/core/src/baseline/broadcast_source.rs crates/core/src/comm_efficient.rs crates/core/src/msg.rs crates/core/src/params.rs crates/core/src/qos.rs crates/core/src/rank.rs crates/core/src/relay.rs crates/core/src/spec.rs

/root/repo/target/debug/deps/omega-f604143332e57e3a: crates/core/src/lib.rs crates/core/src/baseline/mod.rs crates/core/src/baseline/all_to_all.rs crates/core/src/baseline/broadcast_source.rs crates/core/src/comm_efficient.rs crates/core/src/msg.rs crates/core/src/params.rs crates/core/src/qos.rs crates/core/src/rank.rs crates/core/src/relay.rs crates/core/src/spec.rs

crates/core/src/lib.rs:
crates/core/src/baseline/mod.rs:
crates/core/src/baseline/all_to_all.rs:
crates/core/src/baseline/broadcast_source.rs:
crates/core/src/comm_efficient.rs:
crates/core/src/msg.rs:
crates/core/src/params.rs:
crates/core/src/qos.rs:
crates/core/src/rank.rs:
crates/core/src/relay.rs:
crates/core/src/spec.rs:
