/root/repo/target/debug/deps/lls_primitives-8d0bd20635eec17c.d: crates/primitives/src/lib.rs crates/primitives/src/fault.rs crates/primitives/src/id.rs crates/primitives/src/sm.rs crates/primitives/src/time.rs crates/primitives/src/wire.rs

/root/repo/target/debug/deps/lls_primitives-8d0bd20635eec17c: crates/primitives/src/lib.rs crates/primitives/src/fault.rs crates/primitives/src/id.rs crates/primitives/src/sm.rs crates/primitives/src/time.rs crates/primitives/src/wire.rs

crates/primitives/src/lib.rs:
crates/primitives/src/fault.rs:
crates/primitives/src/id.rs:
crates/primitives/src/sm.rs:
crates/primitives/src/time.rs:
crates/primitives/src/wire.rs:
