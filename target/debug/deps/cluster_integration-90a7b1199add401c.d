/root/repo/target/debug/deps/cluster_integration-90a7b1199add401c.d: crates/threadnet/tests/cluster_integration.rs Cargo.toml

/root/repo/target/debug/deps/libcluster_integration-90a7b1199add401c.rmeta: crates/threadnet/tests/cluster_integration.rs Cargo.toml

crates/threadnet/tests/cluster_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
