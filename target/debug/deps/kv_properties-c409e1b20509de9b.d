/root/repo/target/debug/deps/kv_properties-c409e1b20509de9b.d: crates/kvstore/tests/kv_properties.rs Cargo.toml

/root/repo/target/debug/deps/libkv_properties-c409e1b20509de9b.rmeta: crates/kvstore/tests/kv_properties.rs Cargo.toml

crates/kvstore/tests/kv_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
