/root/repo/target/debug/deps/kvstore-60bad6b86a26c562.d: crates/kvstore/src/lib.rs crates/kvstore/src/client.rs crates/kvstore/src/command.rs crates/kvstore/src/replica.rs crates/kvstore/src/state.rs

/root/repo/target/debug/deps/libkvstore-60bad6b86a26c562.rlib: crates/kvstore/src/lib.rs crates/kvstore/src/client.rs crates/kvstore/src/command.rs crates/kvstore/src/replica.rs crates/kvstore/src/state.rs

/root/repo/target/debug/deps/libkvstore-60bad6b86a26c562.rmeta: crates/kvstore/src/lib.rs crates/kvstore/src/client.rs crates/kvstore/src/command.rs crates/kvstore/src/replica.rs crates/kvstore/src/state.rs

crates/kvstore/src/lib.rs:
crates/kvstore/src/client.rs:
crates/kvstore/src/command.rs:
crates/kvstore/src/replica.rs:
crates/kvstore/src/state.rs:
