/root/repo/target/debug/deps/protocol_checks-57d7ccf6a7ae28fe.d: crates/mck/tests/protocol_checks.rs Cargo.toml

/root/repo/target/debug/deps/libprotocol_checks-57d7ccf6a7ae28fe.rmeta: crates/mck/tests/protocol_checks.rs Cargo.toml

crates/mck/tests/protocol_checks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
