/root/repo/target/debug/deps/lls_examples-bd46fd2fcadae149.d: examples/src/lib.rs

/root/repo/target/debug/deps/lls_examples-bd46fd2fcadae149: examples/src/lib.rs

examples/src/lib.rs:
