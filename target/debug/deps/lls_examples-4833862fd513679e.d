/root/repo/target/debug/deps/lls_examples-4833862fd513679e.d: examples/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblls_examples-4833862fd513679e.rmeta: examples/src/lib.rs Cargo.toml

examples/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
