/root/repo/target/debug/deps/thread_cluster-fed2adb253db2b1f.d: examples/src/bin/thread_cluster.rs Cargo.toml

/root/repo/target/debug/deps/libthread_cluster-fed2adb253db2b1f.rmeta: examples/src/bin/thread_cluster.rs Cargo.toml

examples/src/bin/thread_cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
