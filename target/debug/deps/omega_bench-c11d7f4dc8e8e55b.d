/root/repo/target/debug/deps/omega_bench-c11d7f4dc8e8e55b.d: crates/bench/src/lib.rs crates/bench/src/e_consensus.rs crates/bench/src/e_omega.rs crates/bench/src/e_thread.rs crates/bench/src/e_wire.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libomega_bench-c11d7f4dc8e8e55b.rlib: crates/bench/src/lib.rs crates/bench/src/e_consensus.rs crates/bench/src/e_omega.rs crates/bench/src/e_thread.rs crates/bench/src/e_wire.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libomega_bench-c11d7f4dc8e8e55b.rmeta: crates/bench/src/lib.rs crates/bench/src/e_consensus.rs crates/bench/src/e_omega.rs crates/bench/src/e_thread.rs crates/bench/src/e_wire.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/e_consensus.rs:
crates/bench/src/e_omega.rs:
crates/bench/src/e_thread.rs:
crates/bench/src/e_wire.rs:
crates/bench/src/table.rs:
