/root/repo/target/debug/deps/threadnet-b3b375adb6cdddc8.d: crates/threadnet/src/lib.rs crates/threadnet/src/cluster.rs crates/threadnet/src/router.rs

/root/repo/target/debug/deps/libthreadnet-b3b375adb6cdddc8.rlib: crates/threadnet/src/lib.rs crates/threadnet/src/cluster.rs crates/threadnet/src/router.rs

/root/repo/target/debug/deps/libthreadnet-b3b375adb6cdddc8.rmeta: crates/threadnet/src/lib.rs crates/threadnet/src/cluster.rs crates/threadnet/src/router.rs

crates/threadnet/src/lib.rs:
crates/threadnet/src/cluster.rs:
crates/threadnet/src/router.rs:
