/root/repo/target/debug/deps/proptest-4c82be4f75f5f6bd.d: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs shims/proptest/src/arbitrary.rs shims/proptest/src/bool.rs shims/proptest/src/collection.rs shims/proptest/src/num.rs shims/proptest/src/option.rs shims/proptest/src/sample.rs

/root/repo/target/debug/deps/proptest-4c82be4f75f5f6bd: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs shims/proptest/src/arbitrary.rs shims/proptest/src/bool.rs shims/proptest/src/collection.rs shims/proptest/src/num.rs shims/proptest/src/option.rs shims/proptest/src/sample.rs

shims/proptest/src/lib.rs:
shims/proptest/src/strategy.rs:
shims/proptest/src/test_runner.rs:
shims/proptest/src/arbitrary.rs:
shims/proptest/src/bool.rs:
shims/proptest/src/collection.rs:
shims/proptest/src/num.rs:
shims/proptest/src/option.rs:
shims/proptest/src/sample.rs:
