/root/repo/target/debug/deps/substrate_parity-274f6009cfd8824a.d: tests/tests/substrate_parity.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrate_parity-274f6009cfd8824a.rmeta: tests/tests/substrate_parity.rs Cargo.toml

tests/tests/substrate_parity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
