/root/repo/target/debug/deps/relay_and_blink-57aef205f3559b75.d: crates/core/tests/relay_and_blink.rs crates/core/tests/util/mod.rs Cargo.toml

/root/repo/target/debug/deps/librelay_and_blink-57aef205f3559b75.rmeta: crates/core/tests/relay_and_blink.rs crates/core/tests/util/mod.rs Cargo.toml

crates/core/tests/relay_and_blink.rs:
crates/core/tests/util/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
