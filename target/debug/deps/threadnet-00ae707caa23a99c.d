/root/repo/target/debug/deps/threadnet-00ae707caa23a99c.d: crates/threadnet/src/lib.rs crates/threadnet/src/cluster.rs crates/threadnet/src/router.rs Cargo.toml

/root/repo/target/debug/deps/libthreadnet-00ae707caa23a99c.rmeta: crates/threadnet/src/lib.rs crates/threadnet/src/cluster.rs crates/threadnet/src/router.rs Cargo.toml

crates/threadnet/src/lib.rs:
crates/threadnet/src/cluster.rs:
crates/threadnet/src/router.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
