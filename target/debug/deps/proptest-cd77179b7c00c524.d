/root/repo/target/debug/deps/proptest-cd77179b7c00c524.d: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs shims/proptest/src/arbitrary.rs shims/proptest/src/bool.rs shims/proptest/src/collection.rs shims/proptest/src/num.rs shims/proptest/src/option.rs shims/proptest/src/sample.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-cd77179b7c00c524.rmeta: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs shims/proptest/src/arbitrary.rs shims/proptest/src/bool.rs shims/proptest/src/collection.rs shims/proptest/src/num.rs shims/proptest/src/option.rs shims/proptest/src/sample.rs Cargo.toml

shims/proptest/src/lib.rs:
shims/proptest/src/strategy.rs:
shims/proptest/src/test_runner.rs:
shims/proptest/src/arbitrary.rs:
shims/proptest/src/bool.rs:
shims/proptest/src/collection.rs:
shims/proptest/src/num.rs:
shims/proptest/src/option.rs:
shims/proptest/src/sample.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
