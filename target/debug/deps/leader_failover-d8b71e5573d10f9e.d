/root/repo/target/debug/deps/leader_failover-d8b71e5573d10f9e.d: examples/src/bin/leader_failover.rs

/root/repo/target/debug/deps/leader_failover-d8b71e5573d10f9e: examples/src/bin/leader_failover.rs

examples/src/bin/leader_failover.rs:
