/root/repo/target/debug/deps/replicated_kv-6d1686418873a185.d: examples/src/bin/replicated_kv.rs

/root/repo/target/debug/deps/replicated_kv-6d1686418873a185: examples/src/bin/replicated_kv.rs

examples/src/bin/replicated_kv.rs:
