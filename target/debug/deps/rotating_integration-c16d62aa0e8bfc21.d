/root/repo/target/debug/deps/rotating_integration-c16d62aa0e8bfc21.d: crates/consensus/tests/rotating_integration.rs

/root/repo/target/debug/deps/rotating_integration-c16d62aa0e8bfc21: crates/consensus/tests/rotating_integration.rs

crates/consensus/tests/rotating_integration.rs:
