/root/repo/target/debug/deps/lls_examples-727eae5d652ecb9f.d: examples/src/lib.rs

/root/repo/target/debug/deps/liblls_examples-727eae5d652ecb9f.rlib: examples/src/lib.rs

/root/repo/target/debug/deps/liblls_examples-727eae5d652ecb9f.rmeta: examples/src/lib.rs

examples/src/lib.rs:
