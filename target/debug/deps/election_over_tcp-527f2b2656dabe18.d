/root/repo/target/debug/deps/election_over_tcp-527f2b2656dabe18.d: crates/wirenet/tests/election_over_tcp.rs Cargo.toml

/root/repo/target/debug/deps/libelection_over_tcp-527f2b2656dabe18.rmeta: crates/wirenet/tests/election_over_tcp.rs Cargo.toml

crates/wirenet/tests/election_over_tcp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
