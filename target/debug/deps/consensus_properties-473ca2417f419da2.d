/root/repo/target/debug/deps/consensus_properties-473ca2417f419da2.d: crates/consensus/tests/consensus_properties.rs

/root/repo/target/debug/deps/consensus_properties-473ca2417f419da2: crates/consensus/tests/consensus_properties.rs

crates/consensus/tests/consensus_properties.rs:
