/root/repo/target/debug/deps/kv_integration-b2291c2ae274c20c.d: crates/kvstore/tests/kv_integration.rs Cargo.toml

/root/repo/target/debug/deps/libkv_integration-b2291c2ae274c20c.rmeta: crates/kvstore/tests/kv_integration.rs Cargo.toml

crates/kvstore/tests/kv_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
