/root/repo/target/debug/deps/lls_primitives-3b70c15996d4f3d0.d: crates/primitives/src/lib.rs crates/primitives/src/fault.rs crates/primitives/src/id.rs crates/primitives/src/sm.rs crates/primitives/src/time.rs crates/primitives/src/wire.rs

/root/repo/target/debug/deps/liblls_primitives-3b70c15996d4f3d0.rlib: crates/primitives/src/lib.rs crates/primitives/src/fault.rs crates/primitives/src/id.rs crates/primitives/src/sm.rs crates/primitives/src/time.rs crates/primitives/src/wire.rs

/root/repo/target/debug/deps/liblls_primitives-3b70c15996d4f3d0.rmeta: crates/primitives/src/lib.rs crates/primitives/src/fault.rs crates/primitives/src/id.rs crates/primitives/src/sm.rs crates/primitives/src/time.rs crates/primitives/src/wire.rs

crates/primitives/src/lib.rs:
crates/primitives/src/fault.rs:
crates/primitives/src/id.rs:
crates/primitives/src/sm.rs:
crates/primitives/src/time.rs:
crates/primitives/src/wire.rs:
