/root/repo/target/debug/deps/omega_bench-fd7b04579be532da.d: crates/bench/src/lib.rs crates/bench/src/e_consensus.rs crates/bench/src/e_omega.rs crates/bench/src/e_thread.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libomega_bench-fd7b04579be532da.rlib: crates/bench/src/lib.rs crates/bench/src/e_consensus.rs crates/bench/src/e_omega.rs crates/bench/src/e_thread.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libomega_bench-fd7b04579be532da.rmeta: crates/bench/src/lib.rs crates/bench/src/e_consensus.rs crates/bench/src/e_omega.rs crates/bench/src/e_thread.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/e_consensus.rs:
crates/bench/src/e_omega.rs:
crates/bench/src/e_thread.rs:
crates/bench/src/table.rs:
