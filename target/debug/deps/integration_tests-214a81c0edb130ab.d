/root/repo/target/debug/deps/integration_tests-214a81c0edb130ab.d: tests/lib.rs

/root/repo/target/debug/deps/libintegration_tests-214a81c0edb130ab.rlib: tests/lib.rs

/root/repo/target/debug/deps/libintegration_tests-214a81c0edb130ab.rmeta: tests/lib.rs

tests/lib.rs:
