/root/repo/target/debug/deps/integration_tests-c1e33630db4da1fe.d: tests/lib.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_tests-c1e33630db4da1fe.rmeta: tests/lib.rs Cargo.toml

tests/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
