/root/repo/target/debug/deps/election-401869df79828165.d: crates/core/tests/election.rs crates/core/tests/util/mod.rs Cargo.toml

/root/repo/target/debug/deps/libelection-401869df79828165.rmeta: crates/core/tests/election.rs crates/core/tests/util/mod.rs Cargo.toml

crates/core/tests/election.rs:
crates/core/tests/util/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
