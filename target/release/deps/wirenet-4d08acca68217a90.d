/root/repo/target/release/deps/wirenet-4d08acca68217a90.d: crates/wirenet/src/lib.rs crates/wirenet/src/cluster.rs crates/wirenet/src/counters.rs crates/wirenet/src/link.rs crates/wirenet/src/node.rs

/root/repo/target/release/deps/libwirenet-4d08acca68217a90.rlib: crates/wirenet/src/lib.rs crates/wirenet/src/cluster.rs crates/wirenet/src/counters.rs crates/wirenet/src/link.rs crates/wirenet/src/node.rs

/root/repo/target/release/deps/libwirenet-4d08acca68217a90.rmeta: crates/wirenet/src/lib.rs crates/wirenet/src/cluster.rs crates/wirenet/src/counters.rs crates/wirenet/src/link.rs crates/wirenet/src/node.rs

crates/wirenet/src/lib.rs:
crates/wirenet/src/cluster.rs:
crates/wirenet/src/counters.rs:
crates/wirenet/src/link.rs:
crates/wirenet/src/node.rs:
