/root/repo/target/release/deps/experiments-83b8d422ab1e342b.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-83b8d422ab1e342b: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
