/root/repo/target/release/deps/lls_examples-cd03915b66824e3a.d: examples/src/lib.rs

/root/repo/target/release/deps/liblls_examples-cd03915b66824e3a.rlib: examples/src/lib.rs

/root/repo/target/release/deps/liblls_examples-cd03915b66824e3a.rmeta: examples/src/lib.rs

examples/src/lib.rs:
