/root/repo/target/release/deps/proptest-62b38138526daaf3.d: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs shims/proptest/src/arbitrary.rs shims/proptest/src/bool.rs shims/proptest/src/collection.rs shims/proptest/src/num.rs shims/proptest/src/option.rs shims/proptest/src/sample.rs

/root/repo/target/release/deps/libproptest-62b38138526daaf3.rlib: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs shims/proptest/src/arbitrary.rs shims/proptest/src/bool.rs shims/proptest/src/collection.rs shims/proptest/src/num.rs shims/proptest/src/option.rs shims/proptest/src/sample.rs

/root/repo/target/release/deps/libproptest-62b38138526daaf3.rmeta: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs shims/proptest/src/arbitrary.rs shims/proptest/src/bool.rs shims/proptest/src/collection.rs shims/proptest/src/num.rs shims/proptest/src/option.rs shims/proptest/src/sample.rs

shims/proptest/src/lib.rs:
shims/proptest/src/strategy.rs:
shims/proptest/src/test_runner.rs:
shims/proptest/src/arbitrary.rs:
shims/proptest/src/bool.rs:
shims/proptest/src/collection.rs:
shims/proptest/src/num.rs:
shims/proptest/src/option.rs:
shims/proptest/src/sample.rs:
