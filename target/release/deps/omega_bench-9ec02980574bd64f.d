/root/repo/target/release/deps/omega_bench-9ec02980574bd64f.d: crates/bench/src/lib.rs crates/bench/src/e_consensus.rs crates/bench/src/e_omega.rs crates/bench/src/e_thread.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libomega_bench-9ec02980574bd64f.rlib: crates/bench/src/lib.rs crates/bench/src/e_consensus.rs crates/bench/src/e_omega.rs crates/bench/src/e_thread.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libomega_bench-9ec02980574bd64f.rmeta: crates/bench/src/lib.rs crates/bench/src/e_consensus.rs crates/bench/src/e_omega.rs crates/bench/src/e_thread.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/e_consensus.rs:
crates/bench/src/e_omega.rs:
crates/bench/src/e_thread.rs:
crates/bench/src/table.rs:
