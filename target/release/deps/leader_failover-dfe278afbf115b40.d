/root/repo/target/release/deps/leader_failover-dfe278afbf115b40.d: examples/src/bin/leader_failover.rs

/root/repo/target/release/deps/leader_failover-dfe278afbf115b40: examples/src/bin/leader_failover.rs

examples/src/bin/leader_failover.rs:
