/root/repo/target/release/deps/lock_service-b385211d990cb537.d: examples/src/bin/lock_service.rs

/root/repo/target/release/deps/lock_service-b385211d990cb537: examples/src/bin/lock_service.rs

examples/src/bin/lock_service.rs:
