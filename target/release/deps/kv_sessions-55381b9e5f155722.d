/root/repo/target/release/deps/kv_sessions-55381b9e5f155722.d: examples/src/bin/kv_sessions.rs

/root/repo/target/release/deps/kv_sessions-55381b9e5f155722: examples/src/bin/kv_sessions.rs

examples/src/bin/kv_sessions.rs:
