/root/repo/target/release/deps/experiments-c78097d78f543b64.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-c78097d78f543b64: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
