/root/repo/target/release/deps/model_check-00d80ec7e8f1b4c4.d: examples/src/bin/model_check.rs

/root/repo/target/release/deps/model_check-00d80ec7e8f1b4c4: examples/src/bin/model_check.rs

examples/src/bin/model_check.rs:
