/root/repo/target/release/deps/quickstart-d9a64505087db3cd.d: examples/src/bin/quickstart.rs

/root/repo/target/release/deps/quickstart-d9a64505087db3cd: examples/src/bin/quickstart.rs

examples/src/bin/quickstart.rs:
