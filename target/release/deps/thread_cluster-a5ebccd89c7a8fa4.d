/root/repo/target/release/deps/thread_cluster-a5ebccd89c7a8fa4.d: examples/src/bin/thread_cluster.rs

/root/repo/target/release/deps/thread_cluster-a5ebccd89c7a8fa4: examples/src/bin/thread_cluster.rs

examples/src/bin/thread_cluster.rs:
