/root/repo/target/release/deps/model_check-58a2d925a71b1e73.d: examples/src/bin/model_check.rs

/root/repo/target/release/deps/model_check-58a2d925a71b1e73: examples/src/bin/model_check.rs

examples/src/bin/model_check.rs:
