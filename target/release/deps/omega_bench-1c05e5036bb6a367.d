/root/repo/target/release/deps/omega_bench-1c05e5036bb6a367.d: crates/bench/src/lib.rs crates/bench/src/e_consensus.rs crates/bench/src/e_omega.rs crates/bench/src/e_thread.rs crates/bench/src/e_wire.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libomega_bench-1c05e5036bb6a367.rlib: crates/bench/src/lib.rs crates/bench/src/e_consensus.rs crates/bench/src/e_omega.rs crates/bench/src/e_thread.rs crates/bench/src/e_wire.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libomega_bench-1c05e5036bb6a367.rmeta: crates/bench/src/lib.rs crates/bench/src/e_consensus.rs crates/bench/src/e_omega.rs crates/bench/src/e_thread.rs crates/bench/src/e_wire.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/e_consensus.rs:
crates/bench/src/e_omega.rs:
crates/bench/src/e_thread.rs:
crates/bench/src/e_wire.rs:
crates/bench/src/table.rs:
