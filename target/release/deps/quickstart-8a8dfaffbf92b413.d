/root/repo/target/release/deps/quickstart-8a8dfaffbf92b413.d: examples/src/bin/quickstart.rs

/root/repo/target/release/deps/quickstart-8a8dfaffbf92b413: examples/src/bin/quickstart.rs

examples/src/bin/quickstart.rs:
