/root/repo/target/release/deps/replicated_kv-82efb9ca022d2db5.d: examples/src/bin/replicated_kv.rs

/root/repo/target/release/deps/replicated_kv-82efb9ca022d2db5: examples/src/bin/replicated_kv.rs

examples/src/bin/replicated_kv.rs:
