/root/repo/target/release/deps/consensus-80777909e21adc92.d: crates/consensus/src/lib.rs crates/consensus/src/ballot.rs crates/consensus/src/checker.rs crates/consensus/src/msg.rs crates/consensus/src/rotating.rs crates/consensus/src/rsm.rs crates/consensus/src/single.rs

/root/repo/target/release/deps/libconsensus-80777909e21adc92.rlib: crates/consensus/src/lib.rs crates/consensus/src/ballot.rs crates/consensus/src/checker.rs crates/consensus/src/msg.rs crates/consensus/src/rotating.rs crates/consensus/src/rsm.rs crates/consensus/src/single.rs

/root/repo/target/release/deps/libconsensus-80777909e21adc92.rmeta: crates/consensus/src/lib.rs crates/consensus/src/ballot.rs crates/consensus/src/checker.rs crates/consensus/src/msg.rs crates/consensus/src/rotating.rs crates/consensus/src/rsm.rs crates/consensus/src/single.rs

crates/consensus/src/lib.rs:
crates/consensus/src/ballot.rs:
crates/consensus/src/checker.rs:
crates/consensus/src/msg.rs:
crates/consensus/src/rotating.rs:
crates/consensus/src/rsm.rs:
crates/consensus/src/single.rs:
