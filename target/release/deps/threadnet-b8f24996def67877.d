/root/repo/target/release/deps/threadnet-b8f24996def67877.d: crates/threadnet/src/lib.rs crates/threadnet/src/cluster.rs crates/threadnet/src/router.rs

/root/repo/target/release/deps/libthreadnet-b8f24996def67877.rlib: crates/threadnet/src/lib.rs crates/threadnet/src/cluster.rs crates/threadnet/src/router.rs

/root/repo/target/release/deps/libthreadnet-b8f24996def67877.rmeta: crates/threadnet/src/lib.rs crates/threadnet/src/cluster.rs crates/threadnet/src/router.rs

crates/threadnet/src/lib.rs:
crates/threadnet/src/cluster.rs:
crates/threadnet/src/router.rs:
