/root/repo/target/release/deps/netsim-18951a8cb21496a1.d: crates/netsim/src/lib.rs crates/netsim/src/delay.rs crates/netsim/src/event.rs crates/netsim/src/fault.rs crates/netsim/src/link.rs crates/netsim/src/sim.rs crates/netsim/src/stats.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs

/root/repo/target/release/deps/libnetsim-18951a8cb21496a1.rlib: crates/netsim/src/lib.rs crates/netsim/src/delay.rs crates/netsim/src/event.rs crates/netsim/src/fault.rs crates/netsim/src/link.rs crates/netsim/src/sim.rs crates/netsim/src/stats.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs

/root/repo/target/release/deps/libnetsim-18951a8cb21496a1.rmeta: crates/netsim/src/lib.rs crates/netsim/src/delay.rs crates/netsim/src/event.rs crates/netsim/src/fault.rs crates/netsim/src/link.rs crates/netsim/src/sim.rs crates/netsim/src/stats.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs

crates/netsim/src/lib.rs:
crates/netsim/src/delay.rs:
crates/netsim/src/event.rs:
crates/netsim/src/fault.rs:
crates/netsim/src/link.rs:
crates/netsim/src/sim.rs:
crates/netsim/src/stats.rs:
crates/netsim/src/topology.rs:
crates/netsim/src/trace.rs:
