/root/repo/target/release/deps/leader_failover-c67204e41af11495.d: examples/src/bin/leader_failover.rs

/root/repo/target/release/deps/leader_failover-c67204e41af11495: examples/src/bin/leader_failover.rs

examples/src/bin/leader_failover.rs:
