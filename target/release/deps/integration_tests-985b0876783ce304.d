/root/repo/target/release/deps/integration_tests-985b0876783ce304.d: tests/lib.rs

/root/repo/target/release/deps/libintegration_tests-985b0876783ce304.rlib: tests/lib.rs

/root/repo/target/release/deps/libintegration_tests-985b0876783ce304.rmeta: tests/lib.rs

tests/lib.rs:
