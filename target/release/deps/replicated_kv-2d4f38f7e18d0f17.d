/root/repo/target/release/deps/replicated_kv-2d4f38f7e18d0f17.d: examples/src/bin/replicated_kv.rs

/root/repo/target/release/deps/replicated_kv-2d4f38f7e18d0f17: examples/src/bin/replicated_kv.rs

examples/src/bin/replicated_kv.rs:
