/root/repo/target/release/deps/thread_cluster-d1cb397c9321a765.d: examples/src/bin/thread_cluster.rs

/root/repo/target/release/deps/thread_cluster-d1cb397c9321a765: examples/src/bin/thread_cluster.rs

examples/src/bin/thread_cluster.rs:
