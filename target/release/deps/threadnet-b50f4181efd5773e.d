/root/repo/target/release/deps/threadnet-b50f4181efd5773e.d: crates/threadnet/src/lib.rs crates/threadnet/src/cluster.rs crates/threadnet/src/router.rs

/root/repo/target/release/deps/libthreadnet-b50f4181efd5773e.rlib: crates/threadnet/src/lib.rs crates/threadnet/src/cluster.rs crates/threadnet/src/router.rs

/root/repo/target/release/deps/libthreadnet-b50f4181efd5773e.rmeta: crates/threadnet/src/lib.rs crates/threadnet/src/cluster.rs crates/threadnet/src/router.rs

crates/threadnet/src/lib.rs:
crates/threadnet/src/cluster.rs:
crates/threadnet/src/router.rs:
