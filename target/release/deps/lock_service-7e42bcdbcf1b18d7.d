/root/repo/target/release/deps/lock_service-7e42bcdbcf1b18d7.d: examples/src/bin/lock_service.rs

/root/repo/target/release/deps/lock_service-7e42bcdbcf1b18d7: examples/src/bin/lock_service.rs

examples/src/bin/lock_service.rs:
