/root/repo/target/release/deps/kv_sessions-fe46e9dc3de63587.d: examples/src/bin/kv_sessions.rs

/root/repo/target/release/deps/kv_sessions-fe46e9dc3de63587: examples/src/bin/kv_sessions.rs

examples/src/bin/kv_sessions.rs:
