/root/repo/target/release/deps/mck-05203eb91ee59494.d: crates/mck/src/lib.rs

/root/repo/target/release/deps/libmck-05203eb91ee59494.rlib: crates/mck/src/lib.rs

/root/repo/target/release/deps/libmck-05203eb91ee59494.rmeta: crates/mck/src/lib.rs

crates/mck/src/lib.rs:
