/root/repo/target/release/deps/lls_examples-d3da58ec30723332.d: examples/src/lib.rs

/root/repo/target/release/deps/liblls_examples-d3da58ec30723332.rlib: examples/src/lib.rs

/root/repo/target/release/deps/liblls_examples-d3da58ec30723332.rmeta: examples/src/lib.rs

examples/src/lib.rs:
