/root/repo/target/release/deps/kvstore-3962fd9a9920efdd.d: crates/kvstore/src/lib.rs crates/kvstore/src/client.rs crates/kvstore/src/command.rs crates/kvstore/src/replica.rs crates/kvstore/src/state.rs

/root/repo/target/release/deps/libkvstore-3962fd9a9920efdd.rlib: crates/kvstore/src/lib.rs crates/kvstore/src/client.rs crates/kvstore/src/command.rs crates/kvstore/src/replica.rs crates/kvstore/src/state.rs

/root/repo/target/release/deps/libkvstore-3962fd9a9920efdd.rmeta: crates/kvstore/src/lib.rs crates/kvstore/src/client.rs crates/kvstore/src/command.rs crates/kvstore/src/replica.rs crates/kvstore/src/state.rs

crates/kvstore/src/lib.rs:
crates/kvstore/src/client.rs:
crates/kvstore/src/command.rs:
crates/kvstore/src/replica.rs:
crates/kvstore/src/state.rs:
