/root/repo/target/release/deps/e1probe-9eb2952e592fc55a.d: crates/bench/src/bin/e1probe.rs

/root/repo/target/release/deps/e1probe-9eb2952e592fc55a: crates/bench/src/bin/e1probe.rs

crates/bench/src/bin/e1probe.rs:
