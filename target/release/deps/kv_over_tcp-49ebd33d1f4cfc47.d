/root/repo/target/release/deps/kv_over_tcp-49ebd33d1f4cfc47.d: examples/src/bin/kv_over_tcp.rs

/root/repo/target/release/deps/kv_over_tcp-49ebd33d1f4cfc47: examples/src/bin/kv_over_tcp.rs

examples/src/bin/kv_over_tcp.rs:
