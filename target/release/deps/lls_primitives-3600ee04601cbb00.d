/root/repo/target/release/deps/lls_primitives-3600ee04601cbb00.d: crates/primitives/src/lib.rs crates/primitives/src/fault.rs crates/primitives/src/id.rs crates/primitives/src/sm.rs crates/primitives/src/time.rs crates/primitives/src/wire.rs

/root/repo/target/release/deps/liblls_primitives-3600ee04601cbb00.rlib: crates/primitives/src/lib.rs crates/primitives/src/fault.rs crates/primitives/src/id.rs crates/primitives/src/sm.rs crates/primitives/src/time.rs crates/primitives/src/wire.rs

/root/repo/target/release/deps/liblls_primitives-3600ee04601cbb00.rmeta: crates/primitives/src/lib.rs crates/primitives/src/fault.rs crates/primitives/src/id.rs crates/primitives/src/sm.rs crates/primitives/src/time.rs crates/primitives/src/wire.rs

crates/primitives/src/lib.rs:
crates/primitives/src/fault.rs:
crates/primitives/src/id.rs:
crates/primitives/src/sm.rs:
crates/primitives/src/time.rs:
crates/primitives/src/wire.rs:
