/root/repo/target/release/libintegration_tests.rlib: /root/repo/tests/lib.rs
