//! Exactly-once client sessions against the replicated KV store: a client
//! that aggressively retries every command (as real clients do after
//! timeouts) never double-applies, thanks to `(client, seq)` session tags.
//!
//! Run with: `cargo run -p lls-examples --bin kv_sessions`

use consensus::ConsensusParams;
use kvstore::{ClientId, KvCmd, KvReplica, Tagged};
use lls_primitives::{Instant, ProcessId};
use netsim::{SimBuilder, SystemSParams, Topology};

fn main() {
    let n = 5;
    let topo = Topology::system_s(n, ProcessId(0), SystemSParams::default());
    let mut sim = SimBuilder::new(n)
        .seed(21)
        .topology(topo)
        .build_with(|env| KvReplica::new(env, ConsensusParams::default()));

    sim.run_until(Instant::from_ticks(15_000));
    let leader = sim.node(ProcessId(0)).omega().leader();
    println!("stable leader: {leader}\n");

    // A bank-account style workload from two clients, each retrying every
    // command 3 times. Balance updates use CAS so lost updates are
    // impossible even if the clients interleave.
    let mut t = 15_100;
    let mut submit = |sim: &mut netsim::Simulator<KvReplica>, client: u64, seq: u64, cmd: KvCmd| {
        for _ in 0..3 {
            sim.schedule_request(
                Instant::from_ticks(t),
                leader,
                Tagged {
                    client: ClientId(client),
                    seq,
                    cmd: cmd.clone(),
                },
            );
            t += 80;
        }
    };
    submit(&mut sim, 1, 1, KvCmd::put("balance", "100"));
    submit(&mut sim, 1, 2, KvCmd::cas("balance", Some("100"), "150"));
    submit(&mut sim, 2, 1, KvCmd::cas("balance", Some("150"), "90"));
    submit(&mut sim, 2, 2, KvCmd::put("audit", "client2 withdrew 60"));
    sim.run_until(Instant::from_ticks(80_000));

    println!("=== per-replica state ===");
    for p in (0..n as u32).map(ProcessId) {
        let st = sim.node(p).state();
        println!(
            "  {p}: balance={:?} applied={} duplicates_suppressed={}",
            st.get("balance"),
            st.applied_count(),
            st.duplicate_count()
        );
    }

    let st = sim.node(ProcessId(0)).state();
    assert_eq!(st.get("balance"), Some("90"), "lost update!");
    assert_eq!(st.applied_count(), 4, "retries were double-applied!");
    assert_eq!(st.duplicate_count(), 8);
    println!("\n12 submissions, 4 applications, 8 duplicates suppressed ✓");
    println!("final balance consistent at every replica ✓");
}
