//! The throughput path, end to end: a windowed client ([`SubmitQueue`])
//! feeds a batching/pipelining replicated KV store, and per-command
//! replies are routed back out of multi-command slots.
//!
//! The same 120-command workload runs twice on the deterministic
//! simulator: once with the one-slot-at-a-time baseline (`max_batch = 1`,
//! `pipeline_depth = 1`), once with the throughput knobs on. The batched
//! run finishes in a fraction of the virtual time and compresses the
//! workload into far fewer decided slots — without changing the applied
//! state, which both runs agree on.
//!
//! Run with: `cargo run -p lls-examples --bin pipelined_kv`

use consensus::{BatchParams, ConsensusParams};
use kvstore::{ClientId, KvClient, KvCmd, KvEvent, KvReplica, SubmitQueue};
use lls_primitives::{Duration, Instant, ProcessId};
use netsim::{SimBuilder, Topology};

const N: usize = 3;
const COMMANDS: u64 = 120;

/// Drives the full client protocol against one simulated cluster: submit
/// everything, drain up to the window, settle replies as slots decide,
/// repeat until idle. Returns (ticks-to-idle, decided slots, final value).
fn drive(max_batch: usize, pipeline_depth: usize) -> (u64, u64, Option<String>) {
    let params = ConsensusParams {
        batch: BatchParams {
            max_batch,
            pipeline_depth,
        },
        ..ConsensusParams::default()
    };
    let mut sim = SimBuilder::new(N)
        .seed(7)
        .topology(Topology::all_timely(N, Duration::from_ticks(2)))
        .build_with(|env| KvReplica::new(env, params));

    // Stabilize, then aim the client at the elected leader.
    let start = 2_000u64;
    sim.run_until(Instant::from_ticks(start));
    let leader = sim.node(ProcessId(0)).omega().leader();

    // The client mints its whole workload up front; the queue releases at
    // most 16 commands to the wire at a time and coalesces the rest.
    let mut client = KvClient::new(ClientId(1));
    let mut queue = SubmitQueue::new(16);
    for i in 0..COMMANDS {
        queue.submit(client.issue(KvCmd::put("counter", format!("v{i}"))));
    }

    let mut now = start;
    let mut scanned = 0; // outputs consumed so far
    let mut settled = 0u64;
    while !queue.is_idle() && now < start + 60_000 {
        // Release what the window admits and put it on the (simulated) wire.
        for cmd in queue.drain() {
            sim.schedule_request(Instant::from_ticks(now + 1), leader, cmd);
        }
        now += 20;
        sim.run_until(Instant::from_ticks(now));
        // Route replies — one per command, even out of batched slots —
        // back to their originating commands.
        let outputs = sim.outputs();
        for ev in &outputs[scanned..] {
            if ev.process != leader {
                continue;
            }
            if let KvEvent::Applied {
                client,
                seq,
                ref response,
                ..
            } = ev.output
            {
                if queue.settle(client, seq, response).is_some() {
                    settled += 1;
                }
            }
        }
        scanned = outputs.len();
    }
    assert_eq!(settled, COMMANDS, "every command must settle exactly once");

    let slots = sim.node(leader).log().committed_len();
    let value = sim
        .node(ProcessId(1)) // a follower: replicas agree
        .state()
        .get("counter")
        .map(str::to_string);
    (now - start, slots, value)
}

fn main() {
    println!("workload: {COMMANDS} puts from one windowed client (window 16)\n");

    let (base_ticks, base_slots, base_value) = drive(1, 1);
    println!("baseline  (batch  1, depth 1): {base_ticks:>5} ticks, {base_slots:>3} decided slots");

    let (fast_ticks, fast_slots, fast_value) = drive(8, 4);
    println!("batched   (batch  8, depth 4): {fast_ticks:>5} ticks, {fast_slots:>3} decided slots");

    assert_eq!(
        base_value, fast_value,
        "both runs must apply the same state"
    );
    println!(
        "\nsame final state ({:?}), {:.1}x fewer slots, {:.1}x faster to idle",
        fast_value.unwrap_or_default(),
        base_slots as f64 / fast_slots as f64,
        base_ticks as f64 / fast_ticks as f64,
    );
}
