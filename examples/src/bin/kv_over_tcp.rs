//! The replicated key-value store over **real TCP sockets**: the same
//! `KvReplica` state machine that runs in the simulator and on the thread
//! mesh, here wired over localhost connections with the framed wire codec.
//!
//! Three replicas elect a leader, a client aims tagged commands at it, and
//! every replica applies the committed log in order — the example asserts
//! that all three observed the *identical* applied sequence, then prints
//! the socket-level traffic that carried it.
//!
//! The run is observable while it happens: every replica feeds a flight
//! recorder, and a scrape endpoint serves `/metrics`, `/flight`, and
//! `/spans` over plain HTTP (`curl` works). Press Enter at any point — or
//! close stdin, e.g. via Ctrl-D — for an on-demand flight-recorder dump of
//! all replicas, the same post-mortem a crash would produce.
//!
//! Run with: `cargo run -p lls-examples --bin kv_over_tcp`

use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant as StdInstant};

use consensus::ConsensusParams;
use kvstore::{ClientId, KvCmd, KvEvent, KvReplica, Tagged};
use lls_obs::{NodeRecorders, RecordingProbe};
use lls_primitives::ProcessId;
use wirenet::{scrape, ScrapeRoutes, ScrapeServer, WireCluster, WireConfig};

type Replica = KvReplica<RecordingProbe>;

/// Polls until every replica's latest output is `Leader(l)` for the same
/// `l`, held for 300 ms (momentary agreement during startup churn does not
/// count). Panics after `timeout`.
fn await_leader(cluster: &WireCluster<Replica>, timeout: StdDuration) -> ProcessId {
    let deadline = StdInstant::now() + timeout;
    let mut held: Option<(ProcessId, StdInstant)> = None;
    loop {
        let latest = cluster.latest_outputs();
        let unanimous = latest.first().and_then(|o| match o {
            Some(KvEvent::Leader(l)) if latest.iter().all(|o| *o == Some(KvEvent::Leader(*l))) => {
                Some(*l)
            }
            _ => None,
        });
        match (unanimous, held) {
            (Some(l), Some((h, since))) if l == h => {
                if since.elapsed() >= StdDuration::from_millis(300) {
                    return l;
                }
            }
            (Some(l), _) => held = Some((l, StdInstant::now())),
            (None, _) => held = None,
        }
        assert!(StdInstant::now() < deadline, "no stable leader over TCP");
        std::thread::sleep(StdDuration::from_millis(20));
    }
}

/// Polls until every replica's latest output is an `Applied` with the final
/// client sequence number. Panics after `timeout`.
fn await_applied(cluster: &WireCluster<Replica>, last_seq: u64, timeout: StdDuration) {
    let deadline = StdInstant::now() + timeout;
    loop {
        let done = cluster
            .latest_outputs()
            .iter()
            .all(|o| matches!(o, Some(KvEvent::Applied { seq, .. }) if *seq == last_seq));
        if done {
            return;
        }
        assert!(
            StdInstant::now() < deadline,
            "workload did not finish applying on all replicas"
        );
        std::thread::sleep(StdDuration::from_millis(20));
    }
}

/// Watches stdin from a background thread: every line (just press Enter)
/// triggers an on-demand flight-recorder dump of all replicas, and EOF
/// (Ctrl-D, or a closed pipe) triggers one final dump. This is the same
/// post-mortem the chaos campaign prints when a checker trips — here
/// available at will while the cluster runs.
fn spawn_dump_on_stdin(recorders: Arc<NodeRecorders>) {
    std::thread::spawn(move || {
        let mut line = String::new();
        loop {
            line.clear();
            match std::io::stdin().read_line(&mut line) {
                Ok(0) | Err(_) => {
                    eprintln!("--- flight-recorder dump (stdin closed) ---");
                    eprintln!("{}", recorders.dump_all());
                    return;
                }
                Ok(_) => {
                    eprintln!("--- flight-recorder dump (on demand) ---");
                    eprintln!("{}", recorders.dump_all());
                }
            }
        }
    });
}

fn main() {
    let n = 3;
    let recorders = Arc::new(NodeRecorders::new(n, 256));
    let cluster = WireCluster::try_spawn_traced(
        WireConfig {
            n,
            tick: StdDuration::from_micros(200),
            ..WireConfig::default()
        },
        recorders.clocks(),
        |env| {
            KvReplica::new_with_probe(
                env,
                ConsensusParams::default(),
                recorders.probe_for(env.id()),
            )
        },
    )
    .expect("bind localhost listeners");
    for p in (0..n as u32).map(ProcessId) {
        println!("replica {p} listening on {}", cluster.addr_of(p));
    }
    let server = ScrapeServer::spawn(ScrapeRoutes::for_recorders(Arc::clone(&recorders)))
        .expect("bind scrape endpoint");
    println!(
        "scrape endpoint on http://{0}  (try: curl http://{0}/metrics | /flight | /spans)",
        server.addr()
    );
    spawn_dump_on_stdin(Arc::clone(&recorders));

    let leader = await_leader(&cluster, StdDuration::from_secs(10));
    println!("stable leader over TCP: {leader}\n");

    // One client session; the (client, seq) tag makes the retry idempotent.
    let client = ClientId(1);
    let workload = [
        (1, KvCmd::put("alice", "10")),
        (2, KvCmd::put("bob", "20")),
        (3, KvCmd::cas("alice", Some("10"), "11")),
        (4, KvCmd::cas("bob", Some("99"), "0")), // expectation fails
        (2, KvCmd::put("bob", "20")),            // retry of seq 2 → Duplicate
        (5, KvCmd::delete("alice")),
    ];
    let last_seq = 5;
    for (seq, cmd) in &workload {
        cluster.request(
            leader,
            Tagged {
                client,
                seq: *seq,
                cmd: cmd.clone(),
            },
        );
        std::thread::sleep(StdDuration::from_millis(30));
    }
    await_applied(&cluster, last_seq, StdDuration::from_secs(10));

    // Scrape our own endpoint while the cluster is still live — the same
    // view Prometheus (or curl) would get.
    if let Ok(metrics) = scrape(server.addr(), "/metrics") {
        let decided = metrics
            .lines()
            .filter(|l| l.starts_with("probe_decide_total"))
            .collect::<Vec<_>>()
            .join("\n");
        println!("live /metrics excerpt:\n{decided}\n");
    }

    let report = cluster.stop();
    server.stop();

    // Every replica must have applied the identical sequence.
    let applied_of = |p: ProcessId| -> Vec<(u64, ClientId, u64, kvstore::KvResponse)> {
        report
            .outputs
            .iter()
            .filter(|t| t.process == p)
            .filter_map(|t| match &t.output {
                KvEvent::Applied {
                    slot,
                    client,
                    seq,
                    response,
                } => Some((*slot, *client, *seq, response.clone())),
                KvEvent::Leader(_) | KvEvent::SnapshotInstalled { .. } => None,
            })
            .collect()
    };
    println!("=== applied log (as observed at {leader}) ===");
    for (slot, client, seq, response) in applied_of(leader) {
        println!("  slot {slot}: {client} seq {seq} -> {response:?}");
    }
    let logs: Vec<_> = (0..n as u32).map(|p| applied_of(ProcessId(p))).collect();
    assert!(logs.windows(2).all(|w| w[0] == w[1]), "replicas diverged!");

    println!("\n=== socket traffic ===");
    for p in (0..n as u32).map(ProcessId) {
        let t = report.node_links_total(p);
        println!(
            "  {p}: {} frames / {} bytes out, {} frames in, {} reconnects, {} decode errors",
            t.msgs_sent, t.bytes_sent, t.msgs_recv, t.reconnects, t.decode_errors
        );
    }
    println!("\nall {n} replicas applied the same log over real sockets ✓");
}
