//! The replicated key-value store over **real TCP sockets**: the same
//! `KvReplica` state machine that runs in the simulator and on the thread
//! mesh, here wired over localhost connections with the framed wire codec.
//!
//! Three replicas elect a leader, a client aims tagged commands at it, and
//! every replica applies the committed log in order — the example asserts
//! that all three observed the *identical* applied sequence, then prints
//! the socket-level traffic that carried it.
//!
//! Run with: `cargo run -p lls-examples --bin kv_over_tcp`

use std::time::{Duration as StdDuration, Instant as StdInstant};

use consensus::ConsensusParams;
use kvstore::{ClientId, KvCmd, KvEvent, KvReplica, Tagged};
use lls_primitives::ProcessId;
use wirenet::{WireCluster, WireConfig};

/// Polls until every replica's latest output is `Leader(l)` for the same
/// `l`, held for 300 ms (momentary agreement during startup churn does not
/// count). Panics after `timeout`.
fn await_leader(cluster: &WireCluster<KvReplica>, timeout: StdDuration) -> ProcessId {
    let deadline = StdInstant::now() + timeout;
    let mut held: Option<(ProcessId, StdInstant)> = None;
    loop {
        let latest = cluster.latest_outputs();
        let unanimous = latest.first().and_then(|o| match o {
            Some(KvEvent::Leader(l)) if latest.iter().all(|o| *o == Some(KvEvent::Leader(*l))) => {
                Some(*l)
            }
            _ => None,
        });
        match (unanimous, held) {
            (Some(l), Some((h, since))) if l == h => {
                if since.elapsed() >= StdDuration::from_millis(300) {
                    return l;
                }
            }
            (Some(l), _) => held = Some((l, StdInstant::now())),
            (None, _) => held = None,
        }
        assert!(StdInstant::now() < deadline, "no stable leader over TCP");
        std::thread::sleep(StdDuration::from_millis(20));
    }
}

/// Polls until every replica's latest output is an `Applied` with the final
/// client sequence number. Panics after `timeout`.
fn await_applied(cluster: &WireCluster<KvReplica>, last_seq: u64, timeout: StdDuration) {
    let deadline = StdInstant::now() + timeout;
    loop {
        let done = cluster
            .latest_outputs()
            .iter()
            .all(|o| matches!(o, Some(KvEvent::Applied { seq, .. }) if *seq == last_seq));
        if done {
            return;
        }
        assert!(
            StdInstant::now() < deadline,
            "workload did not finish applying on all replicas"
        );
        std::thread::sleep(StdDuration::from_millis(20));
    }
}

fn main() {
    let n = 3;
    let cluster = WireCluster::spawn(
        WireConfig {
            n,
            tick: StdDuration::from_micros(200),
            ..WireConfig::default()
        },
        |env| KvReplica::new(env, ConsensusParams::default()),
    );
    for p in (0..n as u32).map(ProcessId) {
        println!("replica {p} listening on {}", cluster.addr_of(p));
    }

    let leader = await_leader(&cluster, StdDuration::from_secs(10));
    println!("stable leader over TCP: {leader}\n");

    // One client session; the (client, seq) tag makes the retry idempotent.
    let client = ClientId(1);
    let workload = [
        (1, KvCmd::put("alice", "10")),
        (2, KvCmd::put("bob", "20")),
        (3, KvCmd::cas("alice", Some("10"), "11")),
        (4, KvCmd::cas("bob", Some("99"), "0")), // expectation fails
        (2, KvCmd::put("bob", "20")),            // retry of seq 2 → Duplicate
        (5, KvCmd::delete("alice")),
    ];
    let last_seq = 5;
    for (seq, cmd) in &workload {
        cluster.request(
            leader,
            Tagged {
                client,
                seq: *seq,
                cmd: cmd.clone(),
            },
        );
        std::thread::sleep(StdDuration::from_millis(30));
    }
    await_applied(&cluster, last_seq, StdDuration::from_secs(10));
    let report = cluster.stop();

    // Every replica must have applied the identical sequence.
    let applied_of = |p: ProcessId| -> Vec<(u64, ClientId, u64, kvstore::KvResponse)> {
        report
            .outputs
            .iter()
            .filter(|t| t.process == p)
            .filter_map(|t| match &t.output {
                KvEvent::Applied {
                    slot,
                    client,
                    seq,
                    response,
                } => Some((*slot, *client, *seq, response.clone())),
                KvEvent::Leader(_) => None,
            })
            .collect()
    };
    println!("=== applied log (as observed at {leader}) ===");
    for (slot, client, seq, response) in applied_of(leader) {
        println!("  slot {slot}: {client} seq {seq} -> {response:?}");
    }
    let logs: Vec<_> = (0..n as u32).map(|p| applied_of(ProcessId(p))).collect();
    assert!(logs.windows(2).all(|w| w[0] == w[1]), "replicas diverged!");

    println!("\n=== socket traffic ===");
    for p in (0..n as u32).map(ProcessId) {
        let t = report.node_links_total(p);
        println!(
            "  {p}: {} frames / {} bytes out, {} frames in, {} reconnects, {} decode errors",
            t.msgs_sent, t.bytes_sent, t.msgs_recv, t.reconnects, t.decode_errors
        );
    }
    println!("\nall {n} replicas applied the same log over real sockets ✓");
}
