//! Live demo on real OS threads: the same Ω state machine that runs on the
//! simulator elects a leader over a lossy in-process mesh, and the traffic
//! visibly collapses to a single sender — communication efficiency on a
//! wall clock.
//!
//! Run with: `cargo run -p lls-examples --bin thread_cluster`

use std::time::Duration as StdDuration;

use lls_primitives::ProcessId;
use omega::{CommEffOmega, OmegaParams};
use threadnet::{Cluster, NetConfig};

fn main() {
    let n = 6;
    let config = NetConfig {
        n,
        loss: 0.08,
        min_delay: StdDuration::from_micros(100),
        max_delay: StdDuration::from_millis(1),
        tick: StdDuration::from_micros(250),
        seed: 3,
    };
    println!("spawning {n} threads, 8% loss, 0.1–1 ms delay …\n");
    let cluster = Cluster::spawn(config, |env| CommEffOmega::new(env, OmegaParams::default()));

    // Sample the sender set every 400 ms. Timeouts grow on every premature
    // suspicion, so the accusation trickle dies out and the sender set
    // collapses to the single leader.
    let mut prev_sent = vec![0u64; n];
    println!("{:>6}  {:>8}  senders in window", "t(ms)", "msgs");
    for step in 1..=10 {
        std::thread::sleep(StdDuration::from_millis(400));
        let (sent, _) = cluster.traffic_snapshot();
        let window: Vec<u64> = sent
            .iter()
            .zip(&prev_sent)
            .map(|(now, before)| now - before)
            .collect();
        let senders: Vec<ProcessId> = window
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, _)| ProcessId(i as u32))
            .collect();
        println!(
            "{:>6}  {:>8}  {:?}",
            step * 400,
            window.iter().sum::<u64>(),
            senders
        );
        prev_sent = sent;
    }

    let report = cluster.stop();
    let leader = report
        .final_output_of(ProcessId(0))
        .copied()
        .expect("p0 must have output a leader");
    println!("\nfinal leader everywhere: {leader}");
    for p in (0..n as u32).map(ProcessId) {
        assert_eq!(report.final_output_of(p), Some(&leader), "{p} disagrees");
    }
    let tail = report.senders_since(StdDuration::from_millis(3_500));
    println!("senders in the last 500 ms: {tail:?}");
}
