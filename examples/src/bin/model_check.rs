//! Model-checking demo: exhaustively verify consensus agreement over every
//! message/timer interleaving of a small system, then watch the checker
//! catch a deliberately broken invariant with a counterexample trace.
//!
//! Run with: `cargo run --release -p lls-examples --bin model_check`

use consensus::{Consensus, ConsensusParams};
use mck::{CheckConfig, CheckOutcome, ModelChecker};

fn main() {
    println!("== exhaustive agreement check: 2 processes, depth 10 ==");
    let outcome = ModelChecker::new(CheckConfig {
        n: 2,
        max_depth: 10,
        max_states: 300_000,
        max_crashes: 0,
    })
    .check(
        |env| {
            Consensus::new(
                env,
                ConsensusParams::default(),
                Some(100 + env.id().0 as u64),
            )
        },
        |world| {
            let decisions: Vec<&u64> = world.live_nodes().filter_map(|sm| sm.decision()).collect();
            if decisions.windows(2).all(|w| w[0] == w[1]) {
                Ok(())
            } else {
                Err(format!("disagreement: {decisions:?}"))
            }
        },
    );
    match &outcome {
        CheckOutcome::Ok { states, complete } => {
            println!("agreement holds across {states} states (complete: {complete})");
        }
        CheckOutcome::Violation { message, trace } => {
            println!("VIOLATION: {message}");
            for step in trace {
                println!("  {step}");
            }
        }
    }
    assert!(matches!(outcome, CheckOutcome::Ok { .. }));

    println!("\n== the checker has teeth: assert the impossible ==");
    // "Nobody ever decides" is false; the checker must produce the shortest
    // path it finds to a decision as a counterexample.
    let outcome = ModelChecker::new(CheckConfig {
        n: 2,
        max_depth: 10,
        max_states: 300_000,
        max_crashes: 0,
    })
    .check(
        |env| {
            Consensus::new(
                env,
                ConsensusParams::default(),
                Some(100 + env.id().0 as u64),
            )
        },
        |world| {
            if world.live_nodes().any(|sm| sm.decision().is_some()) {
                Err("someone decided (as they should!)".to_owned())
            } else {
                Ok(())
            }
        },
    );
    match outcome {
        CheckOutcome::Violation { message, trace } => {
            println!("counterexample found ({message}):");
            for step in &trace {
                println!("  {step}");
            }
            println!("({} steps to the first decision)", trace.len());
        }
        other => panic!("expected a counterexample, got {other:?}"),
    }
}
