//! A replicated key-value store on top of the [`ReplicatedLog`]: the
//! workload the paper's consensus result exists to serve.
//!
//! Five replicas run over system S (one ♦-source, fair-lossy mesh). Clients
//! submit `PUT` commands to the stable leader; every replica applies the
//! committed log in order and all end with the same store contents.
//!
//! Run with: `cargo run -p lls-examples --bin replicated_kv`

use std::collections::BTreeMap;

use consensus::{ConsensusParams, LifecycleId, ReplicatedLog, RsmEvent};
use lls_primitives::wire::{Wire, WireError, WireReader};
use lls_primitives::{Instant, ProcessId};
use netsim::{SimBuilder, SystemSParams, Topology};

/// A client command: put `key = value`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Put {
    key: String,
    value: u64,
}

impl Put {
    fn new(key: &str, value: u64) -> Self {
        Put {
            key: key.to_string(),
            value,
        }
    }
}

// The example's commands have no client session; they stay invisible to
// latency attribution.
impl LifecycleId for Put {
    fn lifecycle_id(&self) -> Option<lls_obs::CmdId> {
        None
    }
}

impl Wire for Put {
    fn encode(&self, out: &mut Vec<u8>) {
        self.key.encode(out);
        self.value.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Put {
            key: String::decode(r)?,
            value: u64::decode(r)?,
        })
    }
}

/// Applies a committed command stream to an in-memory store.
fn materialize(cmds: impl Iterator<Item = Put>) -> BTreeMap<String, u64> {
    let mut store = BTreeMap::new();
    for cmd in cmds {
        store.insert(cmd.key, cmd.value);
    }
    store
}

fn main() {
    let n = 5;
    let source = ProcessId(0);
    let topology = Topology::system_s(n, source, SystemSParams::default());

    let workload = [
        Put::new("alice", 10),
        Put::new("bob", 20),
        Put::new("alice", 11),
        Put::new("carol", 30),
        Put::new("bob", 21),
        Put::new("dave", 40),
    ];

    let mut sim = SimBuilder::new(n)
        .seed(7)
        .topology(topology)
        .build_with(|env| ReplicatedLog::<Put>::new(env, ConsensusParams::default()));

    // Let the election stabilize, then find the actual leader and aim the
    // client traffic at it (a real client would discover the leader the same
    // way: ask any replica for its Ω output).
    sim.run_until(Instant::from_ticks(15_000));
    let leader = sim.node(ProcessId(0)).omega().leader();
    println!("stable leader after 15k ticks: {leader}");

    for (i, cmd) in workload.iter().enumerate() {
        sim.schedule_request(
            Instant::from_ticks(15_100 + 400 * i as u64),
            leader,
            cmd.clone(),
        );
    }
    sim.run_until(Instant::from_ticks(60_000));

    println!("\n=== commit log (as observed at {leader}) ===");
    for e in sim.outputs().iter().filter(|e| e.process == leader) {
        if let RsmEvent::Committed { slot, cmd } = &e.output {
            println!("  t={:<7} slot {slot}: {cmd:?}", e.at.ticks());
        }
    }

    println!("\n=== materialized stores ===");
    let mut stores = Vec::new();
    for p in (0..n as u32).map(ProcessId) {
        let store = materialize(sim.node(p).committed_commands().cloned());
        println!("  {p}: {store:?}");
        stores.push(store);
    }
    assert!(
        stores.windows(2).all(|w| w[0] == w[1]),
        "replicas diverged!"
    );
    println!("\nall {n} replicas converged to the same store ✓");
}
