//! A distributed lock service on the replicated KV store: mutual exclusion
//! via `CAS`, with exactly-once semantics making client retries safe.
//!
//! Two clients race to acquire the same lock; CAS guarantees that exactly
//! one wins, every replica agrees on the winner, and the loser's retries
//! (including duplicated submissions) change nothing.
//!
//! Run with: `cargo run -p lls-examples --bin lock_service`

use consensus::ConsensusParams;
use kvstore::{ClientId, KvCmd, KvEvent, KvReplica, KvResponse, Tagged};
use lls_primitives::{Instant, ProcessId};
use netsim::{SimBuilder, SystemSParams, Topology};

fn main() {
    let n = 5;
    let topo = Topology::system_s(n, ProcessId(0), SystemSParams::default());
    let mut sim = SimBuilder::new(n)
        .seed(5)
        .topology(topo)
        .build_with(|env| KvReplica::new(env, ConsensusParams::default()));

    sim.run_until(Instant::from_ticks(15_000));
    let leader = sim.node(ProcessId(0)).omega().leader();
    println!("lock service up; coordinator: {leader}\n");

    // Both clients try to acquire "lock:build" by CAS(absent → own name),
    // interleaved and each submitted twice (simulating retry-after-timeout).
    let acquire = |client: u64, name: &str, seq: u64| Tagged {
        client: ClientId(client),
        seq,
        cmd: KvCmd::cas("lock:build", None, name),
    };
    sim.schedule_request(Instant::from_ticks(15_100), leader, acquire(1, "alice", 1));
    sim.schedule_request(Instant::from_ticks(15_120), leader, acquire(2, "bob", 1));
    sim.schedule_request(Instant::from_ticks(15_300), leader, acquire(1, "alice", 1)); // retry
    sim.schedule_request(Instant::from_ticks(15_320), leader, acquire(2, "bob", 1)); // retry
    sim.run_until(Instant::from_ticks(40_000));

    let holder = sim
        .node(ProcessId(0))
        .state()
        .get("lock:build")
        .expect("someone must hold the lock")
        .to_owned();
    println!("lock holder everywhere:");
    for p in (0..n as u32).map(ProcessId) {
        let h = sim.node(p).state().get("lock:build").unwrap();
        println!("  {p}: {h}");
        assert_eq!(h, holder);
    }

    // Inspect the per-command responses at the coordinator: exactly one
    // Applied, one CasFailed, and the retries suppressed as duplicates.
    let mut applied = 0;
    let mut failed = 0;
    let mut dups = 0;
    for e in sim.outputs().iter().filter(|e| e.process == leader) {
        if let KvEvent::Applied {
            response, client, ..
        } = &e.output
        {
            match response {
                KvResponse::Applied { .. } => {
                    applied += 1;
                    println!("\n{client} acquired the lock");
                }
                KvResponse::CasFailed { actual } => {
                    failed += 1;
                    println!("{client} lost the race (held by {actual:?})");
                }
                KvResponse::Duplicate => dups += 1,
                KvResponse::Value { .. } => {}
            }
        }
    }
    assert_eq!((applied, failed, dups), (1, 1, 2));
    println!("\n1 acquisition, 1 rejection, 2 duplicate retries suppressed ✓");

    // The holder releases; the loser immediately acquires.
    let loser = if holder == "alice" { 2 } else { 1 };
    let loser_name = if holder == "alice" { "bob" } else { "alice" };
    let winner = if holder == "alice" { 1 } else { 2 };
    sim.schedule_request(
        Instant::from_ticks(40_100),
        leader,
        Tagged {
            client: ClientId(winner),
            seq: 2,
            cmd: KvCmd::delete("lock:build"),
        },
    );
    sim.schedule_request(
        Instant::from_ticks(40_400),
        leader,
        Tagged {
            client: ClientId(loser),
            seq: 2,
            cmd: KvCmd::cas("lock:build", None, loser_name),
        },
    );
    sim.run_until(Instant::from_ticks(70_000));
    let new_holder = sim.node(ProcessId(1)).state().get("lock:build").unwrap();
    println!("after release, new holder: {new_holder}");
    assert_eq!(new_holder, loser_name);
}
