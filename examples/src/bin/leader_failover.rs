//! Leader failover: crash the elected leader mid-run and watch the
//! election and the replicated log recover without losing a single commit.
//!
//! Run with: `cargo run -p lls-examples --bin leader_failover`

use consensus::{ConsensusParams, ReplicatedLog, RsmEvent};
use lls_primitives::{Instant, ProcessId};
use netsim::{SimBuilder, SystemSParams, Topology};

fn main() {
    let n = 5;
    // Two ♦-sources so the system stays admissible after one of them dies.
    let topology = Topology::system_s_multi(
        n,
        &[ProcessId(0), ProcessId(2)],
        SystemSParams {
            gst: 200,
            ..SystemSParams::default()
        },
    );

    let mut sim = SimBuilder::new(n)
        .seed(11)
        .topology(topology)
        .build_with(|env| ReplicatedLog::<u64>::new(env, ConsensusParams::default()));

    // Phase 1: elect, then commit commands 0..5 under the first leader.
    sim.run_until(Instant::from_ticks(8_000));
    let first_leader = sim.node(ProcessId(1)).omega().leader();
    println!("first leader: {first_leader}");
    for k in 0..5u64 {
        sim.schedule_request(Instant::from_ticks(8_100 + 200 * k), first_leader, k);
    }
    sim.run_until(Instant::from_ticks(20_000));
    let committed: Vec<u64> = sim
        .node(first_leader)
        .committed_commands()
        .cloned()
        .collect();
    println!("committed before crash: {committed:?}");

    // Phase 2: kill the leader.
    println!("\n*** crashing {first_leader} at t=20000 ***\n");
    sim.crash_now(first_leader);
    sim.run_until(Instant::from_ticks(60_000));

    let survivor = ProcessId(if first_leader == ProcessId(0) { 2 } else { 0 });
    let second_leader = sim.node(survivor).omega().leader();
    println!("re-elected leader: {second_leader}");
    assert_ne!(second_leader, first_leader, "dead leader must be replaced");

    // Phase 3: keep committing under the new leader.
    for k in 5..8u64 {
        sim.schedule_request(
            Instant::from_ticks(60_100 + 200 * (k - 5)),
            second_leader,
            k,
        );
    }
    sim.run_until(Instant::from_ticks(120_000));

    println!("\n=== leader timeline (as seen by {survivor}) ===");
    for e in sim.outputs().iter().filter(|e| e.process == survivor) {
        if let RsmEvent::Leader(l) = &e.output {
            println!("  t={:<8} trusts {l}", e.at.ticks());
        }
    }

    let final_log: Vec<u64> = sim
        .node(second_leader)
        .committed_commands()
        .cloned()
        .collect();
    println!("\nfinal committed stream at {second_leader}: {final_log:?}");
    assert_eq!(
        final_log,
        (0..8).collect::<Vec<u64>>(),
        "failover must preserve every pre-crash commit, in order"
    );
    println!("no commit lost across failover ✓");
}
