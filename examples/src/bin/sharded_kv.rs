//! `pipelined_kv`, upgraded to shards: the same windowed-client workload
//! runs against one replicated KV group and against four, and the only
//! code difference is the [`PlacementMap`] handed to the node.
//!
//! The sharded path, end to end:
//!
//! * a [`PlacementMap`] hashes every key to one of `S` shard groups, each
//!   an independent replicated log with its own slot sequence;
//! * a [`ShardedSubmitQueue`] fans the client's commands out by key —
//!   one flow-control window per shard — and routes each reply back to
//!   the shard that owns it;
//! * a [`ShardedKvNode`] per replica runs **one** shared Ω however many
//!   groups it hosts, so going from one shard to four adds *no* election
//!   traffic — leadership fans out to every co-located group.
//!
//! Each group is pinned to the strict one-command-per-round-trip baseline
//! (`max_batch = 1`, `pipeline_depth = 1`), so the speedup below is pure
//! shard parallelism. Both runs must agree on every key's final value.
//!
//! Run with: `cargo run -p lls-examples --bin sharded_kv`

use consensus::shard::{PlacementManager, PlacementMap};
use consensus::{BatchParams, ConsensusParams};
use kvstore::{ClientId, KvClient, KvCmd, ShardedKvEvent, ShardedKvNode, ShardedSubmitQueue};
use lls_primitives::{Duration, Instant, ProcessId};
use netsim::{SimBuilder, Topology};

const N: usize = 3;
const COMMANDS: u64 = 120;

/// The workload key of command `i` — many distinct keys, so the hash
/// router actually spreads load when shards are available.
fn key(i: u64) -> String {
    format!("user:{}", i % 24)
}

/// Drives the windowed client protocol against one simulated cluster with
/// `shards` groups: submit everything, drain what each shard's window
/// admits, settle replies per shard, repeat until idle. Returns
/// (ticks-to-idle, decided slots per shard, a state sample).
fn drive(shards: u32) -> (u64, Vec<u64>, Vec<Option<String>>) {
    let params = ConsensusParams {
        batch: BatchParams {
            max_batch: 1,
            pipeline_depth: 1,
        },
        ..ConsensusParams::default()
    };
    let map = PlacementMap::uniform(shards, N);
    let placement_map = map.clone();
    let mut sim = SimBuilder::new(N)
        .seed(7)
        .topology(Topology::all_timely(N, Duration::from_ticks(2)))
        .build_with(move |env| {
            ShardedKvNode::new(
                env,
                params,
                PlacementManager::with_all_attached(placement_map.clone()),
            )
        });

    // Stabilize, then aim the client at the elected leader — one leader
    // for every group, courtesy of the shared Ω.
    let start = 2_000u64;
    sim.run_until(Instant::from_ticks(start));
    let leader = sim.node(ProcessId(0)).omega().leader();

    // The client mints its whole workload up front; the sharded queue
    // routes each command by key and windows each shard independently.
    let mut client = KvClient::new(ClientId(1));
    let mut queue = ShardedSubmitQueue::new(map.clone(), 8);
    for i in 0..COMMANDS {
        queue.submit(client.issue(KvCmd::put(key(i), format!("v{i}"))));
    }

    let mut now = start;
    let mut scanned = 0; // outputs consumed so far
    let mut settled = 0u64;
    while !queue.is_idle() && now < start + 60_000 {
        // Release what each shard's window admits. The node routes by key
        // itself, so the wire request is just the tagged command.
        for (_shard, cmds) in queue.drain() {
            for cmd in cmds {
                sim.schedule_request(Instant::from_ticks(now + 1), leader, cmd);
            }
        }
        now += 20;
        sim.run_until(Instant::from_ticks(now));
        // Route replies back: the queue knows which shard owns each
        // in-flight command and reopens that shard's window.
        let outputs = sim.outputs();
        for ev in &outputs[scanned..] {
            if ev.process != leader {
                continue;
            }
            if let ShardedKvEvent::Applied {
                client,
                seq,
                ref response,
                ..
            } = ev.output
            {
                if queue.settle(client, seq, response).is_some() {
                    settled += 1;
                }
            }
        }
        scanned = outputs.len();
    }
    assert_eq!(settled, COMMANDS, "every command must settle exactly once");

    let slots: Vec<u64> = map
        .shard_ids()
        .map(|s| {
            sim.node(leader)
                .node()
                .group(s)
                .expect("attached")
                .committed_len()
        })
        .collect();
    // Sample the final state at a follower: replicas agree per shard.
    let follower = sim.node(ProcessId(1));
    let sample: Vec<Option<String>> = (0..COMMANDS)
        .map(|i| {
            let k = key(i);
            follower
                .state(map.shard_of_key(&k))
                .expect("attached")
                .get(&k)
                .map(str::to_string)
        })
        .collect();
    (now - start, slots, sample)
}

fn main() {
    println!("workload: {COMMANDS} puts over 24 keys, one windowed client (window 8/shard)\n");

    let (base_ticks, base_slots, base_state) = drive(1);
    println!(
        "1 shard : {base_ticks:>5} ticks to idle, slots per shard {:?}",
        base_slots
    );

    let (fast_ticks, fast_slots, fast_state) = drive(4);
    println!(
        "4 shards: {fast_ticks:>5} ticks to idle, slots per shard {:?}",
        fast_slots
    );

    assert_eq!(
        base_state, fast_state,
        "sharding must not change any key's final value"
    );
    assert_eq!(
        base_slots.iter().sum::<u64>(),
        fast_slots.iter().sum::<u64>(),
        "the same commands decide, just spread over independent logs"
    );
    println!(
        "\nsame state on every key, {:.1}x faster to idle with one shared Ω \
         (no extra election traffic)",
        base_ticks as f64 / fast_ticks as f64,
    );
}
