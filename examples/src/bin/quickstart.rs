//! Quickstart: elect a leader among five processes of which only one is a
//! ♦-source, watch the election converge, and see communication efficiency
//! kick in.
//!
//! Run with: `cargo run -p lls-examples --bin quickstart`

use lls_primitives::{Instant, ProcessId};
use netsim::{SimBuilder, SystemSParams, Topology};
use omega::{classify_msg, CommEffOmega, OmegaParams};

fn main() {
    let n = 5;
    let source = ProcessId(3);
    let horizon = Instant::from_ticks(30_000);

    // System S: a fair-lossy mesh (30% loss, unbounded delays) in which only
    // p3's outgoing links become timely after GST = 500 ticks.
    let topology = Topology::system_s(n, source, SystemSParams::default());

    let mut sim = SimBuilder::new(n)
        .seed(42)
        .topology(topology)
        .classify(classify_msg)
        .build_with(|env| CommEffOmega::new(env, OmegaParams::default()));

    sim.run_until(horizon);

    println!("=== leader-change timeline ===");
    for e in sim.outputs() {
        println!(
            "  t={:<8} {} now trusts {}",
            e.at.ticks(),
            e.process,
            e.output
        );
    }

    println!("\n=== final state ===");
    for p in (0..n as u32).map(ProcessId) {
        let node = sim.node(p);
        println!(
            "  {p}: leader={} own_counter={} accusations_sent={}",
            node.leader(),
            node.own_counter(),
            node.accusations_sent()
        );
    }

    let stats = sim.stats();
    println!("\n=== message economy ===");
    for (kind, count) in stats.kind_counts() {
        println!("  {kind:<8} {count}");
    }
    match stats.quiescence_time(1) {
        Some(cut) => {
            let senders = stats.senders_since(cut);
            println!(
                "\ncommunication-efficient from t={} on: only {:?} still sends",
                cut.ticks(),
                senders
            );
        }
        None => println!("\nrun did not quiesce to a single sender"),
    }
}
