//! Runnable examples for the limited-link-synchrony reproduction. The
//! binaries live in `src/bin/`:
//!
//! * `quickstart` — elect a leader in system S, print the timeline and the
//!   message economy (communication efficiency visible in the counters);
//! * `replicated_kv` — a consensus-backed key-value store over the
//!   replicated log;
//! * `kv_sessions` — exactly-once client retries against the KV store;
//! * `lock_service` — a CAS-based distributed lock with safe retries;
//! * `leader_failover` — crash the leader mid-stream and lose no commits;
//! * `thread_cluster` — the same election live on OS threads with
//!   injected loss;
//! * `model_check` — exhaustively verify consensus agreement over every
//!   interleaving of a small system.
