//! Property tests for the simulator substrate's own invariants: the
//! experiments are only as trustworthy as these.

use lls_primitives::{Ctx, Duration, Instant, ProcessId, Sm, TimerId};
use netsim::{FaultPlan, LinkFate, LinkModel, SimBuilder, Topology};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A chatty machine that broadcasts every tick and records receptions with
/// their timestamps.
#[derive(Debug)]
struct Probe {
    received: Vec<(u64, u32)>,
}

const TICK: TimerId = TimerId(0);

impl Sm for Probe {
    type Msg = ();
    type Output = ();
    type Request = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, (), ()>) {
        ctx.set_timer(TICK, Duration::from_ticks(5));
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, (), ()>, from: ProcessId, _msg: ()) {
        self.received.push((ctx.now().ticks(), from.0));
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, (), ()>, _t: TimerId) {
        ctx.broadcast(());
        ctx.set_timer(TICK, Duration::from_ticks(5));
    }
}

fn any_link() -> impl Strategy<Value = LinkModel> {
    prop_oneof![
        (1u64..10).prop_map(LinkModel::timely),
        (0u64..2_000, 1u64..10, 0.0f64..1.0)
            .prop_map(|(gst, d, l)| LinkModel::eventually_timely(gst, d, l)),
        (0.0f64..0.99, 1u64..10).prop_map(|(l, d)| LinkModel::fair_lossy(l, d)),
        (0.0f64..=1.0, 1u64..10).prop_map(|(l, d)| LinkModel::lossy_async(l, d)),
        Just(LinkModel::Dead),
        (1u64..50, 0u64..50, 1u64..5).prop_map(|(on, off, d)| LinkModel::blink(on, off, d)),
    ]
}

fn any_topology(n: usize) -> impl Strategy<Value = Topology> {
    proptest::collection::vec(any_link(), n * n).prop_map(move |links| {
        let mut topo = Topology::all_timely(n, Duration::from_ticks(1));
        let mut it = links.into_iter();
        for a in 0..n as u32 {
            for b in 0..n as u32 {
                let l = it.next().expect("n*n links");
                if a != b {
                    topo.set_link(ProcessId(a), ProcessId(b), l);
                }
            }
        }
        topo
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Determinism: a run is a pure function of (topology, faults, seed).
    #[test]
    fn identical_configs_produce_identical_runs(
        topo in any_topology(4),
        seed in any::<u64>(),
        crash in proptest::option::of((0u32..4, 0u64..1_000)),
    ) {
        let run = || {
            let mut faults = FaultPlan::new(4);
            if let Some((p, t)) = crash {
                faults.crash_at(ProcessId(p), Instant::from_ticks(t));
            }
            let mut sim = SimBuilder::new(4)
                .seed(seed)
                .topology(topo.clone())
                .faults(faults)
                .build_with(|_| Probe { received: Vec::new() });
            sim.run_until(Instant::from_ticks(2_000));
            let receptions: Vec<Vec<(u64, u32)>> = (0..4u32)
                .map(|p| sim.node(ProcessId(p)).received.clone())
                .collect();
            (receptions, sim.stats().total_sent())
        };
        prop_assert_eq!(run(), run());
    }

    /// Crash-stop: a crashed process receives nothing at or after its crash
    /// time and sends nothing after it.
    #[test]
    fn crashed_processes_are_silent(
        topo in any_topology(3),
        seed in any::<u64>(),
        crash_t in 0u64..1_500,
    ) {
        let victim = ProcessId(1);
        let mut sim = SimBuilder::new(3)
            .seed(seed)
            .topology(topo)
            .crash_at(victim, Instant::from_ticks(crash_t))
            .build_with(|_| Probe { received: Vec::new() });
        sim.run_until(Instant::from_ticks(3_000));
        // No reception at or after the crash.
        prop_assert!(sim
            .node(victim)
            .received
            .iter()
            .all(|&(t, _)| t < crash_t));
        // No send at or after the crash.
        if let Some(last) = sim.stats().last_send(victim) {
            prop_assert!(last < Instant::from_ticks(crash_t));
        }
    }

    /// Timely links deliver within their bound after their GST — the
    /// foundation every ♦-source argument rests on.
    #[test]
    fn eventually_timely_links_honour_delta_after_gst(
        gst in 0u64..1_000,
        delta in 1u64..10,
        pre_loss in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let link = LinkModel::eventually_timely(gst, delta, pre_loss);
        let mut rng = StdRng::seed_from_u64(seed);
        for t in gst..gst + 500 {
            match link.route(Instant::from_ticks(t), &mut rng) {
                LinkFate::DeliverAt(at) => {
                    prop_assert!(at <= Instant::from_ticks(t + delta));
                    prop_assert!(at >= Instant::from_ticks(t));
                }
                LinkFate::Drop => prop_assert!(false, "post-GST drop"),
            }
        }
    }

    /// Sender accounting is conservative: messages sent equals messages
    /// delivered plus link drops plus dead drops plus in-flight at horizon.
    #[test]
    fn message_conservation(topo in any_topology(3), seed in any::<u64>()) {
        let mut sim = SimBuilder::new(3)
            .seed(seed)
            .topology(topo)
            .build_with(|_| Probe { received: Vec::new() });
        sim.run_until(Instant::from_ticks(2_000));
        let sent: u64 = (0..3u32).map(|p| sim.stats().sent_by(ProcessId(p))).sum();
        let delivered: u64 = (0..3u32).map(|p| sim.stats().delivered_to(ProcessId(p))).sum();
        let link_drops: u64 = (0..3u32).map(|p| sim.stats().link_drops_from(ProcessId(p))).sum();
        let dead_drops: u64 = (0..3u32).map(|p| sim.stats().dead_drops_to(ProcessId(p))).sum();
        // In-flight messages at the horizon are the only slack.
        prop_assert!(delivered + link_drops + dead_drops <= sent);
        prop_assert!(
            sent - (delivered + link_drops + dead_drops) <= 60,
            "too many unaccounted messages: sent={sent} delivered={delivered} \
             link_drops={link_drops} dead_drops={dead_drops}"
        );
    }
}
