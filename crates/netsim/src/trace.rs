//! Structured run traces: a bounded, serializable log of what the network
//! and the fault injector did, for debugging protocols and for archiving
//! experiment evidence.
//!
//! Recording is off by default (hot runs stay allocation-light); enable it
//! with [`crate::SimBuilder::record_trace`]. Message payloads are recorded
//! by their *classifier label*, not by value, so traces stay compact and the
//! trace type needs no knowledge of the protocol's message type.

use std::fmt;

use lls_primitives::{Instant, ProcessId, TimerId};
use serde::Serialize;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TraceKind {
    /// A process booted.
    Start(ProcessId),
    /// A process crashed (crash-stop).
    Crash(ProcessId),
    /// A message was handed to the link.
    Send {
        /// Sender.
        from: ProcessId,
        /// Destination.
        to: ProcessId,
        /// Classifier label of the payload.
        msg_kind: &'static str,
    },
    /// A message reached its destination and was processed.
    Deliver {
        /// Sender.
        from: ProcessId,
        /// Destination.
        to: ProcessId,
    },
    /// The link lost a message.
    LinkDrop {
        /// Sender.
        from: ProcessId,
        /// Destination.
        to: ProcessId,
    },
    /// A message reached a crashed or unstarted process.
    DeadDrop {
        /// Destination.
        to: ProcessId,
    },
    /// A timer fired at a process.
    TimerFire {
        /// Owner.
        p: ProcessId,
        /// Which timer.
        timer: TimerId,
    },
    /// A crashed process restarted with a fresh state machine.
    Restart(ProcessId),
    /// The network schedule changed a link or the topology.
    NetChange,
    /// A process emitted a protocol output (recorded by classifier label).
    Output {
        /// Emitter.
        p: ProcessId,
        /// Classifier label of the output value.
        label: &'static str,
    },
}

/// One timestamped trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct TraceRecord {
    /// When it happened.
    pub at: Instant,
    /// What happened.
    pub kind: TraceKind,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{:<8} ", self.at.ticks())?;
        match self.kind {
            TraceKind::Start(p) => write!(f, "START     {p}"),
            TraceKind::Crash(p) => write!(f, "CRASH     {p}"),
            TraceKind::Send { from, to, msg_kind } => {
                write!(f, "SEND      {from} -> {to} [{msg_kind}]")
            }
            TraceKind::Deliver { from, to } => write!(f, "DELIVER   {from} -> {to}"),
            TraceKind::LinkDrop { from, to } => write!(f, "LINKDROP  {from} -> {to}"),
            TraceKind::DeadDrop { to } => write!(f, "DEADDROP  -> {to}"),
            TraceKind::TimerFire { p, timer } => write!(f, "TIMER     {p} {timer}"),
            TraceKind::Restart(p) => write!(f, "RESTART   {p}"),
            TraceKind::NetChange => write!(f, "NETCHANGE"),
            TraceKind::Output { p, label } => write!(f, "OUTPUT    {p} [{label}]"),
        }
    }
}

/// A bounded trace buffer. When full, further records are counted but not
/// stored (truncation is explicit, never silent).
#[derive(Debug, Clone, Serialize)]
pub struct Trace {
    records: Vec<TraceRecord>,
    capacity: usize,
    overflow: u64,
}

impl Trace {
    /// Creates a trace buffer holding up to `capacity` records.
    pub fn new(capacity: usize) -> Self {
        Trace {
            records: Vec::new(),
            capacity,
            overflow: 0,
        }
    }

    /// Appends a record, or counts it as overflow when full.
    pub fn push(&mut self, at: Instant, kind: TraceKind) {
        if self.records.len() < self.capacity {
            self.records.push(TraceRecord { at, kind });
        } else {
            self.overflow += 1;
        }
    }

    /// The stored records, in order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// How many records were discarded because the buffer was full.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Renders the trace as text, one record per line, with an explicit
    /// truncation marker if the buffer overflowed.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_string());
            out.push('\n');
        }
        if self.overflow > 0 {
            out.push_str(&format!("… {} further records truncated\n", self.overflow));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(k: u64) -> Instant {
        Instant::from_ticks(k)
    }

    #[test]
    fn records_accumulate_in_order() {
        let mut tr = Trace::new(10);
        tr.push(t(1), TraceKind::Start(ProcessId(0)));
        tr.push(
            t(2),
            TraceKind::Send {
                from: ProcessId(0),
                to: ProcessId(1),
                msg_kind: "ALIVE",
            },
        );
        assert_eq!(tr.records().len(), 2);
        assert_eq!(tr.records()[0].at, t(1));
        assert_eq!(tr.overflow(), 0);
    }

    #[test]
    fn overflow_is_counted_not_silent() {
        let mut tr = Trace::new(2);
        for i in 0..5 {
            tr.push(t(i), TraceKind::Crash(ProcessId(0)));
        }
        assert_eq!(tr.records().len(), 2);
        assert_eq!(tr.overflow(), 3);
        assert!(tr.render().contains("3 further records truncated"));
    }

    #[test]
    fn rendering_is_line_per_record() {
        let mut tr = Trace::new(10);
        tr.push(t(7), TraceKind::DeadDrop { to: ProcessId(2) });
        tr.push(
            t(9),
            TraceKind::TimerFire {
                p: ProcessId(1),
                timer: TimerId(3),
            },
        );
        let s = tr.render();
        assert!(s.contains("DEADDROP"), "{s}");
        assert!(s.contains("TIMER"), "{s}");
        assert_eq!(s.lines().count(), 2);
    }
}
