//! Message-delay distributions.

use lls_primitives::Duration;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A distribution over message delays, sampled per message.
///
/// The paper distinguishes links with a (unknown) *bound* on delay from links
/// with *no* bound. [`DelayDist::Constant`] and [`DelayDist::Uniform`] model
/// the former; [`DelayDist::HeavyTail`] has unbounded support (geometric tail)
/// and models the latter — an asynchronous link can hold a message arbitrarily
/// long.
///
/// # Example
///
/// ```
/// use netsim::DelayDist;
/// use lls_primitives::Duration;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let d = DelayDist::Uniform {
///     lo: Duration::from_ticks(2),
///     hi: Duration::from_ticks(5),
/// };
/// let s = d.sample(&mut rng);
/// assert!(s >= Duration::from_ticks(2) && s <= Duration::from_ticks(5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DelayDist {
    /// Every message takes exactly this long.
    Constant(Duration),
    /// Delay drawn uniformly from `[lo, hi]` (inclusive).
    Uniform {
        /// Minimum delay.
        lo: Duration,
        /// Maximum delay.
        hi: Duration,
    },
    /// `base + step * G` where `G ~ Geometric(p)` (number of failures before
    /// the first success). Unbounded support: models an asynchronous link with
    /// no delay bound, while still delivering "most" messages quickly.
    HeavyTail {
        /// Minimum delay.
        base: Duration,
        /// Tail granularity.
        step: Duration,
        /// Per-step continuation probability `1 - p` is `tail`; larger `tail`
        /// means heavier tail. Must be in `[0, 1)`.
        tail: f64,
    },
}

impl DelayDist {
    /// Convenience constant-delay constructor.
    pub fn constant(ticks: u64) -> Self {
        DelayDist::Constant(Duration::from_ticks(ticks))
    }

    /// Convenience uniform-delay constructor over `[lo, hi]` ticks.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform(lo: u64, hi: u64) -> Self {
        assert!(
            lo <= hi,
            "uniform delay requires lo <= hi, got [{lo}, {hi}]"
        );
        DelayDist::Uniform {
            lo: Duration::from_ticks(lo),
            hi: Duration::from_ticks(hi),
        }
    }

    /// Convenience heavy-tail constructor.
    ///
    /// # Panics
    ///
    /// Panics if `tail` is not in `[0, 1)`.
    pub fn heavy_tail(base: u64, step: u64, tail: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&tail),
            "tail probability must be in [0, 1), got {tail}"
        );
        DelayDist::HeavyTail {
            base: Duration::from_ticks(base),
            step: Duration::from_ticks(step),
            tail,
        }
    }

    /// The largest delay this distribution can produce, or `None` if
    /// unbounded.
    pub fn upper_bound(&self) -> Option<Duration> {
        match *self {
            DelayDist::Constant(d) => Some(d),
            DelayDist::Uniform { hi, .. } => Some(hi),
            DelayDist::HeavyTail { .. } => None,
        }
    }

    /// Draws one delay.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Duration {
        match *self {
            DelayDist::Constant(d) => d,
            DelayDist::Uniform { lo, hi } => {
                Duration::from_ticks(rng.gen_range(lo.ticks()..=hi.ticks()))
            }
            DelayDist::HeavyTail { base, step, tail } => {
                let mut extra: u64 = 0;
                // Geometric tail, capped so a pathological RNG stream cannot
                // stall the simulation; the cap is far above any timeout the
                // protocols use, so it is indistinguishable from "unbounded"
                // for every experiment.
                while extra < 1_000_000 && rng.gen_bool(tail) {
                    extra += 1;
                }
                base + step * extra
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_is_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = DelayDist::constant(9);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), Duration::from_ticks(9));
        }
    }

    #[test]
    fn uniform_stays_in_range_and_hits_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = DelayDist::uniform(1, 3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let s = d.sample(&mut rng).ticks();
            assert!((1..=3).contains(&s));
            seen[s as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn heavy_tail_exceeds_any_fixed_bound_eventually() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = DelayDist::heavy_tail(1, 1, 0.9);
        let max = (0..500).map(|_| d.sample(&mut rng).ticks()).max().unwrap();
        assert!(max > 10, "tail never materialized (max={max})");
        assert_eq!(d.upper_bound(), None);
    }

    #[test]
    fn upper_bounds() {
        assert_eq!(
            DelayDist::constant(4).upper_bound(),
            Some(Duration::from_ticks(4))
        );
        assert_eq!(
            DelayDist::uniform(1, 6).upper_bound(),
            Some(Duration::from_ticks(6))
        );
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn uniform_rejects_inverted_range() {
        let _ = DelayDist::uniform(5, 2);
    }

    #[test]
    #[should_panic(expected = "tail probability")]
    fn heavy_tail_rejects_certain_continuation() {
        let _ = DelayDist::heavy_tail(1, 1, 1.0);
    }
}
