//! Crash-stop fault schedules.
//!
//! The paper uses the *crash* failure model: a faulty process stops executing
//! at some time and never takes another step. (Crash–*recovery* is the 2011
//! follow-up paper, out of scope here.) A [`FaultPlan`] pins down, per
//! process, when — if ever — it crashes, and optionally when it starts.

use lls_primitives::{Instant, ProcessId};
use serde::{Deserialize, Serialize};

/// A deterministic crash/start schedule for one run.
///
/// # Example
///
/// ```
/// use netsim::FaultPlan;
/// use lls_primitives::{Instant, ProcessId};
///
/// let mut plan = FaultPlan::new(3);
/// plan.crash_at(ProcessId(1), Instant::from_ticks(100));
/// plan.start_at(ProcessId(2), Instant::from_ticks(10));
/// assert_eq!(plan.crash_time(ProcessId(1)), Some(Instant::from_ticks(100)));
/// assert_eq!(plan.crash_time(ProcessId(0)), None);
/// assert_eq!(plan.correct_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    n: usize,
    crash: Vec<Option<Instant>>,
    start: Vec<Instant>,
}

impl FaultPlan {
    /// A plan in which every process starts at time 0 and never crashes.
    pub fn new(n: usize) -> Self {
        FaultPlan {
            n,
            crash: vec![None; n],
            start: vec![Instant::ZERO; n],
        }
    }

    /// Schedules `p` to crash at `t` (crash-stop: it takes no step at or
    /// after `t`). Overwrites any earlier schedule for `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn crash_at(&mut self, p: ProcessId, t: Instant) -> &mut Self {
        assert!(p.as_usize() < self.n, "{p} out of range");
        self.crash[p.as_usize()] = Some(t);
        self
    }

    /// Schedules `p` to run `on_start` at `t` instead of time 0 (staggered
    /// boot).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn start_at(&mut self, p: ProcessId, t: Instant) -> &mut Self {
        assert!(p.as_usize() < self.n, "{p} out of range");
        self.start[p.as_usize()] = t;
        self
    }

    /// When `p` crashes, or `None` if it is correct in this run.
    pub fn crash_time(&self, p: ProcessId) -> Option<Instant> {
        self.crash.get(p.as_usize()).copied().flatten()
    }

    /// When `p` boots.
    pub fn start_time(&self, p: ProcessId) -> Instant {
        self.start[p.as_usize()]
    }

    /// Ids of processes that never crash in this plan.
    pub fn correct(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.crash
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_none())
            .map(|(i, _)| ProcessId(i as u32))
    }

    /// Number of processes that never crash.
    pub fn correct_count(&self) -> usize {
        self.crash.iter().filter(|c| c.is_none()).count()
    }

    /// Returns `true` if a majority of processes are correct — the premise of
    /// the paper's consensus system `S_maj`.
    pub fn has_correct_majority(&self) -> bool {
        self.correct_count() > self.n / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_all_correct() {
        let plan = FaultPlan::new(4);
        assert_eq!(plan.correct_count(), 4);
        assert!(plan.has_correct_majority());
        assert_eq!(plan.correct().count(), 4);
        assert_eq!(plan.start_time(ProcessId(3)), Instant::ZERO);
    }

    #[test]
    fn crash_schedule_is_reflected() {
        let mut plan = FaultPlan::new(4);
        plan.crash_at(ProcessId(0), Instant::from_ticks(5))
            .crash_at(ProcessId(3), Instant::from_ticks(9));
        assert_eq!(plan.correct_count(), 2);
        let correct: Vec<_> = plan.correct().collect();
        assert_eq!(correct, vec![ProcessId(1), ProcessId(2)]);
        assert!(!plan.has_correct_majority());
    }

    #[test]
    fn majority_boundary() {
        let mut plan = FaultPlan::new(5);
        plan.crash_at(ProcessId(0), Instant::ZERO);
        plan.crash_at(ProcessId(1), Instant::ZERO);
        assert!(plan.has_correct_majority()); // 3 of 5
        plan.crash_at(ProcessId(2), Instant::ZERO);
        assert!(!plan.has_correct_majority()); // 2 of 5
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_crash_panics() {
        FaultPlan::new(2).crash_at(ProcessId(2), Instant::ZERO);
    }
}
