//! The simulator's event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use lls_primitives::{Instant, ProcessId, TimerId};

use crate::link::LinkModel;
use crate::topology::Topology;

/// What a queued event does when it fires.
#[derive(Debug, Clone)]
pub(crate) enum EventKind<M, R> {
    /// Run `on_start` at the process.
    Start(ProcessId),
    /// Deliver a message.
    Deliver {
        /// Sender.
        from: ProcessId,
        /// Receiver.
        to: ProcessId,
        /// Payload.
        msg: M,
        /// Sender's Lamport clock at send time (0 when the simulator runs
        /// without trace clocks). Merged into the receiver's clock before
        /// the handler runs.
        stamp: u64,
    },
    /// Fire a timer, if its generation is still current.
    Timer {
        /// Owner of the timer.
        p: ProcessId,
        /// Which timer.
        timer: TimerId,
        /// Generation at arming time; stale generations are ignored.
        gen: u64,
    },
    /// Crash a process (crash-stop).
    Crash(ProcessId),
    /// Deliver an external request (client command).
    Request {
        /// Target process.
        p: ProcessId,
        /// The request payload.
        req: R,
    },
    /// Replace one link's model (dynamic network schedule).
    SetLink {
        /// Link source.
        from: ProcessId,
        /// Link destination.
        to: ProcessId,
        /// The new model.
        model: LinkModel,
    },
    /// Replace the whole topology (e.g. heal a partition).
    SetTopology(Box<Topology>),
}

/// A scheduled event. Ordered by `(at, seq)` so that the queue pops in
/// time order with FIFO tie-breaking — the source of the simulator's
/// determinism.
#[derive(Debug)]
pub(crate) struct QueuedEvent<M, R> {
    pub at: Instant,
    pub seq: u64,
    pub kind: EventKind<M, R>,
}

impl<M, R> PartialEq for QueuedEvent<M, R> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<M, R> Eq for QueuedEvent<M, R> {}

impl<M, R> PartialOrd for QueuedEvent<M, R> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M, R> Ord for QueuedEvent<M, R> {
    /// Reversed so that `BinaryHeap` (a max-heap) pops the *earliest* event.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-heap of events.
#[derive(Debug)]
pub(crate) struct EventQueue<M, R> {
    heap: BinaryHeap<QueuedEvent<M, R>>,
    next_seq: u64,
}

impl<M, R> EventQueue<M, R> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `kind` at absolute time `at`.
    pub fn push(&mut self, at: Instant, kind: EventKind<M, R>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(QueuedEvent { at, seq, kind });
    }

    /// Time of the next event, if any.
    pub fn peek_time(&self) -> Option<Instant> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<QueuedEvent<M, R>> {
        self.heap.pop()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ticks: u64) -> Instant {
        Instant::from_ticks(ticks)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q: EventQueue<(), ()> = EventQueue::new();
        q.push(t(5), EventKind::Start(ProcessId(0)));
        q.push(t(1), EventKind::Start(ProcessId(1)));
        q.push(t(3), EventKind::Start(ProcessId(2)));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.at.ticks())
            .collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q: EventQueue<u32, ()> = EventQueue::new();
        for i in 0..10u32 {
            q.push(
                t(7),
                EventKind::Deliver {
                    from: ProcessId(0),
                    to: ProcessId(1),
                    msg: i,
                    stamp: 0,
                },
            );
        }
        let mut seen = Vec::new();
        while let Some(e) = q.pop() {
            if let EventKind::Deliver { msg, .. } = e.kind {
                seen.push(msg);
            }
        }
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q: EventQueue<(), ()> = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(t(9), EventKind::Crash(ProcessId(0)));
        q.push(t(2), EventKind::Crash(ProcessId(1)));
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.peek_time(), Some(t(9)));
    }
}
