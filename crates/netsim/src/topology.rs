//! Link matrices and the paper's system presets.

use lls_primitives::{Membership, ProcessId};
use serde::{Deserialize, Serialize};

use crate::link::LinkModel;

/// Parameters of the paper's system **S**: all links at least fair lossy, and
/// one designated correct process whose *outgoing* links are ♦-timely (the
/// ♦-source).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemSParams {
    /// GST of the source's outgoing links (unknown to the protocol).
    pub gst: u64,
    /// Post-GST delay bound `δ` on the source's outgoing links.
    pub delta: u64,
    /// Loss probability on the source's outgoing links before GST.
    pub pre_gst_loss: f64,
    /// Loss probability on every other link (fair lossy, `< 1`).
    pub mesh_loss: f64,
    /// Base delay of the fair-lossy mesh.
    pub mesh_delay: u64,
}

impl Default for SystemSParams {
    fn default() -> Self {
        SystemSParams {
            gst: 500,
            delta: 5,
            pre_gst_loss: 0.7,
            mesh_loss: 0.3,
            mesh_delay: 3,
        }
    }
}

/// The full `n × n` matrix of unidirectional link models.
///
/// Self-links exist for completeness (a process may send to itself) and are
/// always [`LinkModel::timely`] with delay 1 unless overridden.
///
/// # Example
///
/// ```
/// use netsim::{Topology, LinkModel, SystemSParams};
/// use lls_primitives::ProcessId;
///
/// // System S with process 2 as the ♦-source.
/// let topo = Topology::system_s(5, ProcessId(2), SystemSParams::default());
/// assert!(topo.is_source(ProcessId(2)));
/// assert!(!topo.is_source(ProcessId(0)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    n: usize,
    /// Row-major: `links[from * n + to]`.
    links: Vec<LinkModel>,
}

impl Topology {
    /// All links timely with constant-ish delay up to `delta` ticks — the
    /// strongest model (what all-to-all heartbeat algorithms need).
    pub fn all_timely(n: usize, delta: lls_primitives::Duration) -> Self {
        let m = Membership::new(n);
        let _ = m;
        Topology {
            n,
            links: vec![LinkModel::timely(delta.ticks().max(1)); n * n],
        }
    }

    /// All links fair lossy — no ♦-source anywhere (Ω is *not* implementable
    /// here; used as a negative control in experiments).
    pub fn fair_lossy_mesh(n: usize, loss: f64, base_delay: u64) -> Self {
        Membership::new(n);
        Topology {
            n,
            links: vec![LinkModel::fair_lossy(loss, base_delay); n * n],
        }
    }

    /// The paper's system **S**: a fair-lossy mesh plus one ♦-source whose
    /// outgoing links are eventually timely.
    pub fn system_s(n: usize, source: ProcessId, p: SystemSParams) -> Self {
        let mut topo = Topology::fair_lossy_mesh(n, p.mesh_loss, p.mesh_delay);
        topo.set_outgoing(
            source,
            LinkModel::eventually_timely(p.gst, p.delta, p.pre_gst_loss),
        );
        topo
    }

    /// Like [`Topology::system_s`] but with *several* ♦-sources.
    pub fn system_s_multi(n: usize, sources: &[ProcessId], p: SystemSParams) -> Self {
        let mut topo = Topology::fair_lossy_mesh(n, p.mesh_loss, p.mesh_delay);
        for &s in sources {
            topo.set_outgoing(
                s,
                LinkModel::eventually_timely(p.gst, p.delta, p.pre_gst_loss),
            );
        }
        topo
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The model of the link `from → to`.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn link(&self, from: ProcessId, to: ProcessId) -> &LinkModel {
        assert!(from.as_usize() < self.n && to.as_usize() < self.n);
        &self.links[from.as_usize() * self.n + to.as_usize()]
    }

    /// Replaces the link `from → to`.
    pub fn set_link(&mut self, from: ProcessId, to: ProcessId, model: LinkModel) -> &mut Self {
        assert!(from.as_usize() < self.n && to.as_usize() < self.n);
        self.links[from.as_usize() * self.n + to.as_usize()] = model;
        self
    }

    /// Replaces every outgoing link of `from` (except the self-link).
    pub fn set_outgoing(&mut self, from: ProcessId, model: LinkModel) -> &mut Self {
        for to in 0..self.n {
            if to != from.as_usize() {
                self.links[from.as_usize() * self.n + to] = model;
            }
        }
        self
    }

    /// Replaces every incoming link of `to` (except the self-link).
    pub fn set_incoming(&mut self, to: ProcessId, model: LinkModel) -> &mut Self {
        for from in 0..self.n {
            if from != to.as_usize() {
                self.links[from * self.n + to.as_usize()] = model;
            }
        }
        self
    }

    /// Returns `true` if every outgoing link of `p` is ♦-timely, i.e. `p`
    /// would be a ♦-source if correct.
    pub fn is_source(&self, p: ProcessId) -> bool {
        (0..self.n)
            .filter(|&to| to != p.as_usize())
            .all(|to| self.links[p.as_usize() * self.n + to].is_eventually_timely())
    }

    /// All processes whose outgoing links are ♦-timely.
    pub fn sources(&self) -> Vec<ProcessId> {
        (0..self.n as u32)
            .map(ProcessId)
            .filter(|&p| self.is_source(p))
            .collect()
    }

    /// Number of ♦-timely links (directed, excluding self-links).
    pub fn timely_link_count(&self) -> usize {
        let mut count = 0;
        for from in 0..self.n {
            for to in 0..self.n {
                if from != to && self.links[from * self.n + to].is_eventually_timely() {
                    count += 1;
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lls_primitives::Duration;

    #[test]
    fn all_timely_has_every_process_as_source() {
        let t = Topology::all_timely(4, Duration::from_ticks(2));
        assert_eq!(t.sources().len(), 4);
        assert_eq!(t.timely_link_count(), 12);
    }

    #[test]
    fn fair_lossy_mesh_has_no_source() {
        let t = Topology::fair_lossy_mesh(4, 0.5, 2);
        assert!(t.sources().is_empty());
        assert_eq!(t.timely_link_count(), 0);
    }

    #[test]
    fn system_s_has_exactly_the_designated_source() {
        let t = Topology::system_s(5, ProcessId(3), SystemSParams::default());
        assert_eq!(t.sources(), vec![ProcessId(3)]);
        assert_eq!(t.timely_link_count(), 4);
    }

    #[test]
    fn system_s_multi_sets_all_sources() {
        let t =
            Topology::system_s_multi(5, &[ProcessId(0), ProcessId(4)], SystemSParams::default());
        assert_eq!(t.sources(), vec![ProcessId(0), ProcessId(4)]);
    }

    #[test]
    fn set_incoming_only_touches_target_column() {
        let mut t = Topology::all_timely(3, Duration::from_ticks(1));
        t.set_incoming(ProcessId(1), LinkModel::Dead);
        assert_eq!(*t.link(ProcessId(0), ProcessId(1)), LinkModel::Dead);
        assert_eq!(*t.link(ProcessId(2), ProcessId(1)), LinkModel::Dead);
        assert!(t.link(ProcessId(0), ProcessId(2)).is_eventually_timely());
        // Self-link untouched.
        assert!(t.link(ProcessId(1), ProcessId(1)).is_eventually_timely());
    }

    #[test]
    fn degrading_links_one_by_one_reduces_count() {
        let mut t = Topology::all_timely(3, Duration::from_ticks(1));
        assert_eq!(t.timely_link_count(), 6);
        t.set_link(ProcessId(0), ProcessId(1), LinkModel::fair_lossy(0.2, 2));
        assert_eq!(t.timely_link_count(), 5);
        assert!(!t.is_source(ProcessId(0)));
    }

    #[test]
    #[should_panic]
    fn link_access_out_of_range_panics() {
        let t = Topology::all_timely(3, Duration::from_ticks(1));
        let _ = t.link(ProcessId(3), ProcessId(0));
    }
}
