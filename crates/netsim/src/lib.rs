//! Deterministic discrete-event network simulator for partially synchronous,
//! crash-prone message-passing systems.
//!
//! This is the substrate every experiment in the workspace runs on. The
//! paper's system model — fair-lossy links, an unknown global stabilization
//! time (GST), unknown delay bounds `δ`, crash failures — is adversarial, and
//! its theorems quantify over all admissible schedules ("there is a time after
//! which …"). The only way to *test* such claims is to run the identical
//! protocol code under many concrete adversarial schedules, deterministically,
//! and inspect full traces. This crate provides exactly that:
//!
//! * **Link models** ([`LinkModel`]): timely, eventually timely (with a GST
//!   before which messages are delayed or lost), fair lossy, lossy
//!   asynchronous, and dead links — per ordered process pair
//!   ([`Topology`]).
//! * **Fault injection** ([`FaultPlan`]): crash-stop schedules per process.
//! * **Determinism**: one seed drives every random choice; equal-time events
//!   tie-break by insertion order, so a run is a pure function of
//!   `(protocol, topology, faults, seed)`.
//! * **Instrumentation** ([`Stats`], [`OutputEvent`]): per-process and
//!   per-kind message counts, per-window sender sets (for the paper's
//!   *communication efficiency* property), last-send times, and a timestamped
//!   trace of protocol outputs (leader changes, decisions).
//!
//! # Example: two processes ping-pong over a timely mesh
//!
//! ```
//! use lls_primitives::{Ctx, ProcessId, Sm, TimerId, Instant, Duration};
//! use netsim::{SimBuilder, Topology};
//!
//! #[derive(Debug)]
//! struct Echo;
//! impl Sm for Echo {
//!     type Msg = u64;
//!     type Output = u64;
//!     type Request = ();
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, u64, u64>) {
//!         if ctx.id() == ProcessId(0) {
//!             ctx.send(ProcessId(1), 1);
//!         }
//!     }
//!     fn on_message(&mut self, ctx: &mut Ctx<'_, u64, u64>, from: ProcessId, msg: u64) {
//!         ctx.output(msg);
//!         if msg < 3 {
//!             ctx.send(from, msg + 1);
//!         }
//!     }
//!     fn on_timer(&mut self, _ctx: &mut Ctx<'_, u64, u64>, _t: TimerId) {}
//! }
//!
//! let mut sim = SimBuilder::new(2)
//!     .topology(Topology::all_timely(2, Duration::from_ticks(1)))
//!     .build_with(|_env| Echo);
//! sim.run_until(Instant::from_ticks(100));
//! let seen: Vec<u64> = sim.outputs().iter().map(|e| e.output).collect();
//! assert_eq!(seen, vec![1, 2, 3]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod delay;
mod event;
mod fault;
mod link;
mod sim;
mod stats;
mod topology;
mod trace;

pub use delay::DelayDist;
pub use fault::FaultPlan;
pub use link::{LinkFate, LinkModel};
pub use sim::{CausalDelivery, OutputEvent, SimBuilder, Simulator};
pub use stats::{Stats, WindowStats};
pub use topology::{SystemSParams, Topology};
pub use trace::{Trace, TraceKind, TraceRecord};
