//! Run instrumentation: message counts, sender sets, and windows.
//!
//! The paper's headline property is *communication efficiency*: "there is a
//! time after which only one process sends messages". Verifying it needs to
//! know, for every suffix of the run, which processes still sent messages.
//! [`Stats`] tracks that cheaply:
//!
//! * `last_send[p]` — the last time `p` sent anything (senders after `t` are
//!   exactly `{p : last_send[p] ≥ t}`);
//! * per-window sender bitsets and message counts (the time series plotted by
//!   experiment E2);
//! * cumulative per-process and per-kind counters.

use std::collections::BTreeMap;

use lls_obs::Registry;
use lls_primitives::{Duration, Instant, ProcessId};

/// Aggregates for one fixed-length window of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WindowStats {
    /// Bitset of processes that sent at least one message in the window
    /// (bit `p` set ⇔ process `p` sent). Saturates above 64 processes —
    /// use [`WindowStats::sender_count`] which stays exact.
    pub sender_bits: u64,
    /// Exact number of distinct senders in the window.
    pub sender_count: u32,
    /// Messages sent during the window.
    pub messages: u64,
}

/// Counters for one whole run.
#[derive(Debug, Clone)]
pub struct Stats {
    n: usize,
    window: Duration,
    sent: Vec<u64>,
    delivered: Vec<u64>,
    dropped_link: Vec<u64>,
    dropped_dead: Vec<u64>,
    last_send: Vec<Option<Instant>>,
    windows: Vec<WindowStats>,
    /// Scratch: which processes sent in the current window (exact for any n).
    window_senders: Vec<bool>,
    current_window: usize,
    kind_counts: BTreeMap<&'static str, u64>,
}

impl Stats {
    pub(crate) fn new(n: usize, window: Duration) -> Self {
        assert!(window.ticks() > 0, "stats window must be positive");
        Stats {
            n,
            window,
            sent: vec![0; n],
            delivered: vec![0; n],
            dropped_link: vec![0; n],
            dropped_dead: vec![0; n],
            last_send: vec![None; n],
            windows: Vec::new(),
            window_senders: vec![false; n],
            current_window: 0,
            kind_counts: BTreeMap::new(),
        }
    }

    fn roll_to(&mut self, w: usize) {
        if self.windows.is_empty() {
            self.windows.push(WindowStats::default());
        }
        while self.current_window < w {
            let bits = self
                .window_senders
                .iter()
                .enumerate()
                .filter(|(_, &s)| s)
                .fold(0u64, |acc, (i, _)| acc | (1u64 << (i.min(63))));
            let count = self.window_senders.iter().filter(|&&s| s).count() as u32;
            let cur = &mut self.windows[self.current_window];
            cur.sender_bits = bits;
            cur.sender_count = count;
            self.window_senders.iter_mut().for_each(|s| *s = false);
            self.current_window += 1;
            self.windows.push(WindowStats::default());
        }
    }

    pub(crate) fn record_send(&mut self, from: ProcessId, at: Instant, kind: &'static str) {
        let w = (at.ticks() / self.window.ticks()) as usize;
        self.roll_to(w);
        self.sent[from.as_usize()] += 1;
        self.last_send[from.as_usize()] = Some(at);
        self.window_senders[from.as_usize()] = true;
        let win = self.windows.last_mut().expect("roll_to ensures a window");
        win.messages += 1;
        *self.kind_counts.entry(kind).or_insert(0) += 1;
    }

    pub(crate) fn record_delivery(&mut self, to: ProcessId) {
        self.delivered[to.as_usize()] += 1;
    }

    pub(crate) fn record_link_drop(&mut self, from: ProcessId) {
        self.dropped_link[from.as_usize()] += 1;
    }

    pub(crate) fn record_dead_drop(&mut self, to: ProcessId) {
        self.dropped_dead[to.as_usize()] += 1;
    }

    /// Called when the run finishes, to flush the in-progress window.
    pub(crate) fn finish(&mut self, now: Instant) {
        let w = (now.ticks() / self.window.ticks()) as usize;
        self.roll_to(w + 1);
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The window length used for [`Stats::windows`].
    pub fn window_len(&self) -> Duration {
        self.window
    }

    /// Messages sent by `p` over the whole run.
    pub fn sent_by(&self, p: ProcessId) -> u64 {
        self.sent[p.as_usize()]
    }

    /// Messages delivered to `p` over the whole run.
    pub fn delivered_to(&self, p: ProcessId) -> u64 {
        self.delivered[p.as_usize()]
    }

    /// Messages from `p` lost on a link.
    pub fn link_drops_from(&self, p: ProcessId) -> u64 {
        self.dropped_link[p.as_usize()]
    }

    /// Messages addressed to `p` discarded because `p` had crashed.
    pub fn dead_drops_to(&self, p: ProcessId) -> u64 {
        self.dropped_dead[p.as_usize()]
    }

    /// Total messages sent by anyone.
    pub fn total_sent(&self) -> u64 {
        self.sent.iter().sum()
    }

    /// Last time `p` sent a message, if ever.
    pub fn last_send(&self, p: ProcessId) -> Option<Instant> {
        self.last_send[p.as_usize()]
    }

    /// The set of processes that sent at least one message at or after `t`.
    ///
    /// This is the communication-efficiency oracle: the algorithm is
    /// communication-efficient on this run (up to its horizon) iff this set
    /// has size ≤ 1 for some prefix-cut `t` well before the horizon.
    pub fn senders_since(&self, t: Instant) -> Vec<ProcessId> {
        (0..self.n as u32)
            .map(ProcessId)
            .filter(|p| self.last_send[p.as_usize()].is_some_and(|s| s >= t))
            .collect()
    }

    /// The earliest time from which at most `k` processes ever send again,
    /// or `None` if more than `k` processes send in every suffix.
    ///
    /// For `k = 1` this is the *communication stabilization time* reported in
    /// the experiments.
    pub fn quiescence_time(&self, k: usize) -> Option<Instant> {
        let mut lasts: Vec<Instant> = self.last_send.iter().flatten().copied().collect();
        lasts.sort();
        if lasts.len() <= k {
            return Some(Instant::ZERO);
        }
        // After the (len-k)-th largest last-send, only k processes still send.
        // The cut is just after the last send of the (len-k)-th process.
        let idx = lasts.len() - k - 1;
        Some(lasts[idx] + Duration::from_ticks(1))
    }

    /// Per-window aggregates, oldest first. The final window may be partial.
    pub fn windows(&self) -> &[WindowStats] {
        &self.windows
    }

    /// Messages sent per kind label (as classified by the builder's
    /// classifier; a single `"msg"` bucket if none was set).
    pub fn kind_counts(&self) -> &BTreeMap<&'static str, u64> {
        &self.kind_counts
    }

    /// Exports the run's accounting into an observability [`Registry`],
    /// unifying substrate traffic with the protocol probes' counters:
    /// per-process `netsim_sent_total{p}` / `netsim_delivered_total{p}`,
    /// aggregate drop counters, and per-kind `netsim_msgs_total{kind}`.
    ///
    /// Counters are monotone: exporting the same `Stats` twice doubles
    /// them, so export once per run (or into a fresh registry).
    pub fn export(&self, registry: &Registry) {
        for p in 0..self.n {
            registry
                .counter(&format!("netsim_sent_total_p{p}"))
                .add(self.sent[p]);
            registry
                .counter(&format!("netsim_delivered_total_p{p}"))
                .add(self.delivered[p]);
        }
        registry
            .counter("netsim_link_drops_total")
            .add(self.dropped_link.iter().sum());
        registry
            .counter("netsim_dead_drops_total")
            .add(self.dropped_dead.iter().sum());
        for (kind, count) in &self.kind_counts {
            registry
                .counter(&format!("netsim_msgs_total_{kind}"))
                .add(*count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ticks: u64) -> Instant {
        Instant::from_ticks(ticks)
    }

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::new(3, Duration::from_ticks(10));
        s.record_send(ProcessId(0), t(1), "a");
        s.record_send(ProcessId(0), t(2), "a");
        s.record_send(ProcessId(2), t(3), "b");
        s.record_delivery(ProcessId(1));
        s.record_link_drop(ProcessId(2));
        s.record_dead_drop(ProcessId(1));
        s.finish(t(5));
        assert_eq!(s.sent_by(ProcessId(0)), 2);
        assert_eq!(s.sent_by(ProcessId(1)), 0);
        assert_eq!(s.total_sent(), 3);
        assert_eq!(s.delivered_to(ProcessId(1)), 1);
        assert_eq!(s.link_drops_from(ProcessId(2)), 1);
        assert_eq!(s.dead_drops_to(ProcessId(1)), 1);
        assert_eq!(s.kind_counts()["a"], 2);
        assert_eq!(s.kind_counts()["b"], 1);
    }

    #[test]
    fn senders_since_uses_last_send() {
        let mut s = Stats::new(3, Duration::from_ticks(10));
        s.record_send(ProcessId(0), t(5), "m");
        s.record_send(ProcessId(1), t(50), "m");
        s.record_send(ProcessId(1), t(80), "m");
        s.finish(t(100));
        assert_eq!(s.senders_since(t(0)), vec![ProcessId(0), ProcessId(1)]);
        assert_eq!(s.senders_since(t(6)), vec![ProcessId(1)]);
        assert_eq!(s.senders_since(t(81)), Vec::<ProcessId>::new());
    }

    #[test]
    fn quiescence_time_finds_single_sender_suffix() {
        let mut s = Stats::new(3, Duration::from_ticks(10));
        s.record_send(ProcessId(0), t(5), "m");
        s.record_send(ProcessId(2), t(30), "m");
        s.record_send(ProcessId(1), t(500), "m");
        s.record_send(ProcessId(1), t(900), "m");
        s.finish(t(1000));
        // After t=31, only p1 sends.
        assert_eq!(s.quiescence_time(1), Some(t(31)));
        assert_eq!(s.senders_since(t(31)), vec![ProcessId(1)]);
        // After t=6, at most two send.
        assert_eq!(s.quiescence_time(2), Some(t(6)));
        // Everyone quiet: k = 3 ≥ number of senders.
        assert_eq!(s.quiescence_time(3), Some(Instant::ZERO));
    }

    #[test]
    fn windows_track_sender_sets() {
        let mut s = Stats::new(3, Duration::from_ticks(10));
        s.record_send(ProcessId(0), t(1), "m");
        s.record_send(ProcessId(1), t(2), "m");
        s.record_send(ProcessId(0), t(15), "m");
        s.finish(t(29));
        let w = s.windows();
        assert!(w.len() >= 2, "expected >= 2 windows, got {}", w.len());
        assert_eq!(w[0].sender_count, 2);
        assert_eq!(w[0].messages, 2);
        assert_eq!(w[0].sender_bits, 0b11);
        assert_eq!(w[1].sender_count, 1);
        assert_eq!(w[1].sender_bits, 0b01);
    }

    #[test]
    fn empty_run_quiesces_immediately() {
        let mut s = Stats::new(2, Duration::from_ticks(10));
        s.finish(t(10));
        assert_eq!(s.quiescence_time(1), Some(Instant::ZERO));
    }
}
