//! Per-link synchrony and reliability models.

use lls_primitives::{Duration, Instant};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::delay::DelayDist;

/// What happens to one message on a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFate {
    /// The message will be delivered at this (absolute) time.
    DeliverAt(Instant),
    /// The message is lost.
    Drop,
}

/// The behaviour of one unidirectional link, mirroring the paper's taxonomy.
///
/// * [`LinkModel::Timely`] — synchronous from the start: every message sent at
///   `t` is delivered by `t + delta`.
/// * [`LinkModel::EventuallyTimely`] — the paper's ♦-timely link: there are an
///   *unknown* bound `δ` and global stabilization time `GST` such that a
///   message sent at `t ≥ GST` is delivered by `t + δ`. Before GST the link
///   behaves like the given pre-GST lossy model (messages lost with some
///   probability, or delayed arbitrarily).
/// * [`LinkModel::FairLossy`] — no delay bound; each message is independently
///   lost with probability `loss < 1`. Realizes the fair-loss property
///   ("infinitely many sends ⇒ infinitely many deliveries") almost surely.
/// * [`LinkModel::LossyAsync`] — may lose *everything* (`loss` may be 1);
///   delivered messages take a heavy-tailed delay. No liveness guarantee.
/// * [`LinkModel::Dead`] — drops everything; a convenience extreme of
///   `LossyAsync`.
///
/// # Example
///
/// ```
/// use netsim::{LinkModel, LinkFate, DelayDist};
/// use lls_primitives::{Duration, Instant};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let link = LinkModel::timely(3);
/// match link.route(Instant::from_ticks(10), &mut rng) {
///     LinkFate::DeliverAt(t) => assert!(t <= Instant::from_ticks(13)),
///     LinkFate::Drop => unreachable!("timely links never drop"),
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LinkModel {
    /// Always timely with bound `delta` (delay sampled from `delay`, whose
    /// upper bound must be ≤ `delta`).
    Timely {
        /// Delay distribution; bounded.
        delay: DelayDist,
    },
    /// ♦-timely: timely with bound `delta` from `gst` on; lossy/slow before.
    EventuallyTimely {
        /// Global stabilization time for this link.
        gst: Instant,
        /// Post-GST delay distribution; bounded.
        delay: DelayDist,
        /// Pre-GST loss probability.
        pre_loss: f64,
        /// Pre-GST delay distribution (may be unbounded).
        pre_delay: DelayDist,
    },
    /// Fair lossy: per-message loss with probability `loss < 1`, unbounded
    /// delay distribution allowed.
    FairLossy {
        /// Per-message loss probability, in `[0, 1)`.
        loss: f64,
        /// Delay distribution for delivered messages.
        delay: DelayDist,
    },
    /// Lossy asynchronous: no guarantee at all. `loss` may be 1.
    LossyAsync {
        /// Per-message loss probability, in `[0, 1]`.
        loss: f64,
        /// Delay distribution for delivered messages.
        delay: DelayDist,
    },
    /// Drops every message.
    Dead,
    /// Adversarial deterministic blinker: repeats a cycle of `on` ticks
    /// (timely, delay ≤ `delta`) followed by `off` ticks (everything sent is
    /// dropped). Unlike random loss, the blink pattern is periodic, which
    /// defeats detectors whose timeouts do not grow: a frozen timeout larger
    /// than `on + off` never observes the link as timely, while an adaptive
    /// timeout eventually spans the off-phase. Not a ♦-timely link.
    Blink {
        /// Length of the delivering phase.
        on: Duration,
        /// Length of the dropping phase.
        off: Duration,
        /// Delay during the on-phase.
        delta: Duration,
    },
}

impl LinkModel {
    /// A timely link with constant delay `delta` ticks.
    pub fn timely(delta: u64) -> Self {
        LinkModel::Timely {
            delay: DelayDist::constant(delta),
        }
    }

    /// A ♦-timely link: before `gst`, loses `pre_loss` of messages and delays
    /// the rest with a heavy tail; from `gst` on, delivers within `delta`.
    ///
    /// # Panics
    ///
    /// Panics if `pre_loss` is not in `[0, 1]`.
    pub fn eventually_timely(gst: u64, delta: u64, pre_loss: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&pre_loss),
            "loss probability must be in [0, 1], got {pre_loss}"
        );
        LinkModel::EventuallyTimely {
            gst: Instant::from_ticks(gst),
            delay: DelayDist::uniform(1, delta.max(1)),
            pre_loss,
            pre_delay: DelayDist::heavy_tail(delta.max(1), delta.max(1), 0.8),
        }
    }

    /// A fair-lossy link losing each message with probability `loss`,
    /// delivering the rest with a heavy-tailed delay starting at `base_delay`.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not in `[0, 1)` — fair loss requires that
    /// infinitely many sends yield infinitely many deliveries.
    pub fn fair_lossy(loss: f64, base_delay: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&loss),
            "fair-lossy loss must be in [0, 1), got {loss}"
        );
        LinkModel::FairLossy {
            loss,
            delay: DelayDist::heavy_tail(base_delay.max(1), base_delay.max(1), 0.5),
        }
    }

    /// A deterministic blinking link: delivers (within `delta`) for `on`
    /// ticks, then drops everything for `off` ticks, repeating.
    ///
    /// # Panics
    ///
    /// Panics if `on` is zero (the link would be dead).
    pub fn blink(on: u64, off: u64, delta: u64) -> Self {
        assert!(on > 0, "blink link requires a positive on-phase");
        LinkModel::Blink {
            on: Duration::from_ticks(on),
            off: Duration::from_ticks(off),
            delta: Duration::from_ticks(delta.max(1)),
        }
    }

    /// A lossy asynchronous link (no guarantees).
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not in `[0, 1]`.
    pub fn lossy_async(loss: f64, base_delay: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&loss),
            "loss probability must be in [0, 1], got {loss}"
        );
        LinkModel::LossyAsync {
            loss,
            delay: DelayDist::heavy_tail(base_delay.max(1), base_delay.max(1), 0.8),
        }
    }

    /// Decides the fate of a message sent now.
    pub fn route<R: Rng + ?Sized>(&self, now: Instant, rng: &mut R) -> LinkFate {
        match *self {
            LinkModel::Timely { delay } => LinkFate::DeliverAt(now + delay.sample(rng)),
            LinkModel::EventuallyTimely {
                gst,
                delay,
                pre_loss,
                pre_delay,
            } => {
                if now >= gst {
                    LinkFate::DeliverAt(now + delay.sample(rng))
                } else if pre_loss >= 1.0 || rng.gen_bool(pre_loss.clamp(0.0, 1.0)) {
                    LinkFate::Drop
                } else {
                    LinkFate::DeliverAt(now + pre_delay.sample(rng))
                }
            }
            LinkModel::FairLossy { loss, delay } => {
                if rng.gen_bool(loss.clamp(0.0, 1.0)) {
                    LinkFate::Drop
                } else {
                    LinkFate::DeliverAt(now + delay.sample(rng))
                }
            }
            LinkModel::LossyAsync { loss, delay } => {
                if loss >= 1.0 || rng.gen_bool(loss.clamp(0.0, 1.0)) {
                    LinkFate::Drop
                } else {
                    LinkFate::DeliverAt(now + delay.sample(rng))
                }
            }
            LinkModel::Dead => LinkFate::Drop,
            LinkModel::Blink { on, off, delta } => {
                let cycle = on.ticks() + off.ticks();
                if cycle == 0 || now.ticks() % cycle < on.ticks() {
                    let d = if delta.ticks() == 0 {
                        Duration::from_ticks(1)
                    } else {
                        Duration::from_ticks(rng.gen_range(1..=delta.ticks()))
                    };
                    LinkFate::DeliverAt(now + d)
                } else {
                    LinkFate::Drop
                }
            }
        }
    }

    /// Returns `true` if this link is ♦-timely (or timely from the start):
    /// i.e. it satisfies the paper's timeliness property with *some* GST and
    /// `δ`. Used by topology validators to check that a configuration actually
    /// contains a ♦-source.
    pub fn is_eventually_timely(&self) -> bool {
        matches!(
            self,
            LinkModel::Timely { .. } | LinkModel::EventuallyTimely { .. }
        )
    }

    /// The delay bound `δ` this link honours after its GST, if any.
    pub fn delta(&self) -> Option<Duration> {
        match self {
            LinkModel::Timely { delay } => delay.upper_bound(),
            LinkModel::EventuallyTimely { delay, .. } => delay.upper_bound(),
            _ => None,
        }
    }

    /// The GST from which this link is timely, if it ever becomes timely.
    pub fn gst(&self) -> Option<Instant> {
        match self {
            LinkModel::Timely { .. } => Some(Instant::ZERO),
            LinkModel::EventuallyTimely { gst, .. } => Some(*gst),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn timely_always_delivers_within_delta() {
        let link = LinkModel::timely(5);
        let mut rng = rng();
        for t in 0..100 {
            match link.route(Instant::from_ticks(t), &mut rng) {
                LinkFate::DeliverAt(at) => {
                    assert!(at <= Instant::from_ticks(t + 5));
                    assert!(at >= Instant::from_ticks(t));
                }
                LinkFate::Drop => panic!("timely link dropped a message"),
            }
        }
    }

    #[test]
    fn eventually_timely_honours_gst() {
        let link = LinkModel::eventually_timely(1000, 4, 0.9);
        let mut rng = rng();
        // After GST: always delivered within delta.
        for t in 1000..1100 {
            match link.route(Instant::from_ticks(t), &mut rng) {
                LinkFate::DeliverAt(at) => assert!(at <= Instant::from_ticks(t + 4)),
                LinkFate::Drop => panic!("post-GST drop on ♦-timely link"),
            }
        }
        // Before GST: drops happen.
        let drops = (0..200)
            .filter(|_| matches!(link.route(Instant::from_ticks(1), &mut rng), LinkFate::Drop))
            .count();
        assert!(drops > 100, "expected many pre-GST drops, got {drops}");
    }

    #[test]
    fn fair_lossy_delivers_infinitely_often() {
        let link = LinkModel::fair_lossy(0.8, 2);
        let mut rng = rng();
        let delivered = (0..1000)
            .filter(|_| {
                matches!(
                    link.route(Instant::from_ticks(0), &mut rng),
                    LinkFate::DeliverAt(_)
                )
            })
            .count();
        // ~20% expected; the point is that it is neither 0 nor 100%.
        assert!(delivered > 100 && delivered < 400, "delivered={delivered}");
    }

    #[test]
    fn dead_and_total_loss_drop_everything() {
        let mut rng = rng();
        for _ in 0..100 {
            assert_eq!(
                LinkModel::Dead.route(Instant::ZERO, &mut rng),
                LinkFate::Drop
            );
            assert_eq!(
                LinkModel::lossy_async(1.0, 1).route(Instant::ZERO, &mut rng),
                LinkFate::Drop
            );
        }
    }

    #[test]
    fn classification_helpers() {
        assert!(LinkModel::timely(1).is_eventually_timely());
        assert!(LinkModel::eventually_timely(10, 2, 0.5).is_eventually_timely());
        assert!(!LinkModel::fair_lossy(0.1, 1).is_eventually_timely());
        assert!(!LinkModel::Dead.is_eventually_timely());
        assert_eq!(LinkModel::timely(3).delta(), Some(Duration::from_ticks(3)));
        assert_eq!(
            LinkModel::eventually_timely(10, 2, 0.5).gst(),
            Some(Instant::from_ticks(10))
        );
        assert_eq!(LinkModel::fair_lossy(0.1, 1).gst(), None);
    }

    #[test]
    #[should_panic(expected = "fair-lossy loss")]
    fn fair_lossy_rejects_total_loss() {
        let _ = LinkModel::fair_lossy(1.0, 1);
    }

    #[test]
    fn blink_delivers_in_on_phase_and_drops_in_off_phase() {
        let link = LinkModel::blink(10, 20, 2);
        let mut rng = rng();
        // Cycle length 30: [0,10) on, [10,30) off.
        for t in [0u64, 5, 9, 30, 35, 60] {
            match link.route(Instant::from_ticks(t), &mut rng) {
                LinkFate::DeliverAt(at) => assert!(at <= Instant::from_ticks(t + 2)),
                LinkFate::Drop => panic!("on-phase drop at t={t}"),
            }
        }
        for t in [10u64, 15, 29, 40, 59] {
            assert_eq!(
                link.route(Instant::from_ticks(t), &mut rng),
                LinkFate::Drop,
                "off-phase delivery at t={t}"
            );
        }
    }

    #[test]
    fn blink_is_not_eventually_timely() {
        assert!(!LinkModel::blink(5, 5, 1).is_eventually_timely());
        assert_eq!(LinkModel::blink(5, 5, 1).gst(), None);
    }

    #[test]
    #[should_panic(expected = "positive on-phase")]
    fn blink_rejects_zero_on_phase() {
        let _ = LinkModel::blink(0, 5, 1);
    }
}
