//! The discrete-event simulator driving [`Sm`] state machines.

use std::collections::HashMap;

use lls_primitives::{
    Ctx, Duration, Effects, Env, Instant, LamportClock, ProcessId, Send, Sm, TimerCmd, TimerId,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::event::{EventKind, EventQueue};
use crate::fault::FaultPlan;
use crate::link::LinkFate;
use crate::stats::Stats;
use crate::topology::Topology;
use crate::trace::{Trace, TraceKind};

/// One stamped delivery, recorded when the simulator runs with trace
/// clocks: the sender's Lamport stamp and the value the receiver's clock
/// merged to just before the handler ran. `merged > stamp` always — this
/// is the raw material for happens-before property tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CausalDelivery {
    /// Sender.
    pub from: ProcessId,
    /// Receiver.
    pub to: ProcessId,
    /// Sender's clock at send time.
    pub stamp: u64,
    /// Receiver's clock after the merge.
    pub merged: u64,
}

/// A timestamped protocol output recorded during a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputEvent<O> {
    /// When the output was emitted.
    pub at: Instant,
    /// Which process emitted it.
    pub process: ProcessId,
    /// The output value.
    pub output: O,
}

/// Configures and constructs a [`Simulator`].
///
/// # Example
///
/// See the [crate-level example](crate).
pub struct SimBuilder<S: Sm> {
    n: usize,
    seed: u64,
    topology: Option<Topology>,
    faults: FaultPlan,
    requests: Vec<(Instant, ProcessId, S::Request)>,
    net_changes: Vec<(Instant, NetChange)>,
    window: Duration,
    classifier: fn(&S::Msg) -> &'static str,
    output_classifier: fn(&S::Output) -> &'static str,
    trace_capacity: Option<usize>,
    clocks: Option<Vec<LamportClock>>,
}

#[derive(Debug, Clone)]
enum NetChange {
    Link(ProcessId, ProcessId, crate::LinkModel),
    Topo(Box<Topology>),
}

impl<S: Sm> std::fmt::Debug for SimBuilder<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimBuilder")
            .field("n", &self.n)
            .field("seed", &self.seed)
            .finish_non_exhaustive()
    }
}

fn default_classifier<M>(_: &M) -> &'static str {
    "msg"
}

fn default_output_classifier<O>(_: &O) -> &'static str {
    "output"
}

impl<S: Sm> SimBuilder<S> {
    /// Starts configuring a system of `n` processes.
    ///
    /// Defaults: seed 0, an all-timely topology with `δ = 1`, no faults, a
    /// stats window of 100 ticks.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "the model requires n > 1 processes, got {n}");
        SimBuilder {
            n,
            seed: 0,
            topology: None,
            faults: FaultPlan::new(n),
            requests: Vec::new(),
            net_changes: Vec::new(),
            window: Duration::from_ticks(100),
            classifier: default_classifier::<S::Msg>,
            output_classifier: default_output_classifier::<S::Output>,
            trace_capacity: None,
            clocks: None,
        }
    }

    /// Sets the RNG seed. Runs are a pure function of the full configuration
    /// including this seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the link topology.
    ///
    /// # Panics
    ///
    /// Panics at [`SimBuilder::build_with`] time if the topology size differs
    /// from `n`.
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Installs a full fault plan (replacing any crashes set so far).
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Schedules `p` to crash at `t`.
    pub fn crash_at(mut self, p: ProcessId, t: Instant) -> Self {
        self.faults.crash_at(p, t);
        self
    }

    /// Schedules `p` to boot at `t` instead of 0.
    pub fn start_at(mut self, p: ProcessId, t: Instant) -> Self {
        self.faults.start_at(p, t);
        self
    }

    /// Schedules an external request to `p` at `t`.
    pub fn request_at(mut self, t: Instant, p: ProcessId, req: S::Request) -> Self {
        self.requests.push((t, p, req));
        self
    }

    /// Schedules a link-model change at `t` (dynamic network schedule).
    pub fn set_link_at(
        mut self,
        t: Instant,
        from: ProcessId,
        to: ProcessId,
        model: crate::LinkModel,
    ) -> Self {
        self.net_changes.push((t, NetChange::Link(from, to, model)));
        self
    }

    /// Schedules a full topology replacement at `t` (e.g. to heal a
    /// partition by restoring the original matrix).
    pub fn set_topology_at(mut self, t: Instant, topology: Topology) -> Self {
        self.net_changes
            .push((t, NetChange::Topo(Box::new(topology))));
        self
    }

    /// Schedules a partition at `t`: every link between `group` and its
    /// complement (both directions) goes [`crate::LinkModel::Dead`]. Heal it
    /// later with [`SimBuilder::set_topology_at`].
    pub fn partition_at(mut self, t: Instant, group: &[ProcessId]) -> Self {
        for a in 0..self.n as u32 {
            for b in 0..self.n as u32 {
                let (pa, pb) = (ProcessId(a), ProcessId(b));
                if a != b && group.contains(&pa) != group.contains(&pb) {
                    self.net_changes
                        .push((t, NetChange::Link(pa, pb, crate::LinkModel::Dead)));
                }
            }
        }
        self
    }

    /// Installs per-process Lamport clocks (one handle per process, in id
    /// order): every send ticks the sender's clock and carries the stamp;
    /// every delivery merges it into the receiver's clock *before* the
    /// handler runs, and lands in [`Simulator::causal_log`]. Hand in the
    /// clock handles from `lls_obs::NodeRecorders::clocks()` so probe
    /// events share the same causal positions. Off by default (stamps stay
    /// 0, no log).
    ///
    /// # Panics
    ///
    /// Panics at [`SimBuilder::build_with`] time if the clock count differs
    /// from `n`.
    pub fn trace_clocks(mut self, clocks: Vec<LamportClock>) -> Self {
        self.clocks = Some(clocks);
        self
    }

    /// Enables structured trace recording, keeping up to `capacity` records
    /// (see [`crate::Trace`]). Off by default.
    pub fn record_trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }

    /// Sets the length of the statistics windows.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn stats_window(mut self, window: Duration) -> Self {
        assert!(window.ticks() > 0, "stats window must be positive");
        self.window = window;
        self
    }

    /// Installs a message classifier used for per-kind send counts.
    pub fn classify(mut self, f: fn(&S::Msg) -> &'static str) -> Self {
        self.classifier = f;
        self
    }

    /// Installs an output classifier: protocol outputs are recorded in the
    /// trace as [`TraceKind::Output`] under the label this returns
    /// (`"output"` if never set).
    pub fn classify_output(mut self, f: fn(&S::Output) -> &'static str) -> Self {
        self.output_classifier = f;
        self
    }

    /// Builds the simulator, constructing each process's state machine with
    /// `make` (called with that process's [`Env`], in id order).
    pub fn build_with(self, mut make: impl FnMut(&Env) -> S) -> Simulator<S> {
        let topology = self
            .topology
            .unwrap_or_else(|| Topology::all_timely(self.n, Duration::from_ticks(1)));
        assert_eq!(
            topology.n(),
            self.n,
            "topology size {} does not match n = {}",
            topology.n(),
            self.n
        );
        let mut queue = EventQueue::new();
        let mut nodes = Vec::with_capacity(self.n);
        for i in 0..self.n {
            let p = ProcessId(i as u32);
            let env = Env::new(p, self.n);
            nodes.push(Node {
                env,
                sm: make(&env),
                alive: true,
                started: false,
                timer_gens: HashMap::new(),
            });
            queue.push(self.faults.start_time(p), EventKind::Start(p));
            if let Some(t) = self.faults.crash_time(p) {
                queue.push(t, EventKind::Crash(p));
            }
        }
        for (t, p, req) in self.requests {
            queue.push(t, EventKind::Request { p, req });
        }
        for (t, change) in self.net_changes {
            match change {
                NetChange::Link(from, to, model) => {
                    queue.push(t, EventKind::SetLink { from, to, model });
                }
                NetChange::Topo(topo) => {
                    assert_eq!(topo.n(), self.n, "scheduled topology has wrong size");
                    queue.push(t, EventKind::SetTopology(topo));
                }
            }
        }
        if let Some(clocks) = &self.clocks {
            assert_eq!(
                clocks.len(),
                self.n,
                "trace clock count {} does not match n = {}",
                clocks.len(),
                self.n
            );
        }
        Simulator {
            nodes,
            queue,
            topology,
            rng: StdRng::seed_from_u64(self.seed),
            now: Instant::ZERO,
            stats: Stats::new(self.n, self.window),
            outputs: Vec::new(),
            classifier: self.classifier,
            output_classifier: self.output_classifier,
            fx: Effects::new(),
            trace: self.trace_capacity.map(Trace::new),
            clocks: self.clocks,
            causal_log: Vec::new(),
        }
    }
}

struct Node<S: Sm> {
    env: Env,
    sm: S,
    alive: bool,
    started: bool,
    timer_gens: HashMap<TimerId, u64>,
}

/// A deterministic discrete-event simulation of `n` state machines connected
/// by a [`Topology`] of modelled links.
pub struct Simulator<S: Sm> {
    nodes: Vec<Node<S>>,
    queue: EventQueue<S::Msg, S::Request>,
    topology: Topology,
    rng: StdRng,
    now: Instant,
    stats: Stats,
    outputs: Vec<OutputEvent<S::Output>>,
    classifier: fn(&S::Msg) -> &'static str,
    output_classifier: fn(&S::Output) -> &'static str,
    fx: Effects<S::Msg, S::Output>,
    trace: Option<Trace>,
    clocks: Option<Vec<LamportClock>>,
    causal_log: Vec<CausalDelivery>,
}

impl<S: Sm> std::fmt::Debug for Simulator<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("n", &self.nodes.len())
            .field("now", &self.now)
            .field("pending_events", &self.queue.len())
            .finish_non_exhaustive()
    }
}

impl<S: Sm> Simulator<S> {
    /// Current virtual time.
    pub fn now(&self) -> Instant {
        self.now
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    /// Immutable access to `p`'s state machine (for inspecting protocol state
    /// in tests and experiments).
    pub fn node(&self, p: ProcessId) -> &S {
        &self.nodes[p.as_usize()].sm
    }

    /// Returns `true` if `p` has not crashed.
    pub fn is_alive(&self, p: ProcessId) -> bool {
        self.nodes[p.as_usize()].alive
    }

    /// The topology the run uses.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// All protocol outputs recorded so far, in emission order.
    pub fn outputs(&self) -> &[OutputEvent<S::Output>] {
        &self.outputs
    }

    /// Run statistics. Windows are flushed up to the time of the last
    /// [`Simulator::run_until`] call.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The recorded trace, if [`SimBuilder::record_trace`] was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Every stamped delivery so far (empty unless
    /// [`SimBuilder::trace_clocks`] installed clocks): the send stamp and
    /// the receiver's merged clock, in delivery order.
    pub fn causal_log(&self) -> &[CausalDelivery] {
        &self.causal_log
    }

    /// The Lamport clock handle of `p`, when trace clocks are installed.
    pub fn clock(&self, p: ProcessId) -> Option<&LamportClock> {
        self.clocks.as_ref().map(|c| &c[p.as_usize()])
    }

    /// Crashes `p` immediately (crash-stop).
    pub fn crash_now(&mut self, p: ProcessId) {
        self.nodes[p.as_usize()].alive = false;
    }

    /// Kills `p` immediately, as a crash–*restart* fault: the process can
    /// later come back via [`Simulator::restart`]. All pending timers are
    /// invalidated (a rebooted process does not inherit its predecessor's
    /// alarms); messages in flight to `p` are dropped at delivery time, like
    /// any message to a dead process.
    pub fn kill(&mut self, p: ProcessId) {
        let node = &mut self.nodes[p.as_usize()];
        node.alive = false;
        // Invalidate every armed timer by bumping its generation.
        for gen in node.timer_gens.values_mut() {
            *gen += 1;
        }
        if let Some(tr) = &mut self.trace {
            tr.push(self.now, TraceKind::Crash(p));
        }
    }

    /// Restarts a killed `p` with a fresh state machine `sm` — typically one
    /// recovered from the same durable storage the pre-crash incarnation
    /// wrote (e.g. `Consensus::with_storage`), which is what makes the
    /// crash–restart fault model interesting. Runs `on_start` immediately at
    /// the current virtual time.
    ///
    /// # Panics
    ///
    /// Panics if `p` is still alive.
    pub fn restart(&mut self, p: ProcessId, sm: S) {
        let node = &mut self.nodes[p.as_usize()];
        assert!(!node.alive, "cannot restart {p}: it is alive");
        node.sm = sm;
        node.alive = true;
        node.started = true;
        if let Some(tr) = &mut self.trace {
            tr.push(self.now, TraceKind::Restart(p));
        }
        let node = &mut self.nodes[p.as_usize()];
        let mut ctx = Ctx::new(&node.env, self.now, &mut self.fx);
        node.sm.on_start(&mut ctx);
        self.drain(p);
    }

    /// Schedules an external request for `p` at `t` (must be ≥ now).
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the past.
    pub fn schedule_request(&mut self, t: Instant, p: ProcessId, req: S::Request) {
        assert!(t >= self.now, "cannot schedule a request in the past");
        self.queue.push(t, EventKind::Request { p, req });
    }

    /// Schedules a link-model change at `t ≥ now`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the past.
    pub fn schedule_link_change(
        &mut self,
        t: Instant,
        from: ProcessId,
        to: ProcessId,
        model: crate::LinkModel,
    ) {
        assert!(t >= self.now, "cannot schedule a link change in the past");
        self.queue.push(t, EventKind::SetLink { from, to, model });
    }

    /// Schedules a full topology replacement at `t ≥ now`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the past or the topology size differs.
    pub fn schedule_topology_change(&mut self, t: Instant, topology: Topology) {
        assert!(
            t >= self.now,
            "cannot schedule a topology change in the past"
        );
        assert_eq!(topology.n(), self.nodes.len(), "topology size change");
        self.queue
            .push(t, EventKind::SetTopology(Box::new(topology)));
    }

    /// Partitions the network immediately: all links crossing the boundary
    /// between `group` and its complement become [`crate::LinkModel::Dead`].
    /// Messages already in flight still arrive (they left before the cut).
    pub fn partition_now(&mut self, group: &[ProcessId]) {
        let n = self.nodes.len() as u32;
        for a in 0..n {
            for b in 0..n {
                let (pa, pb) = (ProcessId(a), ProcessId(b));
                if a != b && group.contains(&pa) != group.contains(&pb) {
                    self.topology.set_link(pa, pb, crate::LinkModel::Dead);
                }
            }
        }
    }

    /// Processes events until the queue is empty or the next event is after
    /// `deadline`; then advances the clock to `deadline`.
    pub fn run_until(&mut self, deadline: Instant) {
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        if deadline > self.now {
            self.now = deadline;
        }
        self.stats.finish(self.now);
    }

    /// Processes a single event. Returns `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "event queue went backwards");
        self.now = ev.at;
        match ev.kind {
            EventKind::Start(p) => {
                let node = &mut self.nodes[p.as_usize()];
                if node.alive && !node.started {
                    node.started = true;
                    if let Some(tr) = &mut self.trace {
                        tr.push(self.now, TraceKind::Start(p));
                    }
                    let mut ctx = Ctx::new(&node.env, self.now, &mut self.fx);
                    node.sm.on_start(&mut ctx);
                    self.drain(p);
                }
            }
            EventKind::Deliver {
                from,
                to,
                msg,
                stamp,
            } => {
                let node = &mut self.nodes[to.as_usize()];
                if node.alive && node.started {
                    self.stats.record_delivery(to);
                    if let Some(tr) = &mut self.trace {
                        tr.push(self.now, TraceKind::Deliver { from, to });
                    }
                    // Merge the sender's stamp *before* the handler runs,
                    // so every probe event it emits is causally after the
                    // send.
                    if let Some(clocks) = &self.clocks {
                        let merged = clocks[to.as_usize()].observe(stamp);
                        self.causal_log.push(CausalDelivery {
                            from,
                            to,
                            stamp,
                            merged,
                        });
                    }
                    let node = &mut self.nodes[to.as_usize()];
                    let mut ctx = Ctx::new(&node.env, self.now, &mut self.fx);
                    node.sm.on_message(&mut ctx, from, msg);
                    self.drain(to);
                } else {
                    self.stats.record_dead_drop(to);
                    if let Some(tr) = &mut self.trace {
                        tr.push(self.now, TraceKind::DeadDrop { to });
                    }
                }
            }
            EventKind::Timer { p, timer, gen } => {
                let node = &mut self.nodes[p.as_usize()];
                let current = node.timer_gens.get(&timer).copied().unwrap_or(0);
                if node.alive && node.started && gen == current {
                    if let Some(tr) = &mut self.trace {
                        tr.push(self.now, TraceKind::TimerFire { p, timer });
                    }
                    let mut ctx = Ctx::new(&node.env, self.now, &mut self.fx);
                    node.sm.on_timer(&mut ctx, timer);
                    self.drain(p);
                }
            }
            EventKind::Crash(p) => {
                self.nodes[p.as_usize()].alive = false;
                if let Some(tr) = &mut self.trace {
                    tr.push(self.now, TraceKind::Crash(p));
                }
            }
            EventKind::Request { p, req } => {
                let node = &mut self.nodes[p.as_usize()];
                if node.alive && node.started {
                    let mut ctx = Ctx::new(&node.env, self.now, &mut self.fx);
                    node.sm.on_request(&mut ctx, req);
                    self.drain(p);
                }
            }
            EventKind::SetLink { from, to, model } => {
                self.topology.set_link(from, to, model);
                if let Some(tr) = &mut self.trace {
                    tr.push(self.now, TraceKind::NetChange);
                }
            }
            EventKind::SetTopology(topo) => {
                assert_eq!(topo.n(), self.nodes.len(), "topology size change");
                self.topology = *topo;
                if let Some(tr) = &mut self.trace {
                    tr.push(self.now, TraceKind::NetChange);
                }
            }
        }
        true
    }

    /// Applies the effects buffered by the last state-machine step of `p`.
    fn drain(&mut self, p: ProcessId) {
        let fx = self.fx.take();
        for Send { to, msg } in fx.sends {
            let kind = (self.classifier)(&msg);
            self.stats.record_send(p, self.now, kind);
            if let Some(tr) = &mut self.trace {
                tr.push(
                    self.now,
                    TraceKind::Send {
                        from: p,
                        to,
                        msg_kind: kind,
                    },
                );
            }
            // Tick the sender's clock per send attempt: the stamp exists
            // even when the link then drops the message (Lamport clocks
            // count events, not successful deliveries).
            let stamp = self
                .clocks
                .as_ref()
                .map_or(0, |clocks| clocks[p.as_usize()].tick());
            match self.topology.link(p, to).route(self.now, &mut self.rng) {
                LinkFate::DeliverAt(at) => {
                    self.queue.push(
                        at,
                        EventKind::Deliver {
                            from: p,
                            to,
                            msg,
                            stamp,
                        },
                    );
                }
                LinkFate::Drop => {
                    self.stats.record_link_drop(p);
                    if let Some(tr) = &mut self.trace {
                        tr.push(self.now, TraceKind::LinkDrop { from: p, to });
                    }
                }
            }
        }
        for cmd in fx.timers {
            let node = &mut self.nodes[p.as_usize()];
            match cmd {
                TimerCmd::Set { timer, after } => {
                    let gen = node.timer_gens.entry(timer).or_insert(0);
                    *gen += 1;
                    let gen = *gen;
                    self.queue
                        .push(self.now + after, EventKind::Timer { p, timer, gen });
                }
                TimerCmd::Cancel { timer } => {
                    *node.timer_gens.entry(timer).or_insert(0) += 1;
                }
            }
        }
        for output in fx.outputs {
            if let Some(tr) = &mut self.trace {
                tr.push(
                    self.now,
                    TraceKind::Output {
                        p,
                        label: (self.output_classifier)(&output),
                    },
                );
            }
            self.outputs.push(OutputEvent {
                at: self.now,
                process: p,
                output,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lls_primitives::Ctx;

    /// Test machine: broadcasts a counter every `PERIOD`, records received
    /// values as outputs.
    #[derive(Debug)]
    struct Beacon {
        count: u64,
    }

    const TICK: TimerId = TimerId(0);
    const PERIOD: Duration = Duration::from_ticks(10);

    impl Sm for Beacon {
        type Msg = u64;
        type Output = u64;
        type Request = u64;

        fn on_start(&mut self, ctx: &mut Ctx<'_, u64, u64>) {
            ctx.set_timer(TICK, PERIOD);
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, u64, u64>, _from: ProcessId, msg: u64) {
            ctx.output(msg);
        }

        fn on_timer(&mut self, ctx: &mut Ctx<'_, u64, u64>, timer: TimerId) {
            assert_eq!(timer, TICK);
            self.count += 1;
            ctx.broadcast(self.count);
            ctx.set_timer(TICK, PERIOD);
        }

        fn on_request(&mut self, ctx: &mut Ctx<'_, u64, u64>, req: u64) {
            ctx.output(req + 1000);
        }
    }

    fn beacon_sim(n: usize) -> SimBuilder<Beacon> {
        SimBuilder::new(n)
    }

    #[test]
    fn timers_fire_periodically() {
        let mut sim = beacon_sim(2).build_with(|_| Beacon { count: 0 });
        sim.run_until(Instant::from_ticks(100));
        // Each node ticks at t=10..=100 (10 times); beacons reach the peer
        // one tick later, so the t=100 beacon is still in flight.
        assert_eq!(sim.node(ProcessId(0)).count, 10);
        assert_eq!(sim.stats().sent_by(ProcessId(0)), 10);
        assert_eq!(sim.stats().delivered_to(ProcessId(1)), 9);
    }

    #[test]
    fn trace_clocks_stamp_every_delivery() {
        let clocks: Vec<LamportClock> = (0..2).map(LamportClock::new).collect();
        let mut sim = beacon_sim(2)
            .trace_clocks(clocks.clone())
            .build_with(|_| Beacon { count: 0 });
        sim.run_until(Instant::from_ticks(100));
        let log = sim.causal_log();
        assert!(!log.is_empty(), "stamped deliveries were recorded");
        for d in log {
            assert!(
                d.merged > d.stamp,
                "receive clock {} not after send clock {} ({} -> {})",
                d.merged,
                d.stamp,
                d.from,
                d.to
            );
        }
        // Stamps from one sender are strictly monotone (its clock only
        // moves forward).
        for p in [ProcessId(0), ProcessId(1)] {
            let stamps: Vec<u64> = log
                .iter()
                .filter(|d| d.from == p)
                .map(|d| d.stamp)
                .collect();
            assert!(stamps.windows(2).all(|w| w[1] > w[0]), "{p}: {stamps:?}");
            assert!(clocks[p.as_usize()].now() > 0);
        }
        // Without clocks the log stays empty and stamps stay 0.
        let mut plain = beacon_sim(2).build_with(|_| Beacon { count: 0 });
        plain.run_until(Instant::from_ticks(50));
        assert!(plain.causal_log().is_empty());
        assert!(plain.clock(ProcessId(0)).is_none());
    }

    #[test]
    fn crash_stops_all_activity() {
        let mut sim = beacon_sim(2)
            .crash_at(ProcessId(0), Instant::from_ticks(35))
            .build_with(|_| Beacon { count: 0 });
        sim.run_until(Instant::from_ticks(200));
        // p0 ticked at 10,20,30 then crashed.
        assert_eq!(sim.stats().sent_by(ProcessId(0)), 3);
        assert!(!sim.is_alive(ProcessId(0)));
        // Messages to the dead p0 are dropped at delivery.
        assert!(sim.stats().dead_drops_to(ProcessId(0)) > 0);
    }

    #[test]
    fn staggered_start_delays_first_tick() {
        let mut sim = beacon_sim(2)
            .start_at(ProcessId(1), Instant::from_ticks(50))
            .build_with(|_| Beacon { count: 0 });
        sim.run_until(Instant::from_ticks(100));
        assert_eq!(sim.node(ProcessId(1)).count, 5); // ticks at 60..=100
    }

    #[test]
    fn requests_are_delivered_to_live_started_nodes() {
        let mut sim = beacon_sim(2)
            .request_at(Instant::from_ticks(5), ProcessId(0), 7)
            .build_with(|_| Beacon { count: 0 });
        sim.run_until(Instant::from_ticks(20));
        assert!(sim
            .outputs()
            .iter()
            .any(|e| e.process == ProcessId(0) && e.output == 1007));
    }

    #[test]
    fn same_seed_same_trace_different_seed_differs() {
        let run = |seed: u64| {
            let mut sim = SimBuilder::<Beacon>::new(3)
                .seed(seed)
                .topology(crate::Topology::fair_lossy_mesh(3, 0.5, 3))
                .build_with(|_| Beacon { count: 0 });
            sim.run_until(Instant::from_ticks(500));
            let outs: Vec<(u64, u32, u64)> = sim
                .outputs()
                .iter()
                .map(|e| (e.at.ticks(), e.process.0, e.output))
                .collect();
            (outs, sim.stats().total_sent())
        };
        let (a1, s1) = run(7);
        let (a2, s2) = run(7);
        assert_eq!(a1, a2);
        assert_eq!(s1, s2);
        let (b1, _) = run(8);
        assert_ne!(a1, b1, "different seeds produced identical lossy traces");
    }

    #[test]
    fn timer_reset_semantics_discard_old_deadline() {
        /// Machine: arms timer at 10, re-arms at 5 on first message; expiry
        /// outputs 1.
        #[derive(Debug)]
        struct Rearm;
        impl Sm for Rearm {
            type Msg = ();
            type Output = u64;
            type Request = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, (), u64>) {
                if ctx.id() == ProcessId(0) {
                    ctx.set_timer(TICK, Duration::from_ticks(10));
                } else {
                    ctx.send(ProcessId(0), ());
                }
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_, (), u64>, _f: ProcessId, _m: ()) {
                ctx.set_timer(TICK, Duration::from_ticks(50));
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_, (), u64>, _t: TimerId) {
                ctx.output(1);
            }
        }
        let mut sim = SimBuilder::<Rearm>::new(2).build_with(|_| Rearm);
        sim.run_until(Instant::from_ticks(30));
        // Message at t=1 re-armed the timer to t=51: no expiry by t=30.
        assert!(sim.outputs().is_empty());
        sim.run_until(Instant::from_ticks(60));
        let fires: Vec<_> = sim.outputs().iter().map(|e| e.at.ticks()).collect();
        assert_eq!(fires, vec![51]);
    }

    #[test]
    fn messages_to_unstarted_nodes_are_dropped() {
        let mut sim = beacon_sim(2)
            .start_at(ProcessId(1), Instant::from_ticks(1000))
            .build_with(|_| Beacon { count: 0 });
        sim.run_until(Instant::from_ticks(100));
        assert_eq!(sim.stats().delivered_to(ProcessId(1)), 0);
        assert!(sim.stats().dead_drops_to(ProcessId(1)) > 0);
    }

    #[test]
    fn scheduled_partition_cuts_traffic_and_heal_restores_it() {
        let topo = crate::Topology::all_timely(2, Duration::from_ticks(1));
        let mut sim = SimBuilder::<Beacon>::new(2)
            .topology(topo.clone())
            .partition_at(Instant::from_ticks(50), &[ProcessId(0)])
            .set_topology_at(Instant::from_ticks(150), topo)
            .build_with(|_| Beacon { count: 0 });
        sim.run_until(Instant::from_ticks(50));
        let delivered_before = sim.stats().delivered_to(ProcessId(1));
        assert!(delivered_before > 0);
        sim.run_until(Instant::from_ticks(150));
        // During the partition, nothing crosses (in-flight messages from
        // t<=50 may still land at t=51).
        let during = sim.stats().delivered_to(ProcessId(1)) - delivered_before;
        assert!(during <= 1, "partition leaked {during} messages");
        assert!(sim.stats().link_drops_from(ProcessId(0)) > 0);
        sim.run_until(Instant::from_ticks(300));
        assert!(
            sim.stats().delivered_to(ProcessId(1)) > delivered_before + 5,
            "heal did not restore traffic"
        );
    }

    #[test]
    fn runtime_link_change_takes_effect() {
        let mut sim = SimBuilder::<Beacon>::new(2).build_with(|_| Beacon { count: 0 });
        sim.run_until(Instant::from_ticks(30));
        sim.schedule_link_change(
            Instant::from_ticks(31),
            ProcessId(0),
            ProcessId(1),
            crate::LinkModel::Dead,
        );
        sim.run_until(Instant::from_ticks(100));
        // p0's beacons stop arriving, p1's keep flowing.
        assert!(sim.stats().link_drops_from(ProcessId(0)) > 0);
        assert_eq!(sim.stats().link_drops_from(ProcessId(1)), 0);
    }

    #[test]
    fn partition_now_is_immediate() {
        let mut sim = SimBuilder::<Beacon>::new(3).build_with(|_| Beacon { count: 0 });
        sim.run_until(Instant::from_ticks(20));
        sim.partition_now(&[ProcessId(0)]);
        let before = sim.stats().delivered_to(ProcessId(0));
        sim.run_until(Instant::from_ticks(200));
        // Only in-flight messages may still land.
        assert!(sim.stats().delivered_to(ProcessId(0)) <= before + 2);
    }

    #[test]
    fn trace_recording_captures_the_run() {
        let mut sim = beacon_sim(2)
            .record_trace(1_000)
            .crash_at(ProcessId(1), Instant::from_ticks(25))
            .build_with(|_| Beacon { count: 0 });
        sim.run_until(Instant::from_ticks(60));
        let trace = sim.trace().expect("recording enabled");
        let kinds: Vec<&str> = trace
            .records()
            .iter()
            .map(|r| match r.kind {
                crate::TraceKind::Start(_) => "start",
                crate::TraceKind::Crash(_) => "crash",
                crate::TraceKind::Send { .. } => "send",
                crate::TraceKind::Deliver { .. } => "deliver",
                crate::TraceKind::DeadDrop { .. } => "deaddrop",
                crate::TraceKind::TimerFire { .. } => "timer",
                _ => "other",
            })
            .collect();
        for expected in ["start", "crash", "send", "deliver", "deaddrop", "timer"] {
            assert!(kinds.contains(&expected), "missing {expected}: {kinds:?}");
        }
        // Disabled by default.
        let mut quiet = beacon_sim(2).build_with(|_| Beacon { count: 0 });
        quiet.run_until(Instant::from_ticks(10));
        assert!(quiet.trace().is_none());
    }

    #[test]
    fn kill_then_restart_resumes_with_fresh_state_and_no_stale_timers() {
        let mut sim = beacon_sim(2).build_with(|_| Beacon { count: 0 });
        sim.run_until(Instant::from_ticks(35));
        assert_eq!(sim.node(ProcessId(0)).count, 3);
        sim.kill(ProcessId(0));
        assert!(!sim.is_alive(ProcessId(0)));
        sim.run_until(Instant::from_ticks(100));
        // Dead: no further ticks.
        assert_eq!(sim.stats().sent_by(ProcessId(0)), 3);
        sim.restart(ProcessId(0), Beacon { count: 0 });
        assert!(sim.is_alive(ProcessId(0)));
        sim.run_until(Instant::from_ticks(165));
        // Restarted at t=100 with a fresh machine: ticks at 110..=160.
        assert_eq!(sim.node(ProcessId(0)).count, 6);
        assert_eq!(sim.stats().sent_by(ProcessId(0)), 9);
    }

    #[test]
    fn classifier_buckets_sends() {
        let mut sim = beacon_sim(2)
            .classify(|m| if *m % 2 == 0 { "even" } else { "odd" })
            .build_with(|_| Beacon { count: 0 });
        sim.run_until(Instant::from_ticks(40));
        let k = sim.stats().kind_counts();
        assert_eq!(k["odd"], 4); // counts 1 and 3 from each of 2 nodes
        assert_eq!(k["even"], 4); // counts 2 and 4
    }
}
