//! Lock-light metrics: atomic counters, gauges, and fixed-bucket log-scale
//! histograms behind one [`Registry`].
//!
//! The hot path (bumping a counter, recording a latency) is a relaxed
//! atomic operation on a pre-registered handle — no lock, no allocation.
//! The only mutex in the module guards the name→metric map, taken at
//! registration and exposition time only. The registry renders to both
//! Prometheus text exposition and a JSON snapshot, so the same numbers feed
//! scrapes, `BENCH_E*.json` artifacts, and in-test assertions.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: bucket `i` counts values `v` with
/// `2^(i-1) < v ≤ 2^i` (bucket 0 counts `v ≤ 1`), covering the full `u64`
/// range in 64 fixed log-scale buckets.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing counter. Cheap to clone (shared handle).
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed value. Cheap to clone (shared handle).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Index of the log-scale bucket that counts `v`: the position of its
/// highest set bit, so bucket `i` has upper bound `2^i` (bucket 0 holds
/// 0 and 1).
#[inline]
fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        ((63 - (v - 1).leading_zeros() + 1) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Upper (inclusive) bound of bucket `i`.
#[inline]
fn bucket_bound(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        1u64 << i
    }
}

/// A fixed-bucket log-scale histogram for latency-like values. Recording is
/// two relaxed atomic adds; no lock, no allocation. Cheap to clone (shared
/// handle).
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Arc<[AtomicU64; HISTOGRAM_BUCKETS]>,
    count: Arc<AtomicU64>,
    sum: Arc<AtomicU64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: Arc::new(std::array::from_fn(|_| AtomicU64::new(0))),
            count: Arc::new(AtomicU64::new(0)),
            sum: Arc::new(AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Records one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    /// Folds a frozen distribution into this histogram (element-wise add) —
    /// how a shared registry absorbs per-shard histograms into one family.
    pub fn absorb(&self, snap: &HistogramSnapshot) {
        for (i, &c) in snap.buckets.iter().enumerate() {
            if c > 0 {
                self.buckets[i].fetch_add(c, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
    }

    /// Interpolated `q`-quantile of the live distribution — the estimator
    /// experiments and the watchdog use instead of hand-rolling percentile
    /// math. See [`HistogramSnapshot::quantile_interpolated`].
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.snapshot().quantile_interpolated(q)
    }
}

/// A frozen copy of a [`Histogram`]'s distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts; bucket `i` holds values in `(2^(i-1), 2^i]`
    /// (bucket 0 holds 0 and 1).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total number of recorded values.
    pub count: u64,
    /// Sum of recorded values (wrapping on overflow is acceptable for
    /// reporting).
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Element-wise sum with another snapshot.
    pub fn merge(self, other: HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i] + other.buckets[i]),
            count: self.count + other.count,
            sum: self.sum + other.sum,
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile (`0.0 ≤ q ≤
    /// 1.0`), or `None` when empty. Log-bucketed, so this is the value's
    /// power-of-two ceiling — the resolution latency reporting needs.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_bound(i));
            }
        }
        Some(u64::MAX)
    }

    /// Mean of recorded values, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Interpolated `q`-quantile (`0.0 ≤ q ≤ 1.0`), or `None` when empty.
    ///
    /// Unlike [`HistogramSnapshot::quantile`] (which reports the containing
    /// bucket's power-of-two ceiling — up to 2× above the true value), this
    /// interpolates the quantile's rank linearly *within* its log2 bucket,
    /// assuming values spread uniformly across the bucket span. For smooth
    /// distributions the estimate lands well inside the bucket instead of
    /// at its edge, which is what per-window p50/p99 timeline frames need
    /// to be comparable across windows.
    pub fn quantile_interpolated(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).max(1e-12);
        let mut seen = 0.0f64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = seen + c as f64;
            if next >= rank {
                let lo = if i == 0 { 0 } else { bucket_bound(i - 1) } as f64;
                let hi = bucket_bound(i) as f64;
                let frac = ((rank - seen) / c as f64).clamp(0.0, 1.0);
                return Some(lo + frac * (hi - lo));
            }
            seen = next;
        }
        Some(bucket_bound(HISTOGRAM_BUCKETS - 1) as f64)
    }
}

/// One registered metric (the registry's internal table entry).
#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// The unified metrics registry: one name → metric table shared by every
/// producer (probes, substrate stat exports, experiments).
///
/// Metric names should match `[a-z_][a-z0-9_]*` by convention; the
/// Prometheus renderer sanitises any stragglers (invalid characters become
/// `_`, a leading digit gains a `_` prefix) so the exposition stays
/// parseable no matter what a producer registered.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
    help: Mutex<BTreeMap<String, String>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns (registering on first use) the counter named `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type.
    pub fn counter(&self, name: &str) -> Counter {
        match self.get_or_insert(name, || Metric::Counter(Counter::default())) {
            Metric::Counter(c) => c,
            other => panic!("metric {name} is a {}, not a counter", kind_of(&other)),
        }
    }

    /// Returns (registering on first use) the gauge named `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.get_or_insert(name, || Metric::Gauge(Gauge::default())) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name} is a {}, not a gauge", kind_of(&other)),
        }
    }

    /// Returns (registering on first use) the histogram named `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type.
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.get_or_insert(name, || Metric::Histogram(Histogram::default())) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name} is a {}, not a histogram", kind_of(&other)),
        }
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut table = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        table.entry(name.to_owned()).or_insert_with(make).clone()
    }

    /// Current value of the counter named `name` (0 if absent) — the
    /// convenient form for steady-state delta assertions.
    pub fn counter_value(&self, name: &str) -> u64 {
        let table = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        match table.get(name) {
            Some(Metric::Counter(c)) => c.get(),
            _ => 0,
        }
    }

    /// Attaches Prometheus `# HELP` text to the metric named `name`
    /// (registered or not yet). Metrics without help text render a
    /// generated placeholder so every family still carries a HELP line.
    pub fn describe(&self, name: &str, help: &str) {
        let mut table = self.help.lock().unwrap_or_else(|e| e.into_inner());
        table.insert(name.to_owned(), help.to_owned());
    }

    /// Renders every metric in Prometheus text exposition format: each
    /// family gets `# HELP` and `# TYPE` lines, metric names are sanitised
    /// to the exposition charset, and help/label text is escaped per the
    /// exposition-format rules (`\\`, `\n`, and `\"` inside label values).
    pub fn render_prometheus(&self) -> String {
        let table = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        let helps = self.help.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        for (name, metric) in table.iter() {
            let fam = sanitize_metric_name(name);
            let help = helps
                .get(name)
                .cloned()
                .unwrap_or_else(|| format!("{} {}", kind_of(metric), name));
            out.push_str(&format!("# HELP {fam} {}\n", escape_help(&help)));
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("# TYPE {fam} counter\n{fam} {}\n", c.get()));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("# TYPE {fam} gauge\n{fam} {}\n", g.get()));
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    out.push_str(&format!("# TYPE {fam} histogram\n"));
                    let mut cumulative = 0u64;
                    for (i, &c) in snap.buckets.iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        cumulative += c;
                        out.push_str(&format!(
                            "{fam}_bucket{{le=\"{}\"}} {cumulative}\n",
                            escape_label_value(&bucket_bound(i).to_string())
                        ));
                    }
                    out.push_str(&format!(
                        "{fam}_bucket{{le=\"+Inf\"}} {}\n{fam}_sum {}\n{fam}_count {}\n",
                        snap.count, snap.sum, snap.count
                    ));
                }
            }
        }
        out
    }

    /// Renders every metric as one JSON object: counters and gauges as
    /// numbers, histograms as `{count, sum, buckets: [[le, n], ...]}`.
    /// Hand-rolled (names are identifier-like, values numeric — nothing
    /// needs escaping).
    pub fn snapshot_json(&self) -> String {
        let table = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        let mut parts = Vec::new();
        for (name, metric) in table.iter() {
            match metric {
                Metric::Counter(c) => parts.push(format!("\"{name}\": {}", c.get())),
                Metric::Gauge(g) => parts.push(format!("\"{name}\": {}", g.get())),
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    let buckets: Vec<String> = snap
                        .buckets
                        .iter()
                        .enumerate()
                        .filter(|(_, &c)| c > 0)
                        .map(|(i, &c)| format!("[{}, {c}]", bucket_bound(i)))
                        .collect();
                    parts.push(format!(
                        "\"{name}\": {{\"count\": {}, \"sum\": {}, \"buckets\": [{}]}}",
                        snap.count,
                        snap.sum,
                        buckets.join(", ")
                    ));
                }
            }
        }
        format!("{{{}}}", parts.join(", "))
    }

    /// A point-in-time structured copy of every metric — the form the
    /// timeline sampler diffs frame-to-frame. Counters and gauges copy
    /// their values; histograms freeze their full distributions.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let table = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        let mut snap = RegistrySnapshot::default();
        for (name, metric) in table.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }

    /// Folds every metric of `other` into this registry under
    /// `{prefix}{name}`: counters and gauges add their current values,
    /// histograms absorb their distributions, and help text is carried
    /// over. Used by the shard plane to compose per-shard registries into
    /// one scrape body.
    ///
    /// # Panics
    ///
    /// Panics if a prefixed name is already registered here as a different
    /// metric type.
    pub fn absorb_prefixed(&self, prefix: &str, other: &Registry) {
        // Copy the entries out (handles are Arc-shared, so values stay
        // live) before touching our own lock: `self` and `other` may be
        // the same registry.
        let entries: Vec<(String, Metric)> = {
            let table = other.metrics.lock().unwrap_or_else(|e| e.into_inner());
            table.iter().map(|(n, m)| (n.clone(), m.clone())).collect()
        };
        let helps: Vec<(String, String)> = {
            let table = other.help.lock().unwrap_or_else(|e| e.into_inner());
            table.iter().map(|(n, h)| (n.clone(), h.clone())).collect()
        };
        for (name, metric) in entries {
            let target = format!("{prefix}{name}");
            match metric {
                Metric::Counter(c) => self.counter(&target).add(c.get()),
                Metric::Gauge(g) => self.gauge(&target).add(g.get()),
                Metric::Histogram(h) => self.histogram(&target).absorb(&h.snapshot()),
            }
        }
        for (name, help) in helps {
            self.describe(&format!("{prefix}{name}"), &help);
        }
    }
}

/// A structured point-in-time copy of a whole [`Registry`], keyed by metric
/// name. Produced by [`Registry::snapshot`]; the timeline sampler keeps the
/// previous frame's snapshot and subtracts to get per-window deltas.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Gauge name → value.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram name → frozen distribution.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Composes per-shard registries into one: every metric of shard `id`
/// appears under a `shard{id}_` prefix, **and** contributes to an
/// unprefixed cross-shard sum — so one `/metrics` scrape shows both the
/// per-shard breakdown and the node-level aggregate.
pub fn aggregate_shard_registries<'a>(
    per_shard: impl IntoIterator<Item = (u32, &'a Registry)>,
) -> Registry {
    let agg = Registry::new();
    for (id, reg) in per_shard {
        agg.absorb_prefixed(&format!("shard{id}_"), reg);
        agg.absorb_prefixed("", reg);
    }
    agg
}

fn kind_of(m: &Metric) -> &'static str {
    match m {
        Metric::Counter(_) => "counter",
        Metric::Gauge(_) => "gauge",
        Metric::Histogram(_) => "histogram",
    }
}

/// Maps a registered name onto the Prometheus metric-name charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): invalid characters become `_`, and a name
/// starting with a digit gains a leading `_`.
fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, ch) in name.chars().enumerate() {
        let valid = ch.is_ascii_alphabetic() || ch == '_' || ch == ':' || ch.is_ascii_digit();
        if i == 0 && ch.is_ascii_digit() {
            out.push('_');
        }
        out.push(if valid { ch } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes HELP text per the exposition format: `\` → `\\`, newline → `\n`.
fn escape_help(text: &str) -> String {
    text.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value per the exposition format: `\` → `\\`, `"` → `\"`,
/// newline → `\n`.
fn escape_label_value(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // Bucket 0 holds 0 and 1; bucket i holds (2^(i-1), 2^i].
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(8), 3);
        assert_eq!(bucket_index(9), 4);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(1025), 11);
        assert_eq!(bucket_index(u64::MAX), 63);
        // Every value lands in the bucket whose bound is its po2 ceiling.
        for v in [0u64, 1, 2, 3, 7, 16, 100, 1 << 40] {
            let i = bucket_index(v);
            assert!(v <= bucket_bound(i), "v={v} above bound of bucket {i}");
            if i > 0 {
                assert!(v > bucket_bound(i - 1), "v={v} fits a lower bucket");
            }
        }
    }

    #[test]
    fn histogram_records_and_quantiles() {
        let h = Histogram::default();
        for v in [1u64, 2, 4, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1107);
        assert_eq!(s.quantile(0.0), Some(1));
        // p50 = 3rd of 5 values = 4 → bound 4.
        assert_eq!(s.quantile(0.5), Some(4));
        // p100 = 1000 → next power of two, 1024.
        assert_eq!(s.quantile(1.0), Some(1024));
        assert_eq!(s.mean(), Some(1107.0 / 5.0));
        assert_eq!(HistogramSnapshot::default().quantile(0.5), None);
    }

    #[test]
    fn interpolated_quantile_on_known_distributions() {
        // Uniform 1..=1000: the true p50 is 500, p90 is 900. The bucket
        // ceiling estimator can only answer 512 / 1024; interpolation must
        // land within one bucket's span of the truth.
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        let p50 = s.quantile_interpolated(0.5).unwrap();
        assert!((300.0..=520.0).contains(&p50), "p50={p50}");
        let p90 = s.quantile_interpolated(0.9).unwrap();
        assert!((700.0..=1024.0).contains(&p90), "p90={p90}");
        // Interpolation beats the bucket-bound estimator on p90: the
        // ceiling answer is 1024, > 13% high; interpolation stays closer.
        assert!((p90 - 900.0).abs() < (1024.0_f64 - 900.0).abs());
        // Extremes pin to the distribution's support.
        assert!(s.quantile_interpolated(0.0).unwrap() <= 1.0);
        assert!(s.quantile_interpolated(1.0).unwrap() <= 1024.0);
        // Degenerate distribution: every value in one bucket interpolates
        // inside that bucket.
        let d = Histogram::default();
        for _ in 0..100 {
            d.record(6); // bucket (4, 8]
        }
        let p = d.quantile(0.5).unwrap();
        assert!((4.0..=8.0).contains(&p), "p={p}");
        // Empty histogram has no quantiles.
        assert_eq!(Histogram::default().quantile(0.99), None);
        assert_eq!(
            HistogramSnapshot::default().quantile_interpolated(0.5),
            None
        );
    }

    #[test]
    fn interpolated_quantile_is_monotone_in_q() {
        let h = Histogram::default();
        for v in [1u64, 3, 3, 7, 20, 90, 400, 5000, 5000, 100_000] {
            h.record(v);
        }
        let s = h.snapshot();
        let mut last = 0.0f64;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = s.quantile_interpolated(q).unwrap();
            assert!(
                v >= last,
                "quantile must be monotone: q={q} v={v} last={last}"
            );
            last = v;
        }
    }

    #[test]
    fn structured_snapshot_copies_every_metric() {
        let r = Registry::new();
        r.counter("a_total").add(3);
        r.gauge("b").set(-2);
        r.histogram("c").record(9);
        let snap = r.snapshot();
        assert_eq!(snap.counters.get("a_total"), Some(&3));
        assert_eq!(snap.gauges.get("b"), Some(&-2));
        assert_eq!(snap.histograms.get("c").unwrap().count, 1);
        // The snapshot is frozen: later mutation does not alter it.
        r.counter("a_total").add(10);
        assert_eq!(snap.counters.get("a_total"), Some(&3));
    }

    #[test]
    fn histogram_merge_is_elementwise() {
        let a = Histogram::default();
        let b = Histogram::default();
        a.record(3);
        a.record(900);
        b.record(3);
        let m = a.snapshot().merge(b.snapshot());
        assert_eq!(m.count, 3);
        assert_eq!(m.sum, 906);
        assert_eq!(m.buckets[bucket_index(3)], 2);
        assert_eq!(m.buckets[bucket_index(900)], 1);
    }

    #[test]
    fn registry_shares_handles_and_renders() {
        let r = Registry::new();
        let c1 = r.counter("elections_total");
        let c2 = r.counter("elections_total");
        c1.inc();
        c2.add(2);
        assert_eq!(r.counter_value("elections_total"), 3);
        let g = r.gauge("current_leader");
        g.set(4);
        r.histogram("latency_ticks").record(5);
        let prom = r.render_prometheus();
        assert!(prom.contains("# TYPE elections_total counter"));
        assert!(prom.contains("elections_total 3"));
        assert!(prom.contains("current_leader 4"));
        assert!(prom.contains("latency_ticks_bucket{le=\"8\"} 1"));
        assert!(prom.contains("latency_ticks_count 1"));
        let json = r.snapshot_json();
        assert!(json.contains("\"elections_total\": 3"));
        assert!(json.contains("\"latency_ticks\": {\"count\": 1, \"sum\": 5"));
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn type_confusion_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    /// Conformance with the Prometheus text exposition format: every family
    /// carries `# HELP` then `# TYPE`, names are sanitised to the legal
    /// charset, help text is escaped, and histogram `le` buckets are
    /// cumulative and capped by `+Inf`.
    #[test]
    fn prometheus_exposition_conformance() {
        let r = Registry::new();
        r.counter("elections_total").inc();
        r.describe("elections_total", "Total elections observed");
        r.describe("weird", "line one\nline two \\ backslash");
        r.gauge("weird").set(-3);
        // A hostile name: spaces and a leading digit must be sanitised.
        r.counter("9bad name-metric").add(4);
        r.histogram("lat").record(3);
        r.histogram("lat").record(5);

        let prom = r.render_prometheus();
        let lines: Vec<&str> = prom.lines().collect();

        // HELP precedes TYPE precedes samples, per family.
        let help_idx = lines
            .iter()
            .position(|l| *l == "# HELP elections_total Total elections observed")
            .expect("explicit help text rendered");
        assert_eq!(lines[help_idx + 1], "# TYPE elections_total counter");
        assert_eq!(lines[help_idx + 2], "elections_total 1");

        // Metrics without describe() still get a HELP line.
        assert!(prom.contains("# HELP lat histogram lat"));

        // Help escaping: literal newline and backslash survive as \n, \\.
        assert!(prom.contains("# HELP weird line one\\nline two \\\\ backslash"));
        assert!(prom.contains("weird -3"));

        // Name sanitisation: leading digit prefixed, invalid chars mapped.
        assert!(prom.contains("# TYPE _9bad_name_metric counter"));
        assert!(prom.contains("_9bad_name_metric 4"));
        // The raw name may appear in HELP text but never in a sample line.
        assert!(!lines
            .iter()
            .any(|l| !l.starts_with('#') && l.contains("9bad name-metric")));

        // Histogram buckets cumulative, ending in +Inf == count.
        assert!(prom.contains("lat_bucket{le=\"4\"} 1"));
        assert!(prom.contains("lat_bucket{le=\"8\"} 2"));
        assert!(prom.contains("lat_bucket{le=\"+Inf\"} 2"));
        assert!(prom.contains("lat_sum 8"));
        assert!(prom.contains("lat_count 2"));

        // Every non-comment line is `name[{labels}] value` with a finite
        // numeric value — the shape a scraper's parser requires.
        for line in &lines {
            if line.starts_with('#') {
                continue;
            }
            let (_, value) = line.rsplit_once(' ').expect("sample has a value");
            assert!(
                value.parse::<f64>().is_ok(),
                "unparseable sample value in {line:?}"
            );
        }
    }

    #[test]
    fn shard_aggregation_equals_the_sum_of_per_shard_registries() {
        let s0 = Registry::new();
        let s1 = Registry::new();
        s0.counter("decided_total").add(3);
        s1.counter("decided_total").add(5);
        s0.gauge("inflight").set(2);
        s1.gauge("inflight").set(4);
        s0.histogram("commit_latency").record(10);
        s0.histogram("commit_latency").record(100);
        s1.histogram("commit_latency").record(10);
        s0.describe("decided_total", "Slots decided");

        let agg = aggregate_shard_registries([(0, &s0), (1, &s1)]);

        // Per-shard values survive under their prefixes...
        assert_eq!(agg.counter_value("shard0_decided_total"), 3);
        assert_eq!(agg.counter_value("shard1_decided_total"), 5);
        // ...and the unprefixed families are exactly the per-shard sums.
        assert_eq!(
            agg.counter_value("decided_total"),
            s0.counter_value("decided_total") + s1.counter_value("decided_total")
        );
        assert_eq!(agg.gauge("inflight").get(), 2 + 4);
        let merged = s0
            .histogram("commit_latency")
            .snapshot()
            .merge(s1.histogram("commit_latency").snapshot());
        assert_eq!(agg.histogram("commit_latency").snapshot(), merged);
        assert_eq!(agg.histogram("shard0_commit_latency").snapshot().count, 2);
        assert_eq!(agg.histogram("shard1_commit_latency").snapshot().count, 1);
        // Help text rides along under the prefix.
        assert!(agg
            .render_prometheus()
            .contains("# HELP shard0_decided_total Slots decided"));
    }

    #[test]
    fn absorb_prefixed_into_self_does_not_deadlock() {
        let r = Registry::new();
        r.counter("x").add(7);
        r.absorb_prefixed("copy_", &r);
        assert_eq!(r.counter_value("copy_x"), 7);
        assert_eq!(r.counter_value("x"), 7);
    }

    #[test]
    fn label_value_escaping() {
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(sanitize_metric_name(""), "_");
        assert_eq!(sanitize_metric_name("ok_name:x"), "ok_name:x");
    }
}
