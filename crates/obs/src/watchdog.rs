//! Online invariant watchdog: evaluates the paper's steady-state properties
//! on the *live* probe stream and raises structured alarms (with a flight-
//! recorder dump) the moment one degrades — no need to wait for an
//! end-of-run checker pass.
//!
//! The properties watched are the ones E16's post-hoc checkers assert:
//!
//! * **leader-flap rate** — after stabilization is declared ([`Watchdog::arm`])
//!   the trusted leader must not change (more than the configured budget),
//! * **accusation-counter flatness** — after stabilization no accusation is
//!   sent and no counter bumps (the counters are monotone *and flat* in
//!   steady state),
//! * **counter monotonicity** — always on, armed or not: a process's
//!   accusation counter must never regress (a regression would break the
//!   paper's phase argument),
//! * **non-leader senders** — in steady state only the leader sends; the
//!   substrate harness feeds observed sender sets via
//!   [`Watchdog::check_senders`] because the probe stream sees protocol
//!   state changes, not raw traffic.
//!
//! The watchdog is a cloneable handle (shared state behind a mutex). Wrap
//! any probe with [`Watchdog::probe`] to evaluate events inline as the
//! protocol emits them.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};

use lls_primitives::{Instant, ProcessId};

use crate::metrics::{Histogram, Registry};
use crate::probe::{CmdStage, Probe, ProbeEvent, ReadMode};
use crate::recorder::NodeRecorders;

/// Rolling fsync samples kept for the spike detector's window.
const FSYNC_WINDOW: usize = 64;

/// Minimum window samples before the fsync-spike detector may fire (used
/// when [`WatchdogConfig::fsync_min_samples`] is 0).
const FSYNC_MIN_SAMPLES_DEFAULT: usize = 16;

/// Tuning for the watchdog's windows and budgets.
#[derive(Debug, Clone, Copy, Default)]
pub struct WatchdogConfig {
    /// Leader changes tolerated within [`flap_window_ticks`] after arming
    /// before a [`AlarmKind::LeaderFlap`] fires. The paper's steady state
    /// admits none, so the default is 0.
    ///
    /// [`flap_window_ticks`]: WatchdogConfig::flap_window_ticks
    pub max_flaps: u32,
    /// Width (in event-time ticks) of the sliding window flaps are counted
    /// in. 0 means "the whole armed period".
    pub flap_window_ticks: u64,
    /// Fsync p99 threshold in microseconds: when armed and the rolling
    /// window's interpolated p99 of `WalFsync` durations exceeds this, an
    /// [`AlarmKind::FsyncSpike`] fires. 0 disables the detector.
    pub fsync_spike_micros: u64,
    /// Minimum fsync samples in the rolling window before the spike
    /// detector may fire (0 means a default of 16) — one slow flush on a
    /// cold cache is noise, a slow p99 over a window is a signal.
    pub fsync_min_samples: u32,
    /// Batch-seal stall threshold in ticks: when armed and commands have
    /// been enqueued but none sealed for this long (checked by
    /// [`Watchdog::check_stage_stalls`]), an [`AlarmKind::BatchSealStall`]
    /// fires. 0 disables the detector.
    pub batch_seal_stall_ticks: u64,
    /// Catch-up lag threshold in slots: when armed and the highest decided
    /// slot observed from some node trails the cluster maximum by more than
    /// this (checked by [`Watchdog::check_stage_stalls`]), an
    /// [`AlarmKind::CatchUpStall`] fires on the laggard. 0 disables the
    /// detector.
    pub catch_up_lag_slots: u64,
}

/// Which invariant degraded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlarmKind {
    /// The trusted leader changed (beyond budget) after stabilization.
    LeaderFlap,
    /// An accusation was sent or absorbed after stabilization.
    AccusationGrowth,
    /// A process's accusation counter went backwards (any phase).
    CounterRegression,
    /// A process other than the unanimous leader sent protocol traffic
    /// after stabilization.
    NonLeaderSender,
    /// The rolling p99 of WAL group-commit flush durations exceeded the
    /// configured threshold (a degrading disk stalls the whole pipeline at
    /// the `wal_commit` stage).
    FsyncSpike,
    /// Commands were enqueued but the leader sealed no batch for longer
    /// than the configured window (a wedged or absent leader starves the
    /// `batch_seal` stage).
    BatchSealStall,
    /// A node's highest decided slot trails the cluster maximum by more
    /// than the configured lag (a laggard that stopped catching up).
    CatchUpStall,
    /// A node served a lease-read on a shard while — by the watchdog's own
    /// event timeline — a *different* node held that shard's lease. This is
    /// the lease-safety invariant itself; enforced armed or not.
    StaleRead,
    /// A node acquired a shard's lease before the previous holder's
    /// announced expiry — two serving windows overlapped. Enforced armed or
    /// not.
    LeaseOverlap,
}

impl AlarmKind {
    /// Stable snake-case tag (metric suffix).
    pub fn tag(&self) -> &'static str {
        match self {
            AlarmKind::LeaderFlap => "leader_flap",
            AlarmKind::AccusationGrowth => "accusation_growth",
            AlarmKind::CounterRegression => "counter_regression",
            AlarmKind::NonLeaderSender => "non_leader_sender",
            AlarmKind::FsyncSpike => "fsync_spike",
            AlarmKind::BatchSealStall => "batch_seal_stall",
            AlarmKind::CatchUpStall => "catch_up_stall",
            AlarmKind::StaleRead => "stale_read",
            AlarmKind::LeaseOverlap => "lease_overlap",
        }
    }
}

/// A structured alarm: what broke, where, and the post-mortem captured at
/// the moment it broke.
#[derive(Debug, Clone)]
pub struct Alarm {
    /// Which invariant degraded.
    pub kind: AlarmKind,
    /// The process the degradation was observed on.
    pub node: ProcessId,
    /// Human-readable specifics.
    pub detail: String,
    /// Flight-recorder dump of the offending node, captured when the alarm
    /// fired (empty when the watchdog has no recorders attached).
    pub dump: String,
}

#[derive(Debug, Default)]
struct WatchdogState {
    armed: bool,
    /// Recent post-arm leader-change event times (ticks), for the window.
    flap_times: VecDeque<u64>,
    /// Last trusted leader per node (filled from LeaderChange events).
    leaders: Vec<Option<ProcessId>>,
    /// Highest accusation counter seen per node.
    counters: Vec<u64>,
    /// Rolling window of recent WAL flush durations (micros).
    fsync_window: VecDeque<u64>,
    /// Latched while the fsync p99 sits above threshold (one alarm per
    /// excursion, not one per flush).
    fsync_spiking: bool,
    /// Commands enqueued vs sealed so far (CmdLifecycle stage counts).
    enqueued: u64,
    sealed: u64,
    /// When the current unsealed backlog started (ticks), if any.
    backlog_since: Option<u64>,
    /// Latched while a seal stall stands.
    seal_stalled: bool,
    /// Highest decided slot observed per node (None = no decide seen).
    decided_high: Vec<Option<u64>>,
    /// Latched while a catch-up stall stands.
    catch_up_stalled: bool,
    /// Current believed leaseholder and announced expiry per shard (from
    /// `LeaseAcquired` events) — what stale-read/overlap checks test
    /// against.
    leases: BTreeMap<u32, (ProcessId, Instant)>,
    alarms: Vec<Alarm>,
}

/// The watchdog handle. Cloning shares the same state; see the module docs.
#[derive(Debug, Clone)]
pub struct Watchdog {
    config: WatchdogConfig,
    state: Arc<Mutex<WatchdogState>>,
    /// For dumps and alarm metrics; absent in bare unit-test setups.
    recorders: Option<Arc<NodeRecorders>>,
    registry: Option<Arc<Registry>>,
}

impl Watchdog {
    /// A watchdog for `n` processes with no recorders attached (alarms
    /// carry empty dumps).
    pub fn new(n: usize, config: WatchdogConfig) -> Self {
        Watchdog {
            config,
            state: Arc::new(Mutex::new(WatchdogState {
                leaders: vec![None; n],
                counters: vec![0; n],
                decided_high: vec![None; n],
                ..WatchdogState::default()
            })),
            recorders: None,
            registry: None,
        }
    }

    /// A watchdog wired to a cluster's recorders: alarms capture the
    /// offending node's flight dump and bump `watchdog_alarm_*_total`
    /// counters in the shared registry.
    pub fn with_recorders(config: WatchdogConfig, recorders: Arc<NodeRecorders>) -> Self {
        let registry = recorders.registry();
        let n = recorders.n();
        let mut w = Watchdog::new(n, config);
        w.recorders = Some(recorders);
        w.registry = Some(registry);
        w
    }

    /// Wraps `inner` so every emitted event is evaluated by this watchdog
    /// before being forwarded.
    pub fn probe<P: Probe>(&self, inner: P) -> WatchdogProbe<P> {
        WatchdogProbe {
            inner,
            watchdog: self.clone(),
        }
    }

    /// Declares stabilization: from now on the steady-state invariants
    /// (flap budget, accusation flatness, leader-only senders) are
    /// enforced. Counter monotonicity is enforced regardless.
    pub fn arm(&self) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.armed = true;
        s.flap_times.clear();
    }

    /// Suspends steady-state enforcement (e.g. around an intentional kill
    /// in a chaos campaign).
    pub fn disarm(&self) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.armed = false;
        s.flap_times.clear();
    }

    /// Whether steady-state enforcement is active.
    pub fn armed(&self) -> bool {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).armed
    }

    /// All alarms raised so far (clones).
    pub fn alarms(&self) -> Vec<Alarm> {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .alarms
            .clone()
    }

    /// Number of alarms raised so far.
    pub fn alarm_count(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .alarms
            .len()
    }

    /// The leader every node currently agrees on, if unanimous.
    pub fn unanimous_leader(&self) -> Option<ProcessId> {
        let s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let first = s.leaders.first().copied().flatten()?;
        s.leaders.iter().all(|l| *l == Some(first)).then_some(first)
    }

    /// Feeds one probe event through the invariant checks. Called by
    /// [`WatchdogProbe::emit`]; exposed for harnesses that replay streams.
    pub fn observe(&self, event: &ProbeEvent) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        match *event {
            ProbeEvent::LeaderChange { node, at, leader } => {
                let slot = node.as_usize();
                if slot < s.leaders.len() {
                    s.leaders[slot] = Some(leader);
                }
                if !s.armed {
                    return;
                }
                let now = at.ticks();
                s.flap_times.push_back(now);
                if self.config.flap_window_ticks > 0 {
                    let horizon = now.saturating_sub(self.config.flap_window_ticks);
                    while s.flap_times.front().is_some_and(|&t| t < horizon) {
                        s.flap_times.pop_front();
                    }
                }
                if s.flap_times.len() > self.config.max_flaps as usize {
                    let detail = format!(
                        "{} leader change(s) within window after stabilization \
                         (budget {}), latest -> {leader} at {at}",
                        s.flap_times.len(),
                        self.config.max_flaps
                    );
                    self.raise(&mut s, AlarmKind::LeaderFlap, node, detail);
                }
            }
            ProbeEvent::AccusationSent {
                node, at, suspect, ..
            } if s.armed => {
                let detail = format!("accusation against {suspect} at {at} after stabilization");
                self.raise(&mut s, AlarmKind::AccusationGrowth, node, detail);
            }
            ProbeEvent::AccusationAbsorbed {
                node,
                at,
                new_counter,
            } => {
                let slot = node.as_usize();
                let last = s.counters.get(slot).copied().unwrap_or(0);
                if new_counter <= last && last > 0 {
                    let detail =
                        format!("accusation counter regressed: {last} -> {new_counter} at {at}");
                    self.raise(&mut s, AlarmKind::CounterRegression, node, detail);
                } else if slot < s.counters.len() {
                    s.counters[slot] = new_counter;
                }
                if s.armed {
                    let detail =
                        format!("counter bump to {new_counter} at {at} after stabilization");
                    self.raise(&mut s, AlarmKind::AccusationGrowth, node, detail);
                }
            }
            ProbeEvent::IncarnationBump { node, counter } => {
                let slot = node.as_usize();
                if slot < s.counters.len() && counter > s.counters[slot] {
                    s.counters[slot] = counter;
                }
            }
            ProbeEvent::Decide { node, slot, .. } => {
                let idx = node.as_usize();
                if idx < s.decided_high.len() {
                    let high = s.decided_high[idx].map_or(slot, |h| h.max(slot));
                    s.decided_high[idx] = Some(high);
                }
            }
            ProbeEvent::CmdLifecycle { at, stage, .. } => match stage {
                CmdStage::Enqueue => {
                    s.enqueued += 1;
                    if s.backlog_since.is_none() {
                        s.backlog_since = Some(at.ticks());
                    }
                }
                CmdStage::BatchSeal => {
                    s.sealed += 1;
                    // Progress: restart the stall clock — either the backlog
                    // cleared, or whatever remains was waited on from now.
                    s.backlog_since = (s.sealed < s.enqueued).then(|| at.ticks());
                    s.seal_stalled = false;
                }
                _ => {}
            },
            ProbeEvent::WalFsync {
                node, at, micros, ..
            } => {
                if s.fsync_window.len() == FSYNC_WINDOW {
                    s.fsync_window.pop_front();
                }
                s.fsync_window.push_back(micros);
                let threshold = self.config.fsync_spike_micros;
                if !s.armed || threshold == 0 {
                    return;
                }
                let min_samples = match self.config.fsync_min_samples {
                    0 => FSYNC_MIN_SAMPLES_DEFAULT,
                    n => n as usize,
                };
                if s.fsync_window.len() < min_samples {
                    return;
                }
                // Fold the window through the shared log2 estimator instead
                // of hand-rolling percentile math (satellite of E22).
                let h = Histogram::default();
                for &v in &s.fsync_window {
                    h.record(v);
                }
                let p99 = h.quantile(0.99).unwrap_or(0.0);
                if p99 > threshold as f64 {
                    if !s.fsync_spiking {
                        s.fsync_spiking = true;
                        let detail = format!(
                            "fsync p99 {p99:.0}us over {} samples exceeds {threshold}us \
                             (latest flush {micros}us at {at})",
                            s.fsync_window.len()
                        );
                        self.raise(&mut s, AlarmKind::FsyncSpike, node, detail);
                    }
                } else {
                    s.fsync_spiking = false;
                }
            }
            // Lease safety is enforced armed or not, like counter
            // monotonicity: a violation is a safety bug at any phase of a
            // run, not a steady-state degradation.
            ProbeEvent::LeaseAcquired {
                node,
                at,
                shard,
                until,
                ..
            } => {
                if let Some(&(holder, holder_until)) = s.leases.get(&shard) {
                    if holder != node && at < holder_until {
                        let detail = format!(
                            "lease overlap on shard {shard}: {node} acquired at {at} \
                             while {holder}'s lease runs until {holder_until}"
                        );
                        self.raise(&mut s, AlarmKind::LeaseOverlap, node, detail);
                    }
                }
                s.leases.insert(shard, (node, until));
            }
            ProbeEvent::ReadServed {
                node,
                at,
                shard,
                mode: ReadMode::Lease,
                ..
            } => {
                if let Some(&(holder, until)) = s.leases.get(&shard) {
                    if holder != node && at < until {
                        let detail = format!(
                            "stale lease-read on shard {shard}: {node} served at {at} \
                             while {holder}'s lease runs until {until}"
                        );
                        self.raise(&mut s, AlarmKind::StaleRead, node, detail);
                    }
                }
            }
            _ => {}
        }
    }

    /// Periodic stage-stall sweep, driven by the harness clock: raises
    /// [`AlarmKind::BatchSealStall`] when enqueued commands have waited
    /// longer than the configured window with no seal, and
    /// [`AlarmKind::CatchUpStall`] when some node's highest decided slot
    /// trails the cluster maximum by more than the configured lag. No-op
    /// while disarmed. Each stall raises once and re-arms when the stage
    /// makes progress again.
    pub fn check_stage_stalls(&self, now_ticks: u64) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if !s.armed {
            return;
        }
        let stall = self.config.batch_seal_stall_ticks;
        if stall > 0 && !s.seal_stalled && s.sealed < s.enqueued {
            if let Some(since) = s.backlog_since {
                if now_ticks.saturating_sub(since) > stall {
                    s.seal_stalled = true;
                    let backlog = s.enqueued - s.sealed;
                    let detail = format!(
                        "{backlog} enqueued command(s) unsealed for {} ticks (budget {stall})",
                        now_ticks.saturating_sub(since)
                    );
                    // The leader owns sealing, but which node that is may be
                    // contested during the stall — attribute to the current
                    // unanimous leader if any, else node 0.
                    let node = {
                        let first = s.leaders.first().copied().flatten();
                        first
                            .filter(|l| s.leaders.iter().all(|x| *x == Some(*l)))
                            .unwrap_or(ProcessId(0))
                    };
                    self.raise(&mut s, AlarmKind::BatchSealStall, node, detail);
                }
            }
        }
        let lag_budget = self.config.catch_up_lag_slots;
        if lag_budget > 0 {
            let max = s.decided_high.iter().flatten().copied().max();
            if let Some(max) = max {
                let laggard = s
                    .decided_high
                    .iter()
                    .enumerate()
                    .filter_map(|(i, h)| h.map(|h| (i, h)))
                    .min_by_key(|&(_, h)| h);
                if let Some((idx, low)) = laggard {
                    let lag = max.saturating_sub(low);
                    if lag > lag_budget {
                        if !s.catch_up_stalled {
                            s.catch_up_stalled = true;
                            let detail = format!(
                                "decided slot {low} trails cluster max {max} by {lag} \
                                 slots (budget {lag_budget})"
                            );
                            self.raise(
                                &mut s,
                                AlarmKind::CatchUpStall,
                                ProcessId(idx as u32),
                                detail,
                            );
                        }
                    } else {
                        s.catch_up_stalled = false;
                    }
                }
            }
        }
    }

    /// Steady-state traffic check, fed by the substrate harness: `senders`
    /// is the set of processes observed sending protocol messages since
    /// arming. Any sender other than the unanimous leader raises
    /// [`AlarmKind::NonLeaderSender`]. No-op while disarmed or while the
    /// nodes disagree on the leader (the flap checks own that situation).
    pub fn check_senders(&self, senders: &[ProcessId]) {
        let Some(leader) = self.unanimous_leader() else {
            return;
        };
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if !s.armed {
            return;
        }
        for &p in senders {
            if p != leader {
                let detail = format!("{p} sent protocol traffic while {leader} is the leader");
                self.raise(&mut s, AlarmKind::NonLeaderSender, p, detail);
            }
        }
    }

    fn raise(&self, s: &mut WatchdogState, kind: AlarmKind, node: ProcessId, detail: String) {
        let dump = self
            .recorders
            .as_ref()
            .map(|r| r.dump(node))
            .unwrap_or_default();
        if let Some(reg) = &self.registry {
            reg.counter("watchdog_alarms_total").inc();
            reg.counter(&format!("watchdog_alarm_{}_total", kind.tag()))
                .inc();
        }
        s.alarms.push(Alarm {
            kind,
            node,
            detail,
            dump,
        });
    }
}

/// A [`Probe`] decorator that feeds every event through a [`Watchdog`]
/// before forwarding it to the wrapped probe.
#[derive(Debug, Clone)]
pub struct WatchdogProbe<P: Probe> {
    inner: P,
    watchdog: Watchdog,
}

impl<P: Probe> Probe for WatchdogProbe<P> {
    fn emit(&self, event: ProbeEvent) {
        // Forward first so the flight dump captured by an alarm includes
        // the offending event itself.
        self.inner.emit(event);
        self.watchdog.observe(&event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lls_primitives::Instant;

    fn change(node: u32, at: u64, leader: u32) -> ProbeEvent {
        ProbeEvent::LeaderChange {
            node: ProcessId(node),
            at: Instant::from_ticks(at),
            leader: ProcessId(leader),
        }
    }

    #[test]
    fn flap_after_arming_raises_with_dump() {
        let recorders = Arc::new(NodeRecorders::new(3, 16));
        let w = Watchdog::with_recorders(WatchdogConfig::default(), Arc::clone(&recorders));
        let probes: Vec<_> = (0..3)
            .map(|p| w.probe(recorders.probe_for(ProcessId(p))))
            .collect();
        for (p, probe) in probes.iter().enumerate() {
            probe.emit(change(p as u32, 0, 0));
        }
        assert_eq!(w.alarm_count(), 0, "pre-arm churn is free");
        assert_eq!(w.unanimous_leader(), Some(ProcessId(0)));
        w.arm();
        probes[1].emit(change(1, 100, 1));
        assert_eq!(w.alarm_count(), 1, "flap budget is zero");
        let alarm = &w.alarms()[0];
        assert_eq!(alarm.kind, AlarmKind::LeaderFlap);
        assert_eq!(alarm.node, ProcessId(1));
        assert!(
            alarm.dump.contains("LEADER"),
            "dump captures the flap itself: {}",
            alarm.dump
        );
        assert_eq!(
            recorders.registry().counter_value("watchdog_alarms_total"),
            1
        );
        assert_eq!(
            recorders
                .registry()
                .counter_value("watchdog_alarm_leader_flap_total"),
            1
        );
    }

    #[test]
    fn accusations_after_arming_raise() {
        let w = Watchdog::new(2, WatchdogConfig::default());
        w.arm();
        w.observe(&ProbeEvent::AccusationSent {
            node: ProcessId(1),
            at: Instant::from_ticks(5),
            suspect: ProcessId(0),
            phase: 0,
        });
        w.observe(&ProbeEvent::AccusationAbsorbed {
            node: ProcessId(0),
            at: Instant::from_ticks(6),
            new_counter: 1,
        });
        let kinds: Vec<AlarmKind> = w.alarms().iter().map(|a| a.kind).collect();
        assert_eq!(
            kinds,
            vec![AlarmKind::AccusationGrowth, AlarmKind::AccusationGrowth]
        );
    }

    #[test]
    fn counter_regression_fires_even_disarmed() {
        let w = Watchdog::new(1, WatchdogConfig::default());
        w.observe(&ProbeEvent::AccusationAbsorbed {
            node: ProcessId(0),
            at: Instant::from_ticks(1),
            new_counter: 5,
        });
        w.observe(&ProbeEvent::AccusationAbsorbed {
            node: ProcessId(0),
            at: Instant::from_ticks(2),
            new_counter: 3,
        });
        assert_eq!(w.alarm_count(), 1);
        assert_eq!(w.alarms()[0].kind, AlarmKind::CounterRegression);
    }

    #[test]
    fn non_leader_sender_is_flagged_only_when_armed_and_unanimous() {
        let w = Watchdog::new(2, WatchdogConfig::default());
        w.observe(&change(0, 0, 0));
        w.check_senders(&[ProcessId(1)]);
        assert_eq!(w.alarm_count(), 0, "not unanimous yet");
        w.observe(&change(1, 0, 0));
        w.check_senders(&[ProcessId(1)]);
        assert_eq!(w.alarm_count(), 0, "not armed yet");
        w.arm();
        w.check_senders(&[ProcessId(0), ProcessId(1)]);
        assert_eq!(w.alarm_count(), 1);
        assert_eq!(w.alarms()[0].kind, AlarmKind::NonLeaderSender);
        assert_eq!(w.alarms()[0].node, ProcessId(1));
    }

    fn fsync(at: u64, micros: u64) -> ProbeEvent {
        ProbeEvent::WalFsync {
            node: ProcessId(0),
            at: Instant::from_ticks(at),
            micros,
            records: 1,
        }
    }

    fn lifecycle(at: u64, seq: u64, stage: CmdStage) -> ProbeEvent {
        ProbeEvent::CmdLifecycle {
            node: ProcessId(0),
            at: Instant::from_ticks(at),
            cmd: crate::probe::CmdId { client: 0, seq },
            stage,
            shard: 0,
        }
    }

    #[test]
    fn fsync_spike_fires_once_per_excursion() {
        let w = Watchdog::new(
            1,
            WatchdogConfig {
                fsync_spike_micros: 1000,
                fsync_min_samples: 8,
                ..WatchdogConfig::default()
            },
        );
        w.arm();
        // Healthy flushes: well under threshold, no alarm.
        for i in 0..20 {
            w.observe(&fsync(i, 100));
        }
        assert_eq!(w.alarm_count(), 0);
        // A sustained spike pushes the window p99 over 1000us...
        for i in 20..40 {
            w.observe(&fsync(i, 8000));
        }
        assert_eq!(w.alarm_count(), 1, "one alarm per excursion, not per flush");
        assert_eq!(w.alarms()[0].kind, AlarmKind::FsyncSpike);
        // ...recovery resets the latch, a second spike fires again.
        for i in 40..110 {
            w.observe(&fsync(i, 50));
        }
        for i in 110..180 {
            w.observe(&fsync(i, 9000));
        }
        assert_eq!(w.alarm_count(), 2);
    }

    #[test]
    fn fsync_spike_needs_minimum_samples_and_arming() {
        let w = Watchdog::new(
            1,
            WatchdogConfig {
                fsync_spike_micros: 10,
                fsync_min_samples: 8,
                ..WatchdogConfig::default()
            },
        );
        // Disarmed: slow flushes are recorded but never alarm.
        for i in 0..20 {
            w.observe(&fsync(i, 100_000));
        }
        assert_eq!(w.alarm_count(), 0, "disarmed");
        let w2 = Watchdog::new(
            1,
            WatchdogConfig {
                fsync_spike_micros: 10,
                fsync_min_samples: 8,
                ..WatchdogConfig::default()
            },
        );
        w2.arm();
        for i in 0..7 {
            w2.observe(&fsync(i, 100_000));
        }
        assert_eq!(w2.alarm_count(), 0, "below the sample floor");
        w2.observe(&fsync(7, 100_000));
        assert_eq!(w2.alarm_count(), 1, "floor reached");
    }

    #[test]
    fn batch_seal_stall_fires_and_clears_on_progress() {
        let w = Watchdog::new(
            1,
            WatchdogConfig {
                batch_seal_stall_ticks: 100,
                ..WatchdogConfig::default()
            },
        );
        w.arm();
        w.observe(&lifecycle(10, 0, CmdStage::Enqueue));
        w.observe(&lifecycle(12, 1, CmdStage::Enqueue));
        w.check_stage_stalls(50);
        assert_eq!(w.alarm_count(), 0, "inside the budget");
        w.check_stage_stalls(200);
        assert_eq!(w.alarm_count(), 1, "backlog of 2 unsealed for 190 ticks");
        assert_eq!(w.alarms()[0].kind, AlarmKind::BatchSealStall);
        w.check_stage_stalls(300);
        assert_eq!(w.alarm_count(), 1, "latched until progress");
        // A seal clears the latch; remaining backlog restarts the clock.
        w.observe(&lifecycle(310, 0, CmdStage::BatchSeal));
        w.check_stage_stalls(350);
        assert_eq!(w.alarm_count(), 1, "clock restarted at the seal");
        w.check_stage_stalls(500);
        assert_eq!(w.alarm_count(), 2, "the second command is still unsealed");
    }

    #[test]
    fn catch_up_stall_flags_the_laggard() {
        let w = Watchdog::new(
            3,
            WatchdogConfig {
                catch_up_lag_slots: 10,
                ..WatchdogConfig::default()
            },
        );
        w.arm();
        let decide = |node: u32, slot: u64| ProbeEvent::Decide {
            node: ProcessId(node),
            at: Instant::from_ticks(slot),
            slot,
        };
        for slot in 0..30 {
            w.observe(&decide(0, slot));
            w.observe(&decide(1, slot));
        }
        // Node 2 stopped at slot 5.
        for slot in 0..=5 {
            w.observe(&decide(2, slot));
        }
        w.check_stage_stalls(1000);
        assert_eq!(w.alarm_count(), 1);
        let alarm = &w.alarms()[0];
        assert_eq!(alarm.kind, AlarmKind::CatchUpStall);
        assert_eq!(alarm.node, ProcessId(2));
        // Latched while the lag stands...
        w.check_stage_stalls(1100);
        assert_eq!(w.alarm_count(), 1);
        // ...cleared when the laggard catches up, re-fires on a new lag.
        for slot in 6..30 {
            w.observe(&decide(2, slot));
        }
        w.check_stage_stalls(1200);
        for slot in 30..60 {
            w.observe(&decide(0, slot));
            w.observe(&decide(1, slot));
        }
        w.check_stage_stalls(1300);
        assert_eq!(w.alarm_count(), 2);
    }

    #[test]
    fn flap_budget_and_window_are_respected() {
        let w = Watchdog::new(
            1,
            WatchdogConfig {
                max_flaps: 1,
                flap_window_ticks: 50,
                ..WatchdogConfig::default()
            },
        );
        w.arm();
        w.observe(&change(0, 10, 1));
        assert_eq!(w.alarm_count(), 0, "one flap is inside budget");
        // 100 is outside the 50-tick window of the first flap.
        w.observe(&change(0, 100, 0));
        assert_eq!(w.alarm_count(), 0, "window slid past the first flap");
        w.observe(&change(0, 120, 1));
        assert_eq!(w.alarm_count(), 1, "two flaps inside one window");
    }

    fn acquired(node: u32, at: u64, shard: u32, until: u64) -> ProbeEvent {
        ProbeEvent::LeaseAcquired {
            node: ProcessId(node),
            at: Instant::from_ticks(at),
            shard,
            seq: 1,
            until: Instant::from_ticks(until),
        }
    }

    fn lease_read(node: u32, at: u64, shard: u32) -> ProbeEvent {
        ProbeEvent::ReadServed {
            node: ProcessId(node),
            at: Instant::from_ticks(at),
            shard,
            mode: ReadMode::Lease,
            watermark: 0,
        }
    }

    #[test]
    fn stale_lease_read_fires_even_disarmed() {
        let w = Watchdog::new(3, WatchdogConfig::default());
        w.observe(&acquired(0, 10, 0, 100));
        w.observe(&lease_read(0, 50, 0));
        assert_eq!(w.alarm_count(), 0, "the holder's own read is fine");
        // p1 takes over the lease; p0 keeps serving inside p1's window.
        w.observe(&acquired(1, 120, 0, 220));
        w.observe(&lease_read(0, 150, 0));
        assert_eq!(w.alarm_count(), 1);
        assert_eq!(w.alarms()[0].kind, AlarmKind::StaleRead);
        assert_eq!(w.alarms()[0].node, ProcessId(0));
    }

    #[test]
    fn stale_read_tracking_is_per_shard() {
        let w = Watchdog::new(3, WatchdogConfig::default());
        w.observe(&acquired(0, 10, 0, 100));
        w.observe(&acquired(1, 10, 7, 100));
        w.observe(&lease_read(1, 50, 7));
        w.observe(&lease_read(0, 50, 0));
        assert_eq!(w.alarm_count(), 0, "different shards, different holders");
        w.observe(&lease_read(1, 50, 0));
        assert_eq!(w.alarm_count(), 1, "p1 serving shard 0 is stale");
    }

    #[test]
    fn overlapping_lease_acquisitions_raise() {
        let w = Watchdog::new(3, WatchdogConfig::default());
        w.observe(&acquired(0, 10, 0, 100));
        // Renewal by the same holder is never an overlap.
        w.observe(&acquired(0, 50, 0, 140));
        assert_eq!(w.alarm_count(), 0);
        // p1 acquires at 120 < 140: two live serving windows.
        w.observe(&acquired(1, 120, 0, 230));
        assert_eq!(w.alarm_count(), 1);
        assert_eq!(w.alarms()[0].kind, AlarmKind::LeaseOverlap);
        // A handover after expiry is clean.
        w.observe(&acquired(2, 300, 0, 380));
        assert_eq!(w.alarm_count(), 1);
    }

    #[test]
    fn expired_leases_do_not_flag_later_reads() {
        let w = Watchdog::new(2, WatchdogConfig::default());
        w.observe(&acquired(0, 10, 0, 100));
        w.observe(&acquired(1, 150, 0, 240));
        // p0 serving *after* p1's window closed proves nothing (nobody
        // holds the lease; the read path should refuse anyway, but the
        // watchdog can only convict with a live competing window).
        w.observe(&lease_read(0, 300, 0));
        assert_eq!(w.alarm_count(), 0);
    }
}
