//! Online invariant watchdog: evaluates the paper's steady-state properties
//! on the *live* probe stream and raises structured alarms (with a flight-
//! recorder dump) the moment one degrades — no need to wait for an
//! end-of-run checker pass.
//!
//! The properties watched are the ones E16's post-hoc checkers assert:
//!
//! * **leader-flap rate** — after stabilization is declared ([`Watchdog::arm`])
//!   the trusted leader must not change (more than the configured budget),
//! * **accusation-counter flatness** — after stabilization no accusation is
//!   sent and no counter bumps (the counters are monotone *and flat* in
//!   steady state),
//! * **counter monotonicity** — always on, armed or not: a process's
//!   accusation counter must never regress (a regression would break the
//!   paper's phase argument),
//! * **non-leader senders** — in steady state only the leader sends; the
//!   substrate harness feeds observed sender sets via
//!   [`Watchdog::check_senders`] because the probe stream sees protocol
//!   state changes, not raw traffic.
//!
//! The watchdog is a cloneable handle (shared state behind a mutex). Wrap
//! any probe with [`Watchdog::probe`] to evaluate events inline as the
//! protocol emits them.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use lls_primitives::ProcessId;

use crate::metrics::Registry;
use crate::probe::{Probe, ProbeEvent};
use crate::recorder::NodeRecorders;

/// Tuning for the watchdog's windows and budgets.
#[derive(Debug, Clone, Copy, Default)]
pub struct WatchdogConfig {
    /// Leader changes tolerated within [`flap_window_ticks`] after arming
    /// before a [`AlarmKind::LeaderFlap`] fires. The paper's steady state
    /// admits none, so the default is 0.
    ///
    /// [`flap_window_ticks`]: WatchdogConfig::flap_window_ticks
    pub max_flaps: u32,
    /// Width (in event-time ticks) of the sliding window flaps are counted
    /// in. 0 means "the whole armed period".
    pub flap_window_ticks: u64,
}

/// Which invariant degraded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlarmKind {
    /// The trusted leader changed (beyond budget) after stabilization.
    LeaderFlap,
    /// An accusation was sent or absorbed after stabilization.
    AccusationGrowth,
    /// A process's accusation counter went backwards (any phase).
    CounterRegression,
    /// A process other than the unanimous leader sent protocol traffic
    /// after stabilization.
    NonLeaderSender,
}

impl AlarmKind {
    /// Stable snake-case tag (metric suffix).
    pub fn tag(&self) -> &'static str {
        match self {
            AlarmKind::LeaderFlap => "leader_flap",
            AlarmKind::AccusationGrowth => "accusation_growth",
            AlarmKind::CounterRegression => "counter_regression",
            AlarmKind::NonLeaderSender => "non_leader_sender",
        }
    }
}

/// A structured alarm: what broke, where, and the post-mortem captured at
/// the moment it broke.
#[derive(Debug, Clone)]
pub struct Alarm {
    /// Which invariant degraded.
    pub kind: AlarmKind,
    /// The process the degradation was observed on.
    pub node: ProcessId,
    /// Human-readable specifics.
    pub detail: String,
    /// Flight-recorder dump of the offending node, captured when the alarm
    /// fired (empty when the watchdog has no recorders attached).
    pub dump: String,
}

#[derive(Debug, Default)]
struct WatchdogState {
    armed: bool,
    /// Recent post-arm leader-change event times (ticks), for the window.
    flap_times: VecDeque<u64>,
    /// Last trusted leader per node (filled from LeaderChange events).
    leaders: Vec<Option<ProcessId>>,
    /// Highest accusation counter seen per node.
    counters: Vec<u64>,
    alarms: Vec<Alarm>,
}

/// The watchdog handle. Cloning shares the same state; see the module docs.
#[derive(Debug, Clone)]
pub struct Watchdog {
    config: WatchdogConfig,
    state: Arc<Mutex<WatchdogState>>,
    /// For dumps and alarm metrics; absent in bare unit-test setups.
    recorders: Option<Arc<NodeRecorders>>,
    registry: Option<Arc<Registry>>,
}

impl Watchdog {
    /// A watchdog for `n` processes with no recorders attached (alarms
    /// carry empty dumps).
    pub fn new(n: usize, config: WatchdogConfig) -> Self {
        Watchdog {
            config,
            state: Arc::new(Mutex::new(WatchdogState {
                leaders: vec![None; n],
                counters: vec![0; n],
                ..WatchdogState::default()
            })),
            recorders: None,
            registry: None,
        }
    }

    /// A watchdog wired to a cluster's recorders: alarms capture the
    /// offending node's flight dump and bump `watchdog_alarm_*_total`
    /// counters in the shared registry.
    pub fn with_recorders(config: WatchdogConfig, recorders: Arc<NodeRecorders>) -> Self {
        let registry = recorders.registry();
        let n = recorders.n();
        let mut w = Watchdog::new(n, config);
        w.recorders = Some(recorders);
        w.registry = Some(registry);
        w
    }

    /// Wraps `inner` so every emitted event is evaluated by this watchdog
    /// before being forwarded.
    pub fn probe<P: Probe>(&self, inner: P) -> WatchdogProbe<P> {
        WatchdogProbe {
            inner,
            watchdog: self.clone(),
        }
    }

    /// Declares stabilization: from now on the steady-state invariants
    /// (flap budget, accusation flatness, leader-only senders) are
    /// enforced. Counter monotonicity is enforced regardless.
    pub fn arm(&self) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.armed = true;
        s.flap_times.clear();
    }

    /// Suspends steady-state enforcement (e.g. around an intentional kill
    /// in a chaos campaign).
    pub fn disarm(&self) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.armed = false;
        s.flap_times.clear();
    }

    /// Whether steady-state enforcement is active.
    pub fn armed(&self) -> bool {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).armed
    }

    /// All alarms raised so far (clones).
    pub fn alarms(&self) -> Vec<Alarm> {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .alarms
            .clone()
    }

    /// Number of alarms raised so far.
    pub fn alarm_count(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .alarms
            .len()
    }

    /// The leader every node currently agrees on, if unanimous.
    pub fn unanimous_leader(&self) -> Option<ProcessId> {
        let s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let first = s.leaders.first().copied().flatten()?;
        s.leaders.iter().all(|l| *l == Some(first)).then_some(first)
    }

    /// Feeds one probe event through the invariant checks. Called by
    /// [`WatchdogProbe::emit`]; exposed for harnesses that replay streams.
    pub fn observe(&self, event: &ProbeEvent) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        match *event {
            ProbeEvent::LeaderChange { node, at, leader } => {
                let slot = node.as_usize();
                if slot < s.leaders.len() {
                    s.leaders[slot] = Some(leader);
                }
                if !s.armed {
                    return;
                }
                let now = at.ticks();
                s.flap_times.push_back(now);
                if self.config.flap_window_ticks > 0 {
                    let horizon = now.saturating_sub(self.config.flap_window_ticks);
                    while s.flap_times.front().is_some_and(|&t| t < horizon) {
                        s.flap_times.pop_front();
                    }
                }
                if s.flap_times.len() > self.config.max_flaps as usize {
                    let detail = format!(
                        "{} leader change(s) within window after stabilization \
                         (budget {}), latest -> {leader} at {at}",
                        s.flap_times.len(),
                        self.config.max_flaps
                    );
                    self.raise(&mut s, AlarmKind::LeaderFlap, node, detail);
                }
            }
            ProbeEvent::AccusationSent {
                node, at, suspect, ..
            } if s.armed => {
                let detail = format!("accusation against {suspect} at {at} after stabilization");
                self.raise(&mut s, AlarmKind::AccusationGrowth, node, detail);
            }
            ProbeEvent::AccusationAbsorbed {
                node,
                at,
                new_counter,
            } => {
                let slot = node.as_usize();
                let last = s.counters.get(slot).copied().unwrap_or(0);
                if new_counter <= last && last > 0 {
                    let detail =
                        format!("accusation counter regressed: {last} -> {new_counter} at {at}");
                    self.raise(&mut s, AlarmKind::CounterRegression, node, detail);
                } else if slot < s.counters.len() {
                    s.counters[slot] = new_counter;
                }
                if s.armed {
                    let detail =
                        format!("counter bump to {new_counter} at {at} after stabilization");
                    self.raise(&mut s, AlarmKind::AccusationGrowth, node, detail);
                }
            }
            ProbeEvent::IncarnationBump { node, counter } => {
                let slot = node.as_usize();
                if slot < s.counters.len() && counter > s.counters[slot] {
                    s.counters[slot] = counter;
                }
            }
            _ => {}
        }
    }

    /// Steady-state traffic check, fed by the substrate harness: `senders`
    /// is the set of processes observed sending protocol messages since
    /// arming. Any sender other than the unanimous leader raises
    /// [`AlarmKind::NonLeaderSender`]. No-op while disarmed or while the
    /// nodes disagree on the leader (the flap checks own that situation).
    pub fn check_senders(&self, senders: &[ProcessId]) {
        let Some(leader) = self.unanimous_leader() else {
            return;
        };
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if !s.armed {
            return;
        }
        for &p in senders {
            if p != leader {
                let detail = format!("{p} sent protocol traffic while {leader} is the leader");
                self.raise(&mut s, AlarmKind::NonLeaderSender, p, detail);
            }
        }
    }

    fn raise(&self, s: &mut WatchdogState, kind: AlarmKind, node: ProcessId, detail: String) {
        let dump = self
            .recorders
            .as_ref()
            .map(|r| r.dump(node))
            .unwrap_or_default();
        if let Some(reg) = &self.registry {
            reg.counter("watchdog_alarms_total").inc();
            reg.counter(&format!("watchdog_alarm_{}_total", kind.tag()))
                .inc();
        }
        s.alarms.push(Alarm {
            kind,
            node,
            detail,
            dump,
        });
    }
}

/// A [`Probe`] decorator that feeds every event through a [`Watchdog`]
/// before forwarding it to the wrapped probe.
#[derive(Debug, Clone)]
pub struct WatchdogProbe<P: Probe> {
    inner: P,
    watchdog: Watchdog,
}

impl<P: Probe> Probe for WatchdogProbe<P> {
    fn emit(&self, event: ProbeEvent) {
        // Forward first so the flight dump captured by an alarm includes
        // the offending event itself.
        self.inner.emit(event);
        self.watchdog.observe(&event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lls_primitives::Instant;

    fn change(node: u32, at: u64, leader: u32) -> ProbeEvent {
        ProbeEvent::LeaderChange {
            node: ProcessId(node),
            at: Instant::from_ticks(at),
            leader: ProcessId(leader),
        }
    }

    #[test]
    fn flap_after_arming_raises_with_dump() {
        let recorders = Arc::new(NodeRecorders::new(3, 16));
        let w = Watchdog::with_recorders(WatchdogConfig::default(), Arc::clone(&recorders));
        let probes: Vec<_> = (0..3)
            .map(|p| w.probe(recorders.probe_for(ProcessId(p))))
            .collect();
        for (p, probe) in probes.iter().enumerate() {
            probe.emit(change(p as u32, 0, 0));
        }
        assert_eq!(w.alarm_count(), 0, "pre-arm churn is free");
        assert_eq!(w.unanimous_leader(), Some(ProcessId(0)));
        w.arm();
        probes[1].emit(change(1, 100, 1));
        assert_eq!(w.alarm_count(), 1, "flap budget is zero");
        let alarm = &w.alarms()[0];
        assert_eq!(alarm.kind, AlarmKind::LeaderFlap);
        assert_eq!(alarm.node, ProcessId(1));
        assert!(
            alarm.dump.contains("LEADER"),
            "dump captures the flap itself: {}",
            alarm.dump
        );
        assert_eq!(
            recorders.registry().counter_value("watchdog_alarms_total"),
            1
        );
        assert_eq!(
            recorders
                .registry()
                .counter_value("watchdog_alarm_leader_flap_total"),
            1
        );
    }

    #[test]
    fn accusations_after_arming_raise() {
        let w = Watchdog::new(2, WatchdogConfig::default());
        w.arm();
        w.observe(&ProbeEvent::AccusationSent {
            node: ProcessId(1),
            at: Instant::from_ticks(5),
            suspect: ProcessId(0),
            phase: 0,
        });
        w.observe(&ProbeEvent::AccusationAbsorbed {
            node: ProcessId(0),
            at: Instant::from_ticks(6),
            new_counter: 1,
        });
        let kinds: Vec<AlarmKind> = w.alarms().iter().map(|a| a.kind).collect();
        assert_eq!(
            kinds,
            vec![AlarmKind::AccusationGrowth, AlarmKind::AccusationGrowth]
        );
    }

    #[test]
    fn counter_regression_fires_even_disarmed() {
        let w = Watchdog::new(1, WatchdogConfig::default());
        w.observe(&ProbeEvent::AccusationAbsorbed {
            node: ProcessId(0),
            at: Instant::from_ticks(1),
            new_counter: 5,
        });
        w.observe(&ProbeEvent::AccusationAbsorbed {
            node: ProcessId(0),
            at: Instant::from_ticks(2),
            new_counter: 3,
        });
        assert_eq!(w.alarm_count(), 1);
        assert_eq!(w.alarms()[0].kind, AlarmKind::CounterRegression);
    }

    #[test]
    fn non_leader_sender_is_flagged_only_when_armed_and_unanimous() {
        let w = Watchdog::new(2, WatchdogConfig::default());
        w.observe(&change(0, 0, 0));
        w.check_senders(&[ProcessId(1)]);
        assert_eq!(w.alarm_count(), 0, "not unanimous yet");
        w.observe(&change(1, 0, 0));
        w.check_senders(&[ProcessId(1)]);
        assert_eq!(w.alarm_count(), 0, "not armed yet");
        w.arm();
        w.check_senders(&[ProcessId(0), ProcessId(1)]);
        assert_eq!(w.alarm_count(), 1);
        assert_eq!(w.alarms()[0].kind, AlarmKind::NonLeaderSender);
        assert_eq!(w.alarms()[0].node, ProcessId(1));
    }

    #[test]
    fn flap_budget_and_window_are_respected() {
        let w = Watchdog::new(
            1,
            WatchdogConfig {
                max_flaps: 1,
                flap_window_ticks: 50,
            },
        );
        w.arm();
        w.observe(&change(0, 10, 1));
        assert_eq!(w.alarm_count(), 0, "one flap is inside budget");
        // 100 is outside the 50-tick window of the first flap.
        w.observe(&change(0, 100, 0));
        assert_eq!(w.alarm_count(), 0, "window slid past the first flap");
        w.observe(&change(0, 120, 1));
        assert_eq!(w.alarm_count(), 1, "two flaps inside one window");
    }
}
