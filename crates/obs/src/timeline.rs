//! Time-series telemetry: a bounded-ring sampler over the registry.
//!
//! Counters and histograms in a [`Registry`] only ever accumulate — good
//! for end-of-run totals, useless for "what happened *during* the run".
//! [`TimelineSampler`] closes the gap: call [`TimelineSampler::sample`]
//! periodically and each call freezes a [`Registry::snapshot`], subtracts
//! the previous one, and stores the delta as one [`TimelineFrame`] —
//! per-window counter rates, point-in-time gauges, and per-window p50/p99
//! (via [`crate::HistogramSnapshot::quantile_interpolated`]) of every
//! histogram that saw samples in the window.
//!
//! The ring is bounded like the flight recorder: when full, the oldest
//! frame is evicted and counted, so a sampler left running forever holds
//! the most recent history at fixed memory. [`TimelineSampler::to_json`]
//! renders the retained frames for the `/timeline` scrape route and for
//! embedding in `BENCH_E*.json`.

use std::collections::{BTreeMap, VecDeque};

use crate::metrics::{Registry, RegistrySnapshot};

/// Per-window view of one histogram: how many samples landed in the window
/// and where the window's distribution sat.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowQuantiles {
    /// Samples recorded during the window.
    pub count: u64,
    /// Interpolated median of the window's samples.
    pub p50: f64,
    /// Interpolated 99th percentile of the window's samples.
    pub p99: f64,
}

/// One sampling window: everything that changed in the registry between two
/// consecutive [`TimelineSampler::sample`] calls.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineFrame {
    /// Monotonic frame number (survives ring eviction, like recorder seqs).
    pub index: u64,
    /// Caller-supplied timestamp of the sample (ticks or anchored millis —
    /// whatever clock the harness runs on).
    pub at: u64,
    /// Counter name → increase during the window (unchanged counters are
    /// omitted, so quiet frames stay small).
    pub counter_deltas: BTreeMap<String, u64>,
    /// Gauge name → value at sample time (gauges are levels, not rates).
    pub gauges: BTreeMap<String, i64>,
    /// Histogram name → the window's sample count and p50/p99. Only
    /// histograms that recorded during the window appear.
    pub quantiles: BTreeMap<String, WindowQuantiles>,
}

/// A bounded ring of [`TimelineFrame`]s plus the previous snapshot to diff
/// against. Single-writer: wrap in a mutex to sample from one thread while
/// another serves [`TimelineSampler::to_json`].
#[derive(Debug)]
pub struct TimelineSampler {
    capacity: usize,
    frames: VecDeque<TimelineFrame>,
    prev: RegistrySnapshot,
    next_index: u64,
    dropped: u64,
}

impl TimelineSampler {
    /// A sampler retaining at most `capacity` frames (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TimelineSampler {
            capacity,
            frames: VecDeque::with_capacity(capacity),
            prev: RegistrySnapshot::default(),
            next_index: 0,
            dropped: 0,
        }
    }

    /// Takes one sample: snapshots `registry`, diffs against the previous
    /// sample, and appends the delta frame (evicting the oldest when full).
    /// Returns the new frame's index. The *first* sample's window covers
    /// everything since the registry was born.
    pub fn sample(&mut self, registry: &Registry, at: u64) -> u64 {
        let cur = registry.snapshot();
        let mut frame = TimelineFrame {
            index: self.next_index,
            at,
            counter_deltas: BTreeMap::new(),
            gauges: cur.gauges.clone(),
            quantiles: BTreeMap::new(),
        };
        for (name, &value) in &cur.counters {
            let before = self.prev.counters.get(name).copied().unwrap_or(0);
            let delta = value.saturating_sub(before);
            if delta > 0 {
                frame.counter_deltas.insert(name.clone(), delta);
            }
        }
        for (name, snap) in &cur.histograms {
            let before = self.prev.histograms.get(name);
            let mut window = *snap;
            if let Some(b) = before {
                for (i, bucket) in window.buckets.iter_mut().enumerate() {
                    *bucket = bucket.saturating_sub(b.buckets[i]);
                }
                window.count = window.count.saturating_sub(b.count);
                window.sum = window.sum.saturating_sub(b.sum);
            }
            if window.count > 0 {
                frame.quantiles.insert(
                    name.clone(),
                    WindowQuantiles {
                        count: window.count,
                        p50: window.quantile_interpolated(0.5).unwrap_or(0.0),
                        p99: window.quantile_interpolated(0.99).unwrap_or(0.0),
                    },
                );
            }
        }
        self.prev = cur;
        if self.frames.len() == self.capacity {
            self.frames.pop_front();
            self.dropped += 1;
        }
        let index = frame.index;
        self.frames.push_back(frame);
        self.next_index += 1;
        index
    }

    /// The retained frames, oldest first.
    pub fn frames(&self) -> impl Iterator<Item = &TimelineFrame> {
        self.frames.iter()
    }

    /// Frames currently retained.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether no frame has been retained.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Total frames ever sampled.
    pub fn total(&self) -> u64 {
        self.next_index
    }

    /// Frames evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the retained frames as one JSON object — the body of the
    /// `/timeline` scrape route and the `timeline` field of BENCH JSON:
    /// `{"total": …, "dropped": …, "frames": [{"index", "at", "counters",
    /// "gauges", "histograms": {name: {"count", "p50", "p99"}}}, …]}`.
    /// Hand-rolled like the registry's snapshot (names are identifier-like,
    /// values numeric).
    pub fn to_json(&self) -> String {
        let mut frames = Vec::with_capacity(self.frames.len());
        for f in &self.frames {
            let counters: Vec<String> = f
                .counter_deltas
                .iter()
                .map(|(n, v)| format!("\"{n}\": {v}"))
                .collect();
            let gauges: Vec<String> = f
                .gauges
                .iter()
                .map(|(n, v)| format!("\"{n}\": {v}"))
                .collect();
            let hists: Vec<String> = f
                .quantiles
                .iter()
                .map(|(n, q)| {
                    format!(
                        "\"{n}\": {{\"count\": {}, \"p50\": {:.3}, \"p99\": {:.3}}}",
                        q.count, q.p50, q.p99
                    )
                })
                .collect();
            frames.push(format!(
                "{{\"index\": {}, \"at\": {}, \"counters\": {{{}}}, \"gauges\": {{{}}}, \"histograms\": {{{}}}}}",
                f.index,
                f.at,
                counters.join(", "),
                gauges.join(", "),
                hists.join(", ")
            ));
        }
        format!(
            "{{\"total\": {}, \"dropped\": {}, \"frames\": [{}]}}",
            self.next_index,
            self.dropped,
            frames.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_carry_window_deltas_not_totals() {
        let reg = Registry::new();
        let mut tl = TimelineSampler::new(8);
        reg.counter("ops_total").add(5);
        reg.gauge("inflight").set(3);
        tl.sample(&reg, 100);
        reg.counter("ops_total").add(2);
        reg.gauge("inflight").set(1);
        tl.sample(&reg, 200);
        // A quiet window: nothing changed.
        tl.sample(&reg, 300);
        let frames: Vec<&TimelineFrame> = tl.frames().collect();
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0].counter_deltas["ops_total"], 5);
        assert_eq!(frames[1].counter_deltas["ops_total"], 2, "delta, not 7");
        assert_eq!(frames[1].gauges["inflight"], 1, "gauges are levels");
        assert!(frames[2].counter_deltas.is_empty(), "quiet windows omit");
        assert_eq!(frames[2].at, 300);
    }

    #[test]
    fn histogram_windows_report_per_window_quantiles() {
        let reg = Registry::new();
        let mut tl = TimelineSampler::new(8);
        let h = reg.histogram("latency");
        // Window 1: fast ops around 4 ticks.
        for _ in 0..50 {
            h.record(4);
        }
        tl.sample(&reg, 1);
        // Window 2: a slowdown to ~1000 ticks. Cumulative quantiles would
        // still answer "4"; the window must say ~1000.
        for _ in 0..50 {
            h.record(1000);
        }
        tl.sample(&reg, 2);
        let frames: Vec<&TimelineFrame> = tl.frames().collect();
        let w1 = frames[0].quantiles["latency"];
        let w2 = frames[1].quantiles["latency"];
        assert_eq!(w1.count, 50);
        assert_eq!(w2.count, 50);
        assert!(w1.p50 <= 4.0, "window 1 median is fast: {}", w1.p50);
        assert!(
            w2.p50 > 500.0,
            "window 2 median shows the spike: {}",
            w2.p50
        );
        // An idle histogram window disappears from the frame.
        tl.sample(&reg, 3);
        let last = tl.frames().last().unwrap();
        assert!(last.quantiles.is_empty());
    }

    #[test]
    fn ring_wraparound_keeps_newest_frames_and_counts_drops() {
        let reg = Registry::new();
        let mut tl = TimelineSampler::new(4);
        for i in 0..10 {
            reg.counter("ticks_total").inc();
            tl.sample(&reg, i);
        }
        assert_eq!(tl.len(), 4);
        assert_eq!(tl.total(), 10);
        assert_eq!(tl.dropped(), 6);
        let indices: Vec<u64> = tl.frames().map(|f| f.index).collect();
        assert_eq!(indices, vec![6, 7, 8, 9], "only the newest survive");
        // Deltas survive eviction intact: every retained frame saw one inc.
        assert!(tl.frames().all(|f| f.counter_deltas["ticks_total"] == 1));
        let json = tl.to_json();
        assert!(json.contains("\"total\": 10"));
        assert!(json.contains("\"dropped\": 6"));
        assert!(json.contains("\"index\": 9"));
        assert!(!json.contains("\"index\": 5"), "evicted frames are gone");
    }

    #[test]
    fn json_shape_is_stable() {
        let reg = Registry::new();
        let mut tl = TimelineSampler::new(2);
        reg.counter("a").inc();
        reg.histogram("h").record(7);
        tl.sample(&reg, 42);
        let json = tl.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"at\": 42"));
        assert!(json.contains("\"counters\": {\"a\": 1}"));
        assert!(json.contains("\"histograms\": {\"h\": {\"count\": 1, \"p50\":"));
    }
}
