//! The flight recorder: a bounded ring of recent probe events per node,
//! plus the [`RecordingProbe`] that feeds it (and the metrics registry).
//!
//! The recorder keeps the **newest** events: when the ring is full the
//! oldest event is evicted and counted in `dropped`. On a checker
//! violation, [`FlightRecorder::render`] (or [`NodeRecorders::dump`])
//! produces the post-mortem: the last thing each protocol layer did before
//! the property broke.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use lls_primitives::{LamportClock, ProcessId};

use crate::metrics::Registry;
use crate::probe::{Probe, ProbeEvent};

/// A probe event plus its global sequence number within one recorder
/// (monotonic; survives ring eviction, so gaps reveal what was lost) and
/// the node's Lamport clock at emission time — the event's causal position
/// across the whole cluster (0 when the substrate runs unstamped).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordedEvent {
    /// Position in the recorder's full event stream (0-based).
    pub seq: u64,
    /// The node's Lamport clock when the event was emitted (0 = unstamped).
    pub lamport: u64,
    /// The event.
    pub event: ProbeEvent,
}

/// A bounded ring buffer of the most recent [`ProbeEvent`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: VecDeque<RecordedEvent>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

impl FlightRecorder {
    /// A recorder keeping at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            ring: VecDeque::with_capacity(capacity),
            capacity,
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Appends one unstamped event (Lamport position 0), evicting the
    /// oldest if the ring is full.
    pub fn push(&mut self, event: ProbeEvent) {
        self.push_stamped(event, 0);
    }

    /// Appends one event with its Lamport-clock position, evicting the
    /// oldest if the ring is full.
    pub fn push_stamped(&mut self, event: ProbeEvent, lamport: u64) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(RecordedEvent {
            seq: self.next_seq,
            lamport,
            event,
        });
        self.next_seq += 1;
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &RecordedEvent> {
        self.ring.iter()
    }

    /// How many events are currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total events ever pushed.
    pub fn total(&self) -> u64 {
        self.next_seq
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// A human-readable dump: one line per retained event, oldest first,
    /// headed by the retention stats. This is the post-mortem artifact E16
    /// prints when a checker trips.
    pub fn render(&self) -> String {
        let mut out = format!(
            "flight recorder: {} events retained of {} total ({} evicted)\n",
            self.ring.len(),
            self.next_seq,
            self.dropped
        );
        for rec in &self.ring {
            out.push_str(&format!(
                "  #{:<6} L{:<8} {}\n",
                rec.seq, rec.lamport, rec.event
            ));
        }
        out
    }
}

/// A [`Probe`] that appends every event to a shared [`FlightRecorder`] and
/// bumps per-kind counters in an optional [`Registry`].
///
/// Cloning shares the same recorder — the embedding pattern (`Consensus`
/// hands a clone to its inner `CommEffOmega`) funnels all layers of one
/// node into one ring.
#[derive(Debug, Clone)]
pub struct RecordingProbe {
    recorder: Arc<Mutex<FlightRecorder>>,
    registry: Option<Arc<Registry>>,
    clock: Option<LamportClock>,
}

impl RecordingProbe {
    /// A probe over a fresh recorder of `capacity` events, with no metrics.
    pub fn new(capacity: usize) -> Self {
        RecordingProbe {
            recorder: Arc::new(Mutex::new(FlightRecorder::new(capacity))),
            registry: None,
            clock: None,
        }
    }

    /// A probe over an existing shared recorder, mirroring event counts
    /// into `registry` (as `probe_<kind>_total` counters).
    pub fn with_registry(recorder: Arc<Mutex<FlightRecorder>>, registry: Arc<Registry>) -> Self {
        RecordingProbe {
            recorder,
            registry: Some(registry),
            clock: None,
        }
    }

    /// Attaches the node's Lamport clock: every event recorded from now on
    /// carries the clock's current value as its causal position. The
    /// substrate must advance the *same* clock handle on send/receive.
    pub fn with_clock(mut self, clock: LamportClock) -> Self {
        self.clock = Some(clock);
        self
    }

    /// The shared recorder behind this probe.
    pub fn recorder(&self) -> Arc<Mutex<FlightRecorder>> {
        Arc::clone(&self.recorder)
    }

    /// Runs `f` over the recorder (convenience for assertions and dumps).
    pub fn with_recorder<R>(&self, f: impl FnOnce(&FlightRecorder) -> R) -> R {
        let guard = self.recorder.lock().unwrap_or_else(|e| e.into_inner());
        f(&guard)
    }
}

impl Probe for RecordingProbe {
    fn emit(&self, event: ProbeEvent) {
        if let Some(registry) = &self.registry {
            registry
                .counter(&format!("probe_{}_total", event.kind()))
                .inc();
            // Recovery-cost metrics keep their own stable families on top of
            // the per-kind counters: these are the quantities the snapshot
            // subsystem exists to bound, scraped as-is from `/metrics`.
            match event {
                ProbeEvent::RecoveryReplay { bytes, .. } => {
                    registry.counter("recovery_replay_bytes").add(bytes);
                }
                ProbeEvent::SnapshotInstall { .. } => {
                    registry.counter("snapshot_install_total").inc();
                }
                ProbeEvent::SnapshotWrite { live_bytes, .. } => {
                    registry.gauge("wal_live_bytes").set(live_bytes as i64);
                }
                // Group-commit flush timing feeds a histogram the timeline
                // and the watchdog's fsync-spike detector both read.
                ProbeEvent::WalFsync { micros, .. } => {
                    registry.histogram("wal_fsync_micros").record(micros);
                }
                // Read-path mix: one counter per serving mode, so the E23
                // gate can assert fast reads actually took the fast path.
                ProbeEvent::ReadServed { mode, .. } => {
                    registry
                        .counter(&format!("read_path_{}_total", mode.label()))
                        .inc();
                }
                _ => {}
            }
        }
        let lamport = self.clock.as_ref().map_or(0, LamportClock::now);
        let mut recorder = self.recorder.lock().unwrap_or_else(|e| e.into_inner());
        recorder.push_stamped(event, lamport);
    }
}

/// One flight recorder per process plus one shared registry: the bundle a
/// substrate harness owns for a whole cluster.
#[derive(Debug)]
pub struct NodeRecorders {
    recorders: Vec<Arc<Mutex<FlightRecorder>>>,
    registry: Arc<Registry>,
    clocks: Vec<LamportClock>,
}

impl NodeRecorders {
    /// Recorders for `n` processes, each retaining `capacity` events, plus
    /// one Lamport clock per process (trace id = process index by default).
    pub fn new(n: usize, capacity: usize) -> Self {
        NodeRecorders {
            recorders: (0..n)
                .map(|_| Arc::new(Mutex::new(FlightRecorder::new(capacity))))
                .collect(),
            registry: Arc::new(Registry::new()),
            clocks: (0..n).map(|p| LamportClock::new(p as u64)).collect(),
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.recorders.len()
    }

    /// The shared metrics registry all probes feed.
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// A probe wired to process `p`'s recorder and the shared registry —
    /// hand (clones of) this to every incarnation of `p`'s state machine,
    /// so a restarted process keeps appending to the same ring.
    pub fn probe_for(&self, p: ProcessId) -> RecordingProbe {
        RecordingProbe::with_registry(
            Arc::clone(&self.recorders[p.as_usize()]),
            Arc::clone(&self.registry),
        )
        .with_clock(self.clock_for(p))
    }

    /// A handle to process `p`'s Lamport clock — hand this to the substrate
    /// so sends/receives advance the same clock the probes read.
    pub fn clock_for(&self, p: ProcessId) -> LamportClock {
        self.clocks[p.as_usize()].clone()
    }

    /// Handles to every process's clock, in process order.
    pub fn clocks(&self) -> Vec<LamportClock> {
        self.clocks.clone()
    }

    /// Post-mortem dump of process `p`'s ring.
    pub fn dump(&self, p: ProcessId) -> String {
        let guard = self.recorders[p.as_usize()]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        format!("--- node {p} ---\n{}", guard.render())
    }

    /// On-demand post-mortem of *every* ring — the dump path for operator
    /// inspection (wirenet's `/flight` endpoint, `kv_over_tcp` shutdown)
    /// rather than checker violations.
    pub fn dump_all(&self) -> String {
        (0..self.recorders.len())
            .map(|p| self.dump(ProcessId(p as u32)))
            .collect::<Vec<_>>()
            .join("")
    }

    /// The retained events of every process, oldest first per process.
    pub fn all_events(&self) -> Vec<Vec<RecordedEvent>> {
        (0..self.recorders.len())
            .map(|p| self.events_of(ProcessId(p as u32)))
            .collect()
    }

    /// The retained events of process `p`, oldest first.
    pub fn events_of(&self, p: ProcessId) -> Vec<RecordedEvent> {
        let guard = self.recorders[p.as_usize()]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        guard.events().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lls_primitives::Instant;

    fn ev(node: u32, slot: u64) -> ProbeEvent {
        ProbeEvent::Decide {
            node: ProcessId(node),
            at: Instant::from_ticks(slot),
            slot,
        }
    }

    #[test]
    fn ring_wraparound_retains_newest() {
        let mut rec = FlightRecorder::new(3);
        for slot in 0..10 {
            rec.push(ev(0, slot));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.total(), 10);
        assert_eq!(rec.dropped(), 7);
        let kept: Vec<u64> = rec.events().map(|r| r.seq).collect();
        assert_eq!(kept, vec![7, 8, 9], "only the newest survive");
        let slots: Vec<u64> = rec
            .events()
            .map(|r| match r.event {
                ProbeEvent::Decide { slot, .. } => slot,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(slots, vec![7, 8, 9]);
        let dump = rec.render();
        assert!(dump.contains("3 events retained of 10 total (7 evicted)"));
        assert!(dump.contains("#9"));
    }

    #[test]
    fn recording_probe_feeds_ring_and_registry() {
        let bundle = NodeRecorders::new(2, 8);
        let probe = bundle.probe_for(ProcessId(1));
        let clone = probe.clone();
        probe.emit(ev(1, 0));
        clone.emit(ev(1, 1));
        assert_eq!(bundle.events_of(ProcessId(1)).len(), 2, "clones share");
        assert!(bundle.events_of(ProcessId(0)).is_empty());
        assert_eq!(bundle.registry().counter_value("probe_decide_total"), 2);
        assert!(bundle.dump(ProcessId(1)).contains("node p1"));
    }

    #[test]
    fn probe_stamps_events_with_the_node_clock() {
        let bundle = NodeRecorders::new(2, 8);
        let probe = bundle.probe_for(ProcessId(0));
        probe.emit(ev(0, 0));
        // A receive merged into the clock moves later events forward.
        bundle.clock_for(ProcessId(0)).observe(41);
        probe.emit(ev(0, 1));
        let evs = bundle.events_of(ProcessId(0));
        assert_eq!(evs[0].lamport, 0, "before any clock activity");
        assert_eq!(evs[1].lamport, 42, "after merging stamp 41");
        let dump = bundle.dump_all();
        assert!(dump.contains("node p0") && dump.contains("node p1"));
        assert!(dump.contains("L42"));
        assert_eq!(bundle.all_events().len(), 2);
    }
}
