//! Flight-recorder observability for the limited-link-synchrony protocols.
//!
//! The paper's headline claims are *observational*: after stabilization
//! only the leader's n−1 links carry traffic, accusation counters stop
//! climbing, and elections settle inside a bounded window. This crate turns
//! those claims into live signals, with three pieces:
//!
//! * **[`Probe`]** — a typed event sink every protocol state machine
//!   accepts as a type parameter (defaulting to [`NoopProbe`], which
//!   monomorphizes to nothing). Machines emit [`ProbeEvent`]s at exactly
//!   the paper-meaningful transitions: leader changes, accusations sent and
//!   absorbed, incarnation bumps, timeout adaptations, ballot phase
//!   transitions, decisions, and WAL append/recover/wedge.
//! * **[`Registry`]** — a lock-light metrics registry (atomic
//!   [`Counter`]s, [`Gauge`]s, fixed-bucket log-scale [`Histogram`]s) with
//!   Prometheus text exposition and a JSON snapshot. Substrate accounting
//!   (`netsim` stats, `threadnet` reports, `wirenet` socket counters)
//!   exports into the same table, so one scrape shows protocol events next
//!   to wire traffic.
//! * **[`FlightRecorder`]** — a bounded per-node ring of recent events,
//!   fed by [`RecordingProbe`] and bundled per-cluster by
//!   [`NodeRecorders`]. When a checker trips, the ring *is* the
//!   post-mortem: the last things each node did before the property broke.
//! * **[`trace`]** — cross-node span reconstruction: every recorded event
//!   carries the node's Lamport clock (advanced by the substrates on each
//!   send/receive), and [`reconstruct_spans`] stitches the per-node streams
//!   into accusation→counter-bump→leader-change and phase→quorum-decide
//!   chains with causal depth and tick latency.
//! * **[`Watchdog`]** — an online invariant monitor over the live probe
//!   stream: once armed (stabilization declared) it raises structured
//!   [`Alarm`]s — flight dump attached — the moment a steady-state property
//!   (no flaps, flat accusation counters, leader-only senders) degrades,
//!   plus stage-stall detectors over the command path (fsync p99 spikes,
//!   batch-seal stalls, catch-up stalls).
//! * **[`lifecycle`]** — per-command latency attribution: reconstructs each
//!   client command's critical path from its [`probe::CmdStage`] events
//!   (enqueue → … → reply) and folds the telescoping per-stage deltas into
//!   per-shard log2 histograms; E22 gates on the attribution summing to the
//!   independently measured end-to-end latency.
//! * **[`timeline`]** — a bounded-ring time-series sampler: periodic
//!   registry snapshots diffed into frames of per-window counter rates and
//!   interpolated p50/p99, served live by wirenet's `/timeline` route and
//!   embedded in `BENCH_E*.json`.
//!
//! # Example
//!
//! ```
//! use lls_obs::{NodeRecorders, Probe, ProbeEvent};
//! use lls_primitives::{Instant, ProcessId};
//!
//! let bundle = NodeRecorders::new(3, 64);
//! let probe = bundle.probe_for(ProcessId(0));
//! probe.emit(ProbeEvent::LeaderChange {
//!     node: ProcessId(0),
//!     at: Instant::from_ticks(42),
//!     leader: ProcessId(2),
//! });
//! assert_eq!(bundle.registry().counter_value("probe_leader_change_total"), 1);
//! println!("{}", bundle.dump(ProcessId(0)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod lifecycle;
pub mod metrics;
pub mod probe;
pub mod recorder;
pub mod timeline;
pub mod trace;
pub mod watchdog;

pub use lifecycle::{attribute, fold_into_registry, reconstruct_paths, Attribution, CmdPath};
pub use metrics::{
    aggregate_shard_registries, Counter, Gauge, Histogram, HistogramSnapshot, Registry,
    RegistrySnapshot, HISTOGRAM_BUCKETS,
};
pub use probe::{CmdId, CmdStage, NoopProbe, Probe, ProbeEvent, ReadMode};
pub use recorder::{FlightRecorder, NodeRecorders, RecordedEvent, RecordingProbe};
pub use timeline::{TimelineFrame, TimelineSampler, WindowQuantiles};
pub use trace::{reconstruct_spans, spans_json, SpanHop, SpanKind, SpanRecord};
pub use watchdog::{Alarm, AlarmKind, Watchdog, WatchdogConfig, WatchdogProbe};
