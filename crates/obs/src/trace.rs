//! Cross-node span reconstruction from Lamport-stamped probe streams.
//!
//! Each node's flight recorder yields a stream of [`RecordedEvent`]s whose
//! `lamport` field is the node's Lamport clock at emission time (advanced
//! by the substrate on every send and receive). Because the clocks respect
//! happens-before, events connected by a message chain have strictly
//! increasing Lamport values — which is exactly what lets a post-hoc pass
//! stitch per-node streams into *cross-node spans*:
//!
//! * **election spans** — accusation (`ACCUSE` at the accuser) → counter
//!   bump (`ACCUSED` at the suspect, when it was reachable) → leader change
//!   (at each observer),
//! * **decide spans** — ballot/round phase entry at the proposer → the
//!   `DECIDE` events of one slot across the quorum.
//!
//! Reconstruction is heuristic in one honest way: Lamport order is a
//! *superset* of causality (`a → b ⇒ L(a) < L(b)`, not the converse), so a
//! reconstructed chain is causally **consistent** — no hop happens-after a
//! later hop — but a hop pair with increasing clocks is not proof that a
//! message traveled between them. The paper's claims are about eventual
//! global properties, not individual packets; span latencies here are an
//! observability aid, not a verified causal proof. See DESIGN.md row 20.

use lls_primitives::{Instant, ProcessId};
use std::fmt;

use crate::probe::ProbeEvent;
use crate::recorder::RecordedEvent;

/// What kind of cross-node chain a span describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Accusation → counter bump → leader change.
    Election,
    /// Phase entry → quorum decide.
    Decide,
}

impl fmt::Display for SpanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SpanKind::Election => "election",
            SpanKind::Decide => "decide",
        })
    }
}

/// One event participating in a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanHop {
    /// The node the event was recorded on.
    pub node: ProcessId,
    /// The node's Lamport clock at emission.
    pub lamport: u64,
    /// Virtual/substrate time of the event, when the emitting handler had a
    /// clock.
    pub at: Option<Instant>,
    /// Role of this hop in the chain (`accuse`, `counter_bump`,
    /// `leader_change`, `phase`, `decide`).
    pub label: &'static str,
}

/// A reconstructed cross-node chain, hops in causal (Lamport) order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// What chain this is.
    pub kind: SpanKind,
    /// The participating events, root first.
    pub hops: Vec<SpanHop>,
}

impl SpanRecord {
    /// The root hop (the cause end of the chain).
    pub fn start(&self) -> &SpanHop {
        &self.hops[0]
    }

    /// The final hop (the effect end of the chain).
    pub fn end(&self) -> &SpanHop {
        self.hops.last().expect("spans have at least one hop")
    }

    /// Lamport distance from root to final hop — how many causal steps the
    /// chain spans (lower bound on messages + local events in between).
    pub fn causal_depth(&self) -> u64 {
        self.end().lamport.saturating_sub(self.start().lamport)
    }

    /// Tick latency from root to final hop, when both carry a time.
    /// On netsim these are virtual ticks; on threadnet/wirenet whatever
    /// the harness mapped real time onto.
    pub fn latency_ticks(&self) -> Option<u64> {
        match (self.start().at, self.end().at) {
            (Some(a), Some(b)) => Some(b.ticks().saturating_sub(a.ticks())),
            _ => None,
        }
    }

    /// Whether the chain respects happens-before: Lamport values never
    /// decrease along the chain and strictly increase whenever consecutive
    /// hops sit on different nodes (a cross-node step needs a message, and
    /// the receive merge makes the receiver's clock strictly larger). This
    /// is E18's "no span with receive before send" acceptance check.
    pub fn causally_ordered(&self) -> bool {
        self.hops.windows(2).all(|w| {
            if w[0].node == w[1].node {
                w[1].lamport >= w[0].lamport
            } else {
                w[1].lamport > w[0].lamport
            }
        })
    }

    /// The span as one JSON object (hand-rolled; labels are static
    /// identifiers, nothing needs escaping).
    pub fn render_json(&self) -> String {
        let hops: Vec<String> = self
            .hops
            .iter()
            .map(|h| {
                format!(
                    "{{\"node\": {}, \"lamport\": {}, \"at\": {}, \"label\": \"{}\"}}",
                    h.node.0,
                    h.lamport,
                    h.at.map_or_else(|| "null".to_owned(), |t| t.ticks().to_string()),
                    h.label
                )
            })
            .collect();
        format!(
            "{{\"kind\": \"{}\", \"causal_depth\": {}, \"latency_ticks\": {}, \"hops\": [{}]}}",
            self.kind,
            self.causal_depth(),
            self.latency_ticks()
                .map_or_else(|| "null".to_owned(), |t| t.to_string()),
            hops.join(", ")
        )
    }
}

/// Renders a batch of spans as one JSON array (the `/spans` endpoint body).
pub fn spans_json(spans: &[SpanRecord]) -> String {
    let items: Vec<String> = spans.iter().map(SpanRecord::render_json).collect();
    format!("[{}]", items.join(", "))
}

/// Reconstructs election and decide spans from the per-node event streams
/// (index = process id, events oldest first, as returned by
/// [`NodeRecorders::all_events`](crate::recorder::NodeRecorders::all_events)).
pub fn reconstruct_spans(events_by_node: &[Vec<RecordedEvent>]) -> Vec<SpanRecord> {
    let mut spans = election_spans(events_by_node);
    spans.extend(decide_spans(events_by_node));
    spans
}

fn hop(node: ProcessId, rec: &RecordedEvent, label: &'static str) -> SpanHop {
    SpanHop {
        node,
        lamport: rec.lamport,
        at: rec.event.at(),
        label,
    }
}

/// One span per observed leader *change* (a node replacing a previously
/// trusted leader): root = the earliest accusation against the old leader
/// that could have caused it, middle = the old leader's counter bump when
/// one sits causally between, end = the observer's switch.
fn election_spans(events_by_node: &[Vec<RecordedEvent>]) -> Vec<SpanRecord> {
    // Flatten accusations and bumps once; both are searched per change.
    let mut accusations: Vec<(ProcessId, RecordedEvent, ProcessId)> = Vec::new();
    let mut bumps: Vec<(ProcessId, RecordedEvent)> = Vec::new();
    for (p, stream) in events_by_node.iter().enumerate() {
        let node = ProcessId(p as u32);
        for rec in stream {
            match rec.event {
                ProbeEvent::AccusationSent { suspect, .. } => {
                    accusations.push((node, *rec, suspect));
                }
                ProbeEvent::AccusationAbsorbed { .. } => bumps.push((node, *rec)),
                _ => {}
            }
        }
    }

    let mut spans = Vec::new();
    for (p, stream) in events_by_node.iter().enumerate() {
        let observer = ProcessId(p as u32);
        let mut prev: Option<(ProcessId, u64)> = None; // (leader, lamport)
        for rec in stream {
            let ProbeEvent::LeaderChange { leader, .. } = rec.event else {
                continue;
            };
            let Some((old, prev_lamport)) = prev.replace((leader, rec.lamport)) else {
                // The first LeaderChange establishes the initial leader —
                // nothing was demoted, so there is no chain to trace.
                continue;
            };
            if old == leader {
                continue;
            }
            // Root: earliest accusation against the demoted leader that is
            // causally inside this observer's (previous change, change]
            // window. Strictly before the observer's switch: a cross-node
            // cause needs a message, so equality would break causality.
            let root = accusations
                .iter()
                .filter(|(_, arec, suspect)| {
                    *suspect == old && arec.lamport < rec.lamport && arec.lamport > prev_lamport
                })
                .min_by_key(|(_, arec, _)| arec.lamport);
            let Some((accuser, accuse_rec, _)) = root else {
                continue; // spontaneous switch (e.g. startup churn): no span
            };
            let mut hops = vec![hop(*accuser, accuse_rec, "accuse")];
            // Middle: the demoted leader's counter bump, when one sits
            // causally between the accusation and the switch.
            let bump = bumps
                .iter()
                .filter(|(bn, brec)| {
                    *bn == old && brec.lamport > accuse_rec.lamport && brec.lamport < rec.lamport
                })
                .min_by_key(|(_, brec)| brec.lamport);
            if let Some((bn, brec)) = bump {
                hops.push(hop(*bn, brec, "counter_bump"));
            }
            hops.push(hop(observer, rec, "leader_change"));
            spans.push(SpanRecord {
                kind: SpanKind::Election,
                hops,
            });
        }
    }
    spans
}

/// One span per decided slot: root = the latest phase entry that
/// happens-before the slot's first decide, then every node's decide for
/// that slot in Lamport order.
fn decide_spans(events_by_node: &[Vec<RecordedEvent>]) -> Vec<SpanRecord> {
    let mut phases: Vec<(ProcessId, RecordedEvent)> = Vec::new();
    let mut decides: std::collections::BTreeMap<u64, Vec<(ProcessId, RecordedEvent)>> =
        std::collections::BTreeMap::new();
    for (p, stream) in events_by_node.iter().enumerate() {
        let node = ProcessId(p as u32);
        for rec in stream {
            match rec.event {
                ProbeEvent::PhaseEnter { .. } => phases.push((node, *rec)),
                ProbeEvent::Decide { slot, .. } => {
                    decides.entry(slot).or_default().push((node, *rec));
                }
                _ => {}
            }
        }
    }

    let mut spans = Vec::new();
    for (_slot, mut slot_decides) in decides {
        slot_decides.sort_by_key(|(_, rec)| rec.lamport);
        let first = &slot_decides[0];
        // The proposal phase that led here: the latest phase entry still
        // strictly happens-before the first decide (on another node), or
        // at/below it on the decider itself (a self-deciding proposer logs
        // the phase and the decide in one handler, same clock value).
        let root = phases
            .iter()
            .filter(|(pn, prec)| {
                prec.lamport < first.1.lamport
                    || (*pn == first.0 && prec.lamport == first.1.lamport && prec.seq < first.1.seq)
            })
            .max_by_key(|(_, prec)| (prec.lamport, prec.seq));
        let mut hops = Vec::new();
        if let Some((pn, prec)) = root {
            hops.push(hop(*pn, prec, "phase"));
        }
        for (dn, drec) in &slot_decides {
            hops.push(hop(*dn, drec, "decide"));
        }
        spans.push(SpanRecord {
            kind: SpanKind::Decide,
            hops,
        });
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, lamport: u64, event: ProbeEvent) -> RecordedEvent {
        RecordedEvent {
            seq,
            lamport,
            event,
        }
    }

    fn t(ticks: u64) -> Instant {
        Instant::from_ticks(ticks)
    }

    /// Hand-built three-node election: p1 accuses p0, p0 bumps its counter,
    /// p1 and p2 switch to p1.
    #[test]
    fn election_span_is_reconstructed_across_nodes() {
        let p0 = ProcessId(0);
        let p1 = ProcessId(1);
        let p2 = ProcessId(2);
        let streams = vec![
            // p0: initial leader self-view, then absorbs the accusation.
            vec![
                rec(
                    0,
                    1,
                    ProbeEvent::LeaderChange {
                        node: p0,
                        at: t(0),
                        leader: p0,
                    },
                ),
                rec(
                    1,
                    12,
                    ProbeEvent::AccusationAbsorbed {
                        node: p0,
                        at: t(30),
                        new_counter: 1,
                    },
                ),
            ],
            // p1: trusts p0, times out, accuses, switches to itself.
            vec![
                rec(
                    0,
                    2,
                    ProbeEvent::LeaderChange {
                        node: p1,
                        at: t(0),
                        leader: p0,
                    },
                ),
                rec(
                    1,
                    10,
                    ProbeEvent::AccusationSent {
                        node: p1,
                        at: t(25),
                        suspect: p0,
                        phase: 0,
                    },
                ),
                rec(
                    2,
                    20,
                    ProbeEvent::LeaderChange {
                        node: p1,
                        at: t(40),
                        leader: p1,
                    },
                ),
            ],
            // p2: trusts p0, then learns and follows p1.
            vec![
                rec(
                    0,
                    2,
                    ProbeEvent::LeaderChange {
                        node: p2,
                        at: t(0),
                        leader: p0,
                    },
                ),
                rec(
                    1,
                    25,
                    ProbeEvent::LeaderChange {
                        node: p2,
                        at: t(45),
                        leader: p1,
                    },
                ),
            ],
        ];
        let spans = election_spans(&streams);
        assert_eq!(spans.len(), 2, "one span per observer that switched");
        for s in &spans {
            assert!(s.causally_ordered(), "bad span {s:?}");
            assert_eq!(s.start().label, "accuse");
            assert_eq!(s.start().node, p1);
            assert_eq!(s.end().label, "leader_change");
            assert_eq!(s.hops[1].label, "counter_bump");
            assert_eq!(s.hops[1].node, p0);
        }
        // p2's view: accuse@10 → bump@12 → change@25, depth 15, 20 ticks.
        let s2 = spans.iter().find(|s| s.end().node == p2).expect("p2 span");
        assert_eq!(s2.causal_depth(), 15);
        assert_eq!(s2.latency_ticks(), Some(20));
        let json = spans_json(&spans);
        assert!(json.starts_with('[') && json.contains("\"kind\": \"election\""));
    }

    #[test]
    fn initial_election_without_accusations_yields_no_span() {
        let p0 = ProcessId(0);
        let streams = vec![vec![
            rec(
                0,
                1,
                ProbeEvent::LeaderChange {
                    node: p0,
                    at: t(0),
                    leader: p0,
                },
            ),
            rec(
                1,
                2,
                ProbeEvent::LeaderChange {
                    node: p0,
                    at: t(1),
                    leader: ProcessId(1),
                },
            ),
        ]];
        assert!(election_spans(&streams).is_empty());
    }

    #[test]
    fn decide_span_groups_one_slot_across_the_quorum() {
        let p0 = ProcessId(0);
        let p1 = ProcessId(1);
        let streams = vec![
            vec![
                rec(
                    0,
                    5,
                    ProbeEvent::PhaseEnter {
                        node: p0,
                        at: t(10),
                        label: "accept",
                        number: 1,
                    },
                ),
                rec(
                    1,
                    9,
                    ProbeEvent::Decide {
                        node: p0,
                        at: t(14),
                        slot: 0,
                    },
                ),
            ],
            vec![rec(
                0,
                8,
                ProbeEvent::Decide {
                    node: p1,
                    at: t(13),
                    slot: 0,
                },
            )],
        ];
        let spans = decide_spans(&streams);
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert!(s.causally_ordered(), "bad span {s:?}");
        assert_eq!(s.start().label, "phase");
        assert_eq!(s.hops.len(), 3);
        assert_eq!(s.end().node, p0, "latest decide ends the span");
        assert_eq!(s.causal_depth(), 4);
    }

    #[test]
    fn causal_order_check_rejects_receive_before_send() {
        let bad = SpanRecord {
            kind: SpanKind::Election,
            hops: vec![
                SpanHop {
                    node: ProcessId(0),
                    lamport: 10,
                    at: None,
                    label: "accuse",
                },
                SpanHop {
                    node: ProcessId(1),
                    lamport: 10, // equal across nodes = impossible causality
                    at: None,
                    label: "leader_change",
                },
            ],
        };
        assert!(!bad.causally_ordered());
    }
}
