//! Typed protocol probes.
//!
//! Every protocol state machine in the workspace (`CommEffOmega`, the
//! consensus machines, the replicated KV store) accepts a [`Probe`] type
//! parameter defaulting to [`NoopProbe`]. At the points where the *paper's*
//! state changes — a leader change, an accusation, an incarnation bump, a
//! ballot phase transition, a decision, a WAL append — the machine calls
//! [`Probe::emit`] with a [`ProbeEvent`]. With the default `NoopProbe` the
//! call monomorphizes to an empty inline function and the protocol code is
//! exactly as fast as before; with a recording probe the events land in a
//! flight recorder and a metrics registry (see [`crate::recorder`]).

use lls_primitives::{Duration, Instant, ProcessId};
use std::fmt;

/// One structured protocol event, tagged with the emitting process.
///
/// Events emitted from message/timer handlers carry the virtual time `at`
/// (the handler's `ctx.now()`); events emitted from construction or
/// persistence paths — which run outside any handler and have no clock —
/// omit it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeEvent {
    /// The process's `leader()` output changed.
    LeaderChange {
        /// Emitting process.
        node: ProcessId,
        /// Virtual time of the change.
        at: Instant,
        /// The newly trusted leader.
        leader: ProcessId,
    },
    /// The process timed out on its leader and sent an `ACCUSE` to it.
    AccusationSent {
        /// Emitting process.
        node: ProcessId,
        /// Virtual time of the accusation.
        at: Instant,
        /// The accused (current leader candidate).
        suspect: ProcessId,
        /// The phase the accusation is tagged with (the suspect's counter
        /// as known here — what makes accusations idempotent per phase).
        phase: u64,
    },
    /// The process absorbed a valid accusation against itself and bumped
    /// its own accusation counter.
    AccusationAbsorbed {
        /// Emitting process.
        node: ProcessId,
        /// Virtual time of the bump.
        at: Instant,
        /// The counter value after the bump.
        new_counter: u64,
    },
    /// A restarted process rejoined with its persisted counter bumped once
    /// (the crash–restart incarnation bump; no clock exists yet).
    IncarnationBump {
        /// Emitting process.
        node: ProcessId,
        /// The counter the new incarnation boots with.
        counter: u64,
    },
    /// A premature suspicion grew the timeout for a suspect.
    TimeoutAdapt {
        /// Emitting process.
        node: ProcessId,
        /// Virtual time of the adaptation.
        at: Instant,
        /// Whose timeout grew.
        suspect: ProcessId,
        /// The new timeout value.
        timeout: Duration,
    },
    /// A consensus machine entered a protocol phase (ballot phase
    /// transition, leadership assumption, round entry).
    PhaseEnter {
        /// Emitting process.
        node: ProcessId,
        /// Virtual time of the transition.
        at: Instant,
        /// Which phase: `"prepare"`, `"accept"`, `"led"`, `"follower"`,
        /// `"round"`.
        label: &'static str,
        /// The ballot (or round) number driving the transition.
        number: u64,
    },
    /// A value was decided (slot 0 for single-shot consensus; the log slot
    /// for the replicated machines).
    Decide {
        /// Emitting process.
        node: ProcessId,
        /// Virtual time of the decision.
        at: Instant,
        /// Which slot decided.
        slot: u64,
    },
    /// A batched slot committed, carrying several client commands at once
    /// (the throughput path measured by E19). Emitted *in addition to* the
    /// per-slot [`ProbeEvent::Decide`].
    BatchCommit {
        /// Emitting process.
        node: ProcessId,
        /// Virtual time of the commit.
        at: Instant,
        /// Which slot committed.
        slot: u64,
        /// How many client commands the batch carried.
        cmds: u64,
    },
    /// One record was appended to the write-ahead log (no clock: persistence
    /// runs inside the mutating handler, timing belongs to the handler's
    /// own events).
    WalAppend {
        /// Emitting process.
        node: ProcessId,
    },
    /// A fresh incarnation replayed its write-ahead log on construction.
    WalRecover {
        /// Emitting process.
        node: ProcessId,
        /// How many records the recovery scan yielded.
        records: u64,
    },
    /// A WAL append failed and the machine wedged itself (broken disk =
    /// crashed process).
    WalWedge {
        /// Emitting process.
        node: ProcessId,
    },
    /// A snapshot was durably written and the WAL compacted behind its
    /// watermark (no clock: compaction runs on the persistence path).
    SnapshotWrite {
        /// Emitting process.
        node: ProcessId,
        /// First slot not covered by the snapshot.
        watermark: u64,
        /// Bytes the WAL retains after compaction (feeds the
        /// `wal_live_bytes` gauge).
        live_bytes: u64,
    },
    /// A snapshot received by state transfer was installed, replacing the
    /// local log prefix below its watermark.
    SnapshotInstall {
        /// Emitting process.
        node: ProcessId,
        /// Virtual time of the install.
        at: Instant,
        /// First slot not covered by the snapshot.
        watermark: u64,
    },
    /// A fresh incarnation replayed this many WAL bytes on construction
    /// (the quantity snapshots are meant to bound; feeds the
    /// `recovery_replay_bytes` counter).
    RecoveryReplay {
        /// Emitting process.
        node: ProcessId,
        /// Bytes of records the recovery scan decoded.
        bytes: u64,
    },
}

impl ProbeEvent {
    /// The emitting process.
    pub fn node(&self) -> ProcessId {
        match *self {
            ProbeEvent::LeaderChange { node, .. }
            | ProbeEvent::AccusationSent { node, .. }
            | ProbeEvent::AccusationAbsorbed { node, .. }
            | ProbeEvent::IncarnationBump { node, .. }
            | ProbeEvent::TimeoutAdapt { node, .. }
            | ProbeEvent::PhaseEnter { node, .. }
            | ProbeEvent::Decide { node, .. }
            | ProbeEvent::BatchCommit { node, .. }
            | ProbeEvent::WalAppend { node }
            | ProbeEvent::WalRecover { node, .. }
            | ProbeEvent::WalWedge { node }
            | ProbeEvent::SnapshotWrite { node, .. }
            | ProbeEvent::SnapshotInstall { node, .. }
            | ProbeEvent::RecoveryReplay { node, .. } => node,
        }
    }

    /// Virtual time of the event, when it was emitted from a clocked
    /// handler.
    pub fn at(&self) -> Option<Instant> {
        match *self {
            ProbeEvent::LeaderChange { at, .. }
            | ProbeEvent::AccusationSent { at, .. }
            | ProbeEvent::AccusationAbsorbed { at, .. }
            | ProbeEvent::TimeoutAdapt { at, .. }
            | ProbeEvent::PhaseEnter { at, .. }
            | ProbeEvent::Decide { at, .. }
            | ProbeEvent::BatchCommit { at, .. }
            | ProbeEvent::SnapshotInstall { at, .. } => Some(at),
            ProbeEvent::IncarnationBump { .. }
            | ProbeEvent::WalAppend { .. }
            | ProbeEvent::WalRecover { .. }
            | ProbeEvent::WalWedge { .. }
            | ProbeEvent::SnapshotWrite { .. }
            | ProbeEvent::RecoveryReplay { .. } => None,
        }
    }

    /// A stable snake-case tag for the event kind — the key the recording
    /// probe uses for per-kind metric counters.
    pub fn kind(&self) -> &'static str {
        match self {
            ProbeEvent::LeaderChange { .. } => "leader_change",
            ProbeEvent::AccusationSent { .. } => "accusation_sent",
            ProbeEvent::AccusationAbsorbed { .. } => "accusation_absorbed",
            ProbeEvent::IncarnationBump { .. } => "incarnation_bump",
            ProbeEvent::TimeoutAdapt { .. } => "timeout_adapt",
            ProbeEvent::PhaseEnter { .. } => "phase_enter",
            ProbeEvent::Decide { .. } => "decide",
            ProbeEvent::BatchCommit { .. } => "batch_commit",
            ProbeEvent::WalAppend { .. } => "wal_append",
            ProbeEvent::WalRecover { .. } => "wal_recover",
            ProbeEvent::WalWedge { .. } => "wal_wedge",
            ProbeEvent::SnapshotWrite { .. } => "snapshot_write",
            ProbeEvent::SnapshotInstall { .. } => "snapshot_install",
            ProbeEvent::RecoveryReplay { .. } => "recovery_replay",
        }
    }
}

impl fmt::Display for ProbeEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ProbeEvent::LeaderChange { node, at, leader } => {
                write!(f, "{at} {node} LEADER    -> {leader}")
            }
            ProbeEvent::AccusationSent {
                node,
                at,
                suspect,
                phase,
            } => write!(f, "{at} {node} ACCUSE    {suspect} phase={phase}"),
            ProbeEvent::AccusationAbsorbed {
                node,
                at,
                new_counter,
            } => write!(f, "{at} {node} ACCUSED   counter={new_counter}"),
            ProbeEvent::IncarnationBump { node, counter } => {
                write!(f, "---- {node} REINCARNATE counter={counter}")
            }
            ProbeEvent::TimeoutAdapt {
                node,
                at,
                suspect,
                timeout,
            } => write!(f, "{at} {node} TIMEOUT   {suspect} -> {timeout}"),
            ProbeEvent::PhaseEnter {
                node,
                at,
                label,
                number,
            } => write!(f, "{at} {node} PHASE     {label} #{number}"),
            ProbeEvent::Decide { node, at, slot } => {
                write!(f, "{at} {node} DECIDE    slot={slot}")
            }
            ProbeEvent::BatchCommit {
                node,
                at,
                slot,
                cmds,
            } => write!(f, "{at} {node} BATCH     slot={slot} cmds={cmds}"),
            ProbeEvent::WalAppend { node } => write!(f, "---- {node} WAL-APPEND"),
            ProbeEvent::WalRecover { node, records } => {
                write!(f, "---- {node} WAL-RECOVER records={records}")
            }
            ProbeEvent::WalWedge { node } => write!(f, "---- {node} WAL-WEDGE"),
            ProbeEvent::SnapshotWrite {
                node,
                watermark,
                live_bytes,
            } => write!(
                f,
                "---- {node} SNAP-WRITE watermark={watermark} live_bytes={live_bytes}"
            ),
            ProbeEvent::SnapshotInstall {
                node,
                at,
                watermark,
            } => write!(f, "{at} {node} SNAP-INSTALL watermark={watermark}"),
            ProbeEvent::RecoveryReplay { node, bytes } => {
                write!(f, "---- {node} WAL-REPLAY bytes={bytes}")
            }
        }
    }
}

/// A sink for [`ProbeEvent`]s, passed *by value* into each state machine.
///
/// `emit` takes `&self` so one recorder can be shared (via `Arc`) among a
/// machine and the nested machines it drives — `Consensus` clones its probe
/// into the embedded `CommEffOmega`, so one recorder sees both layers.
pub trait Probe: Clone + Send + fmt::Debug + 'static {
    /// Records one event. Must be cheap and non-blocking; called from inside
    /// protocol handlers.
    fn emit(&self, event: ProbeEvent);
}

/// The default probe: does nothing, costs nothing. Monomorphization turns
/// every `probe.emit(..)` through this type into an empty inline call that
/// the optimizer deletes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopProbe;

impl Probe for NoopProbe {
    #[inline(always)]
    fn emit(&self, _event: ProbeEvent) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct_and_stable() {
        let p = ProcessId(1);
        let t = Instant::from_ticks(5);
        let events = [
            ProbeEvent::LeaderChange {
                node: p,
                at: t,
                leader: p,
            },
            ProbeEvent::AccusationSent {
                node: p,
                at: t,
                suspect: p,
                phase: 0,
            },
            ProbeEvent::AccusationAbsorbed {
                node: p,
                at: t,
                new_counter: 1,
            },
            ProbeEvent::IncarnationBump {
                node: p,
                counter: 2,
            },
            ProbeEvent::TimeoutAdapt {
                node: p,
                at: t,
                suspect: p,
                timeout: Duration::from_ticks(9),
            },
            ProbeEvent::PhaseEnter {
                node: p,
                at: t,
                label: "prepare",
                number: 3,
            },
            ProbeEvent::Decide {
                node: p,
                at: t,
                slot: 0,
            },
            ProbeEvent::BatchCommit {
                node: p,
                at: t,
                slot: 0,
                cmds: 8,
            },
            ProbeEvent::WalAppend { node: p },
            ProbeEvent::WalRecover {
                node: p,
                records: 4,
            },
            ProbeEvent::WalWedge { node: p },
            ProbeEvent::SnapshotWrite {
                node: p,
                watermark: 10,
                live_bytes: 128,
            },
            ProbeEvent::SnapshotInstall {
                node: p,
                at: t,
                watermark: 10,
            },
            ProbeEvent::RecoveryReplay { node: p, bytes: 64 },
        ];
        let kinds: std::collections::BTreeSet<&str> = events.iter().map(|e| e.kind()).collect();
        assert_eq!(kinds.len(), events.len(), "kind tags must be unique");
        for e in &events {
            assert_eq!(e.node(), p);
            assert!(!format!("{e}").is_empty());
        }
    }

    #[test]
    fn clocked_events_expose_at() {
        let p = ProcessId(0);
        let t = Instant::from_ticks(7);
        assert_eq!(
            ProbeEvent::Decide {
                node: p,
                at: t,
                slot: 1
            }
            .at(),
            Some(t)
        );
        assert_eq!(ProbeEvent::WalAppend { node: p }.at(), None);
    }
}
