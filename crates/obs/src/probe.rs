//! Typed protocol probes.
//!
//! Every protocol state machine in the workspace (`CommEffOmega`, the
//! consensus machines, the replicated KV store) accepts a [`Probe`] type
//! parameter defaulting to [`NoopProbe`]. At the points where the *paper's*
//! state changes — a leader change, an accusation, an incarnation bump, a
//! ballot phase transition, a decision, a WAL append — the machine calls
//! [`Probe::emit`] with a [`ProbeEvent`]. With the default `NoopProbe` the
//! call monomorphizes to an empty inline function and the protocol code is
//! exactly as fast as before; with a recording probe the events land in a
//! flight recorder and a metrics registry (see [`crate::recorder`]).
//!
//! Per-command latency attribution (E22) rides on the same channel: the
//! client path tags every command with a [`CmdId`] and the machines emit one
//! [`ProbeEvent::CmdLifecycle`] per [`CmdStage`] the command crosses. Loops
//! that emit per-command events are guarded with `if P::ENABLED`, so a
//! `NoopProbe` build does not even iterate the batch.

use lls_primitives::{Duration, Instant, ProcessId};
use std::fmt;

/// Identity of one client command, stable across every stage of its life.
///
/// Assigned at `SubmitQueue::submit`: `client` is the submitting client's id
/// and `seq` its per-client sequence number — the same pair the KV layer
/// already uses for exactly-once reply routing, so the id needs no extra
/// wire bytes. Raw `u64` command streams (the bench harnesses) use
/// `client = 0` and the command value as `seq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CmdId {
    /// Submitting client (0 for untagged bench values).
    pub client: u64,
    /// Per-client sequence number (or the raw value for bench streams).
    pub seq: u64,
}

impl fmt::Display for CmdId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}#{}", self.client, self.seq)
    }
}

/// One stage of the command lifecycle, in path order.
///
/// The stages telescope: the latency attributed to a stage is the gap since
/// the command's *previous* stage event, so summing the per-stage deltas of
/// one command reproduces its end-to-end latency (the E22 gate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CmdStage {
    /// Client enqueued the command into its submit window.
    Enqueue,
    /// The sharded router picked a group for the command's key.
    ShardRoute,
    /// The leader sealed the command into a batch slot.
    BatchSeal,
    /// The leader proposed the sealed slot to the acceptors.
    Propose,
    /// The leader's WAL group-commit covering the command flushed.
    WalCommit,
    /// The slot carrying the command was chosen.
    Decide,
    /// The state machine applied the command.
    Apply,
    /// The client matched the reply and retired the command.
    Reply,
}

impl CmdStage {
    /// All stages in path order.
    pub const ALL: [CmdStage; 8] = [
        CmdStage::Enqueue,
        CmdStage::ShardRoute,
        CmdStage::BatchSeal,
        CmdStage::Propose,
        CmdStage::WalCommit,
        CmdStage::Decide,
        CmdStage::Apply,
        CmdStage::Reply,
    ];

    /// Stable snake-case label — the key lifecycle histograms are named by.
    pub fn label(self) -> &'static str {
        match self {
            CmdStage::Enqueue => "enqueue",
            CmdStage::ShardRoute => "shard_route",
            CmdStage::BatchSeal => "batch_seal",
            CmdStage::Propose => "propose",
            CmdStage::WalCommit => "wal_commit",
            CmdStage::Decide => "decide",
            CmdStage::Apply => "apply",
            CmdStage::Reply => "reply",
        }
    }

    /// Position in the canonical path (0 = `Enqueue` … 7 = `Reply`).
    pub fn index(self) -> usize {
        match self {
            CmdStage::Enqueue => 0,
            CmdStage::ShardRoute => 1,
            CmdStage::BatchSeal => 2,
            CmdStage::Propose => 3,
            CmdStage::WalCommit => 4,
            CmdStage::Decide => 5,
            CmdStage::Apply => 6,
            CmdStage::Reply => 7,
        }
    }
}

impl fmt::Display for CmdStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One structured protocol event, tagged with the emitting process.
///
/// Every event carries the virtual time `at`. Handler-emitted events use
/// the handler's `ctx.now()`; events emitted from construction or recovery
/// paths — which run before any clock exists — use [`Instant::ZERO`], and
/// persistence-path events reuse the time of the mutating handler that
/// triggered them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeEvent {
    /// The process's `leader()` output changed.
    LeaderChange {
        /// Emitting process.
        node: ProcessId,
        /// Virtual time of the change.
        at: Instant,
        /// The newly trusted leader.
        leader: ProcessId,
    },
    /// The process timed out on its leader and sent an `ACCUSE` to it.
    AccusationSent {
        /// Emitting process.
        node: ProcessId,
        /// Virtual time of the accusation.
        at: Instant,
        /// The accused (current leader candidate).
        suspect: ProcessId,
        /// The phase the accusation is tagged with (the suspect's counter
        /// as known here — what makes accusations idempotent per phase).
        phase: u64,
    },
    /// The process absorbed a valid accusation against itself and bumped
    /// its own accusation counter.
    AccusationAbsorbed {
        /// Emitting process.
        node: ProcessId,
        /// Virtual time of the bump.
        at: Instant,
        /// The counter value after the bump.
        new_counter: u64,
    },
    /// A restarted process rejoined with its persisted counter bumped once
    /// (the crash–restart incarnation bump; no clock exists yet).
    IncarnationBump {
        /// Emitting process.
        node: ProcessId,
        /// The counter the new incarnation boots with.
        counter: u64,
    },
    /// A premature suspicion grew the timeout for a suspect.
    TimeoutAdapt {
        /// Emitting process.
        node: ProcessId,
        /// Virtual time of the adaptation.
        at: Instant,
        /// Whose timeout grew.
        suspect: ProcessId,
        /// The new timeout value.
        timeout: Duration,
    },
    /// A consensus machine entered a protocol phase (ballot phase
    /// transition, leadership assumption, round entry).
    PhaseEnter {
        /// Emitting process.
        node: ProcessId,
        /// Virtual time of the transition.
        at: Instant,
        /// Which phase: `"prepare"`, `"accept"`, `"led"`, `"follower"`,
        /// `"round"`.
        label: &'static str,
        /// The ballot (or round) number driving the transition.
        number: u64,
    },
    /// A value was decided (slot 0 for single-shot consensus; the log slot
    /// for the replicated machines).
    Decide {
        /// Emitting process.
        node: ProcessId,
        /// Virtual time of the decision.
        at: Instant,
        /// Which slot decided.
        slot: u64,
    },
    /// A batched slot committed, carrying several client commands at once
    /// (the throughput path measured by E19). Emitted *in addition to* the
    /// per-slot [`ProbeEvent::Decide`].
    BatchCommit {
        /// Emitting process.
        node: ProcessId,
        /// Virtual time of the commit.
        at: Instant,
        /// Which slot committed.
        slot: u64,
        /// How many client commands the batch carried.
        cmds: u64,
    },
    /// A client command crossed one [`CmdStage`] of its lifecycle (the E22
    /// latency-attribution plane). One event per command per stage; batch
    /// operations emit one per carried command, guarded by
    /// [`Probe::ENABLED`] so `NoopProbe` builds skip the loop entirely.
    CmdLifecycle {
        /// Emitting process (the client's process id for `Enqueue`,
        /// `ShardRoute` and `Reply`; the replica otherwise).
        node: ProcessId,
        /// Virtual time the stage was crossed.
        at: Instant,
        /// Which command.
        cmd: CmdId,
        /// Which stage.
        stage: CmdStage,
        /// Consensus group the command routed to (0 when unsharded).
        shard: u32,
    },
    /// One record was appended to the write-ahead log. `at` is the virtual
    /// time of the mutating handler whose persistence triggered the append.
    WalAppend {
        /// Emitting process.
        node: ProcessId,
        /// Virtual time of the triggering handler.
        at: Instant,
    },
    /// A WAL group-commit flushed: one durable `flush` covering a pumped
    /// burst of records. `micros` is wall-clock device time (0 on the
    /// in-memory backends), feeding the `wal_fsync_micros` histogram and
    /// the watchdog's fsync-spike detector.
    WalFsync {
        /// Emitting process.
        node: ProcessId,
        /// Virtual time of the triggering handler.
        at: Instant,
        /// Wall-clock microseconds the flush took on the storage backend.
        micros: u64,
        /// Records the flushed group carried.
        records: u64,
    },
    /// A fresh incarnation replayed its write-ahead log on construction
    /// (`at` is [`Instant::ZERO`]: recovery runs before any clock exists).
    WalRecover {
        /// Emitting process.
        node: ProcessId,
        /// Virtual time of the recovery scan (the clock origin).
        at: Instant,
        /// How many records the recovery scan yielded.
        records: u64,
    },
    /// A WAL append failed and the machine wedged itself (broken disk =
    /// crashed process).
    WalWedge {
        /// Emitting process.
        node: ProcessId,
        /// Virtual time of the failed persistence.
        at: Instant,
    },
    /// A snapshot was durably written and the WAL compacted behind its
    /// watermark. `at` is the virtual time of the handler that scheduled
    /// the compaction.
    SnapshotWrite {
        /// Emitting process.
        node: ProcessId,
        /// Virtual time of the compaction.
        at: Instant,
        /// First slot not covered by the snapshot.
        watermark: u64,
        /// Bytes the WAL retains after compaction (feeds the
        /// `wal_live_bytes` gauge).
        live_bytes: u64,
    },
    /// A snapshot received by state transfer was installed, replacing the
    /// local log prefix below its watermark.
    SnapshotInstall {
        /// Emitting process.
        node: ProcessId,
        /// Virtual time of the install.
        at: Instant,
        /// First slot not covered by the snapshot.
        watermark: u64,
    },
    /// A fresh incarnation replayed this many WAL bytes on construction
    /// (the quantity snapshots are meant to bound; feeds the
    /// `recovery_replay_bytes` counter; `at` is [`Instant::ZERO`]).
    RecoveryReplay {
        /// Emitting process.
        node: ProcessId,
        /// Virtual time of the replay (the clock origin).
        at: Instant,
        /// Bytes of records the recovery scan decoded.
        bytes: u64,
    },
    /// A leader's lease grant round reached a quorum of acks: lease-reads
    /// may now be served locally until `until` on the leader's clock.
    /// Emitted on *every* activating round (renewals included), so the
    /// watchdog's per-shard `until` tracking never goes stale.
    LeaseAcquired {
        /// Emitting process (the leaseholder).
        node: ProcessId,
        /// Virtual time the quorum completed.
        at: Instant,
        /// Consensus group the lease covers (0 when unsharded).
        shard: u32,
        /// The activating grant round.
        seq: u64,
        /// Conservative local expiry of the serving window.
        until: Instant,
    },
    /// This process granted (or renewed) a lease: it promised to hold off
    /// competing elections on `holder`'s behalf for the lease duration plus
    /// the skew bound on its own clock.
    LeaseGranted {
        /// Emitting process (the granter).
        node: ProcessId,
        /// Virtual time of the grant.
        at: Instant,
        /// Consensus group the lease covers (0 when unsharded).
        shard: u32,
        /// The granted round.
        seq: u64,
        /// The leaseholder being protected.
        holder: ProcessId,
    },
    /// A held lease lapsed (conservative expiry passed without renewal) or
    /// was dropped on abdication; lease-reads stop immediately.
    LeaseExpired {
        /// Emitting process (the ex-leaseholder).
        node: ProcessId,
        /// Virtual time of the lapse.
        at: Instant,
        /// Consensus group the lease covered (0 when unsharded).
        shard: u32,
        /// The last grant round of the lapsed lease.
        seq: u64,
    },
    /// A linearizable read was served, and by which path — the `read_path_*`
    /// counters and the watchdog's stale-read detector key off this.
    ReadServed {
        /// Emitting process (the replica that answered).
        node: ProcessId,
        /// Virtual time the read was served.
        at: Instant,
        /// Consensus group that owns the key (0 when unsharded).
        shard: u32,
        /// Which read path served it.
        mode: ReadMode,
        /// Committed length the read was served at.
        watermark: u64,
    },
}

/// Which path served a linearizable read (see [`ProbeEvent::ReadServed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ReadMode {
    /// Served locally by a leaseholding leader, never entering the log.
    Lease,
    /// Served by a follower at a leaseholder-certified committed length.
    ReadIndex,
    /// Served through the log as an ordinary command (the slow baseline).
    Log,
}

impl ReadMode {
    /// Stable snake-case label — the key `read_path_*` counters use.
    pub fn label(self) -> &'static str {
        match self {
            ReadMode::Lease => "lease",
            ReadMode::ReadIndex => "read_index",
            ReadMode::Log => "log",
        }
    }
}

impl fmt::Display for ReadMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl ProbeEvent {
    /// The emitting process.
    pub fn node(&self) -> ProcessId {
        match *self {
            ProbeEvent::LeaderChange { node, .. }
            | ProbeEvent::AccusationSent { node, .. }
            | ProbeEvent::AccusationAbsorbed { node, .. }
            | ProbeEvent::IncarnationBump { node, .. }
            | ProbeEvent::TimeoutAdapt { node, .. }
            | ProbeEvent::PhaseEnter { node, .. }
            | ProbeEvent::Decide { node, .. }
            | ProbeEvent::BatchCommit { node, .. }
            | ProbeEvent::CmdLifecycle { node, .. }
            | ProbeEvent::WalAppend { node, .. }
            | ProbeEvent::WalFsync { node, .. }
            | ProbeEvent::WalRecover { node, .. }
            | ProbeEvent::WalWedge { node, .. }
            | ProbeEvent::SnapshotWrite { node, .. }
            | ProbeEvent::SnapshotInstall { node, .. }
            | ProbeEvent::RecoveryReplay { node, .. }
            | ProbeEvent::LeaseAcquired { node, .. }
            | ProbeEvent::LeaseGranted { node, .. }
            | ProbeEvent::LeaseExpired { node, .. }
            | ProbeEvent::ReadServed { node, .. } => node,
        }
    }

    /// Virtual time of the event, when it was emitted from a clocked
    /// handler. Only [`ProbeEvent::IncarnationBump`] predates every clock
    /// and returns `None`; all storage events carry a usable timestamp so
    /// the timeline can plot them.
    pub fn at(&self) -> Option<Instant> {
        match *self {
            ProbeEvent::LeaderChange { at, .. }
            | ProbeEvent::AccusationSent { at, .. }
            | ProbeEvent::AccusationAbsorbed { at, .. }
            | ProbeEvent::TimeoutAdapt { at, .. }
            | ProbeEvent::PhaseEnter { at, .. }
            | ProbeEvent::Decide { at, .. }
            | ProbeEvent::BatchCommit { at, .. }
            | ProbeEvent::CmdLifecycle { at, .. }
            | ProbeEvent::WalAppend { at, .. }
            | ProbeEvent::WalFsync { at, .. }
            | ProbeEvent::WalRecover { at, .. }
            | ProbeEvent::WalWedge { at, .. }
            | ProbeEvent::SnapshotWrite { at, .. }
            | ProbeEvent::SnapshotInstall { at, .. }
            | ProbeEvent::RecoveryReplay { at, .. }
            | ProbeEvent::LeaseAcquired { at, .. }
            | ProbeEvent::LeaseGranted { at, .. }
            | ProbeEvent::LeaseExpired { at, .. }
            | ProbeEvent::ReadServed { at, .. } => Some(at),
            ProbeEvent::IncarnationBump { .. } => None,
        }
    }

    /// A stable snake-case tag for the event kind — the key the recording
    /// probe uses for per-kind metric counters.
    pub fn kind(&self) -> &'static str {
        match self {
            ProbeEvent::LeaderChange { .. } => "leader_change",
            ProbeEvent::AccusationSent { .. } => "accusation_sent",
            ProbeEvent::AccusationAbsorbed { .. } => "accusation_absorbed",
            ProbeEvent::IncarnationBump { .. } => "incarnation_bump",
            ProbeEvent::TimeoutAdapt { .. } => "timeout_adapt",
            ProbeEvent::PhaseEnter { .. } => "phase_enter",
            ProbeEvent::Decide { .. } => "decide",
            ProbeEvent::BatchCommit { .. } => "batch_commit",
            ProbeEvent::CmdLifecycle { .. } => "cmd_lifecycle",
            ProbeEvent::WalAppend { .. } => "wal_append",
            ProbeEvent::WalFsync { .. } => "wal_fsync",
            ProbeEvent::WalRecover { .. } => "wal_recover",
            ProbeEvent::WalWedge { .. } => "wal_wedge",
            ProbeEvent::SnapshotWrite { .. } => "snapshot_write",
            ProbeEvent::SnapshotInstall { .. } => "snapshot_install",
            ProbeEvent::RecoveryReplay { .. } => "recovery_replay",
            ProbeEvent::LeaseAcquired { .. } => "lease_acquired",
            ProbeEvent::LeaseGranted { .. } => "lease_granted",
            ProbeEvent::LeaseExpired { .. } => "lease_expired",
            ProbeEvent::ReadServed { .. } => "read_served",
        }
    }
}

impl fmt::Display for ProbeEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ProbeEvent::LeaderChange { node, at, leader } => {
                write!(f, "{at} {node} LEADER    -> {leader}")
            }
            ProbeEvent::AccusationSent {
                node,
                at,
                suspect,
                phase,
            } => write!(f, "{at} {node} ACCUSE    {suspect} phase={phase}"),
            ProbeEvent::AccusationAbsorbed {
                node,
                at,
                new_counter,
            } => write!(f, "{at} {node} ACCUSED   counter={new_counter}"),
            ProbeEvent::IncarnationBump { node, counter } => {
                write!(f, "---- {node} REINCARNATE counter={counter}")
            }
            ProbeEvent::TimeoutAdapt {
                node,
                at,
                suspect,
                timeout,
            } => write!(f, "{at} {node} TIMEOUT   {suspect} -> {timeout}"),
            ProbeEvent::PhaseEnter {
                node,
                at,
                label,
                number,
            } => write!(f, "{at} {node} PHASE     {label} #{number}"),
            ProbeEvent::Decide { node, at, slot } => {
                write!(f, "{at} {node} DECIDE    slot={slot}")
            }
            ProbeEvent::BatchCommit {
                node,
                at,
                slot,
                cmds,
            } => write!(f, "{at} {node} BATCH     slot={slot} cmds={cmds}"),
            ProbeEvent::CmdLifecycle {
                node,
                at,
                cmd,
                stage,
                shard,
            } => write!(f, "{at} {node} CMD       {cmd} {stage} shard={shard}"),
            ProbeEvent::WalAppend { node, at } => write!(f, "{at} {node} WAL-APPEND"),
            ProbeEvent::WalFsync {
                node,
                at,
                micros,
                records,
            } => write!(f, "{at} {node} WAL-FSYNC {micros}us records={records}"),
            ProbeEvent::WalRecover { node, at, records } => {
                write!(f, "{at} {node} WAL-RECOVER records={records}")
            }
            ProbeEvent::WalWedge { node, at } => write!(f, "{at} {node} WAL-WEDGE"),
            ProbeEvent::SnapshotWrite {
                node,
                at,
                watermark,
                live_bytes,
            } => write!(
                f,
                "{at} {node} SNAP-WRITE watermark={watermark} live_bytes={live_bytes}"
            ),
            ProbeEvent::SnapshotInstall {
                node,
                at,
                watermark,
            } => write!(f, "{at} {node} SNAP-INSTALL watermark={watermark}"),
            ProbeEvent::RecoveryReplay { node, at, bytes } => {
                write!(f, "{at} {node} WAL-REPLAY bytes={bytes}")
            }
            ProbeEvent::LeaseAcquired {
                node,
                at,
                shard,
                seq,
                until,
            } => write!(
                f,
                "{at} {node} LEASE-ACQ shard={shard} seq={seq} until={until}"
            ),
            ProbeEvent::LeaseGranted {
                node,
                at,
                shard,
                seq,
                holder,
            } => write!(
                f,
                "{at} {node} LEASE-GRANT shard={shard} seq={seq} holder={holder}"
            ),
            ProbeEvent::LeaseExpired {
                node,
                at,
                shard,
                seq,
            } => write!(f, "{at} {node} LEASE-EXP shard={shard} seq={seq}"),
            ProbeEvent::ReadServed {
                node,
                at,
                shard,
                mode,
                watermark,
            } => write!(
                f,
                "{at} {node} READ      {mode} shard={shard} watermark={watermark}"
            ),
        }
    }
}

/// A sink for [`ProbeEvent`]s, passed *by value* into each state machine.
///
/// `emit` takes `&self` so one recorder can be shared (via `Arc`) among a
/// machine and the nested machines it drives — `Consensus` clones its probe
/// into the embedded `CommEffOmega`, so one recorder sees both layers.
pub trait Probe: Clone + Send + fmt::Debug + 'static {
    /// Whether this probe observes anything at all. Per-command emission
    /// loops (one event per command of a batch) are guarded with
    /// `if P::ENABLED { .. }`, so with [`NoopProbe`] the loop body is a
    /// compile-time `if false` and the optimizer removes the iteration —
    /// the hot path pays nothing, not even the batch walk.
    const ENABLED: bool = true;

    /// Records one event. Must be cheap and non-blocking; called from inside
    /// protocol handlers.
    fn emit(&self, event: ProbeEvent);
}

/// The default probe: does nothing, costs nothing. Monomorphization turns
/// every `probe.emit(..)` through this type into an empty inline call that
/// the optimizer deletes, and `ENABLED = false` removes per-command
/// emission loops wholesale.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopProbe;

impl Probe for NoopProbe {
    const ENABLED: bool = false;

    #[inline(always)]
    fn emit(&self, _event: ProbeEvent) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct_and_stable() {
        let p = ProcessId(1);
        let t = Instant::from_ticks(5);
        let events = [
            ProbeEvent::LeaderChange {
                node: p,
                at: t,
                leader: p,
            },
            ProbeEvent::AccusationSent {
                node: p,
                at: t,
                suspect: p,
                phase: 0,
            },
            ProbeEvent::AccusationAbsorbed {
                node: p,
                at: t,
                new_counter: 1,
            },
            ProbeEvent::IncarnationBump {
                node: p,
                counter: 2,
            },
            ProbeEvent::TimeoutAdapt {
                node: p,
                at: t,
                suspect: p,
                timeout: Duration::from_ticks(9),
            },
            ProbeEvent::PhaseEnter {
                node: p,
                at: t,
                label: "prepare",
                number: 3,
            },
            ProbeEvent::Decide {
                node: p,
                at: t,
                slot: 0,
            },
            ProbeEvent::BatchCommit {
                node: p,
                at: t,
                slot: 0,
                cmds: 8,
            },
            ProbeEvent::CmdLifecycle {
                node: p,
                at: t,
                cmd: CmdId { client: 3, seq: 9 },
                stage: CmdStage::BatchSeal,
                shard: 0,
            },
            ProbeEvent::WalAppend { node: p, at: t },
            ProbeEvent::WalFsync {
                node: p,
                at: t,
                micros: 120,
                records: 4,
            },
            ProbeEvent::WalRecover {
                node: p,
                at: Instant::ZERO,
                records: 4,
            },
            ProbeEvent::WalWedge { node: p, at: t },
            ProbeEvent::SnapshotWrite {
                node: p,
                at: t,
                watermark: 10,
                live_bytes: 128,
            },
            ProbeEvent::SnapshotInstall {
                node: p,
                at: t,
                watermark: 10,
            },
            ProbeEvent::RecoveryReplay {
                node: p,
                at: Instant::ZERO,
                bytes: 64,
            },
            ProbeEvent::LeaseAcquired {
                node: p,
                at: t,
                shard: 0,
                seq: 1,
                until: Instant::from_ticks(117),
            },
            ProbeEvent::LeaseGranted {
                node: p,
                at: t,
                shard: 0,
                seq: 1,
                holder: p,
            },
            ProbeEvent::LeaseExpired {
                node: p,
                at: t,
                shard: 0,
                seq: 1,
            },
            ProbeEvent::ReadServed {
                node: p,
                at: t,
                shard: 0,
                mode: ReadMode::Lease,
                watermark: 4,
            },
        ];
        let kinds: std::collections::BTreeSet<&str> = events.iter().map(|e| e.kind()).collect();
        assert_eq!(kinds.len(), events.len(), "kind tags must be unique");
        for e in &events {
            assert_eq!(e.node(), p);
            assert!(!format!("{e}").is_empty());
        }
    }

    #[test]
    fn read_mode_labels_are_unique_and_stable() {
        let modes = [ReadMode::Lease, ReadMode::ReadIndex, ReadMode::Log];
        let labels: std::collections::BTreeSet<&str> = modes.iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), modes.len());
        assert_eq!(ReadMode::Lease.label(), "lease");
        assert_eq!(ReadMode::ReadIndex.label(), "read_index");
        assert_eq!(ReadMode::Log.label(), "log");
    }

    #[test]
    fn every_storage_event_is_plottable() {
        let p = ProcessId(0);
        let t = Instant::from_ticks(7);
        assert_eq!(
            ProbeEvent::Decide {
                node: p,
                at: t,
                slot: 1
            }
            .at(),
            Some(t)
        );
        // Satellite of E22: the storage events used to return None and were
        // unplottable on the timeline. Now only the pre-clock incarnation
        // bump lacks a timestamp.
        assert_eq!(ProbeEvent::WalAppend { node: p, at: t }.at(), Some(t));
        assert_eq!(
            ProbeEvent::WalRecover {
                node: p,
                at: Instant::ZERO,
                records: 0
            }
            .at(),
            Some(Instant::ZERO)
        );
        assert_eq!(ProbeEvent::WalWedge { node: p, at: t }.at(), Some(t));
        assert_eq!(
            ProbeEvent::SnapshotWrite {
                node: p,
                at: t,
                watermark: 1,
                live_bytes: 2
            }
            .at(),
            Some(t)
        );
        assert_eq!(
            ProbeEvent::RecoveryReplay {
                node: p,
                at: Instant::ZERO,
                bytes: 0
            }
            .at(),
            Some(Instant::ZERO)
        );
        assert_eq!(
            ProbeEvent::IncarnationBump {
                node: p,
                counter: 1
            }
            .at(),
            None
        );
    }

    #[test]
    fn stage_order_is_total_and_labels_unique() {
        let labels: std::collections::BTreeSet<&str> =
            CmdStage::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), CmdStage::ALL.len());
        for (i, s) in CmdStage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i, "ALL must list stages in path order");
        }
        assert!(CmdStage::Enqueue < CmdStage::Reply);
    }
}
