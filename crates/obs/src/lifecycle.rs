//! Per-command critical-path reconstruction and latency attribution.
//!
//! The throughput path (PRs 5–7) moves a client command through a fixed
//! pipeline — enqueue → shard-route → batch-seal → propose → WAL
//! group-commit → decide → apply → reply — and each machine on the path
//! emits one [`ProbeEvent::CmdLifecycle`] per stage crossed. This module
//! turns the per-node recorder streams back into *per-command* paths:
//!
//! 1. [`reconstruct_paths`] collects, for every [`CmdId`], the earliest
//!    observation of each [`CmdStage`] across all nodes (the leader seals
//!    and proposes; every replica decides and applies; the client encloses
//!    the whole path with enqueue/reply).
//! 2. [`CmdPath::stage_deltas`] telescopes a path into per-stage latency
//!    deltas: each stage is charged the gap since the command's previous
//!    observed stage, so the deltas of one command sum exactly to its
//!    probe-observed end-to-end latency.
//! 3. [`fold_into_registry`] folds those deltas into per-stage (and
//!    per-shard) log2 histograms, and [`attribute`] reduces a batch of
//!    paths to totals + the dominant stage — the evidence E22 gates on.
//!
//! Attribution is only as honest as its clocks: on netsim every stage
//! timestamp comes from the one global virtual clock; on the wall-clock
//! substrates the harness anchors all nodes to a common epoch before
//! converting to ticks. The E22 gate (stage sum within 15% of the
//! *independently measured* end-to-end latency) exists to catch exactly
//! the cases where that anchoring drifts.

use std::collections::BTreeMap;

use lls_primitives::Instant;

use crate::metrics::Registry;
use crate::probe::{CmdId, CmdStage, ProbeEvent};
use crate::recorder::RecordedEvent;

/// Number of lifecycle stages (see [`CmdStage::ALL`]).
pub const STAGES: usize = CmdStage::ALL.len();

/// One command's reconstructed path: the earliest cluster-wide observation
/// of each stage, in path order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CmdPath {
    /// The command.
    pub cmd: CmdId,
    /// Consensus group it routed to (0 when unsharded).
    pub shard: u32,
    /// Earliest observation of stage `i` (indexed by [`CmdStage::index`]),
    /// `None` when no node reported the stage.
    pub stages: [Option<Instant>; STAGES],
}

impl CmdPath {
    /// Earliest observation of `stage`, if any node reported it.
    pub fn stage_at(&self, stage: CmdStage) -> Option<Instant> {
        self.stages[stage.index()]
    }

    /// Whether the path is closed: both endpoints (enqueue and reply) were
    /// observed. Only complete paths enter latency attribution — a command
    /// still in flight has no end-to-end latency to attribute against.
    pub fn is_complete(&self) -> bool {
        self.stage_at(CmdStage::Enqueue).is_some() && self.stage_at(CmdStage::Reply).is_some()
    }

    /// Probe-observed end-to-end latency in ticks (reply − enqueue), when
    /// the path is complete.
    pub fn end_to_end(&self) -> Option<u64> {
        let start = self.stage_at(CmdStage::Enqueue)?;
        let end = self.stage_at(CmdStage::Reply)?;
        Some(end.saturating_since(start).ticks())
    }

    /// Telescoping per-stage deltas: each observed stage after the first is
    /// charged the gap (in ticks) since the command's *previous* observed
    /// stage. Unobserved stages are skipped, so their time collapses into
    /// the next observed stage and the invariant holds regardless of which
    /// stages a config exercises:
    /// `sum(deltas) == end_to_end()` for a complete path.
    pub fn stage_deltas(&self) -> Vec<(CmdStage, u64)> {
        let mut out = Vec::new();
        let mut prev: Option<Instant> = None;
        for stage in CmdStage::ALL {
            if let Some(at) = self.stage_at(stage) {
                if let Some(p) = prev {
                    out.push((stage, at.saturating_since(p).ticks()));
                }
                // Out-of-order clocks (a replica applying "before" the
                // leader sealed, by its own clock) saturate to 0 rather
                // than going negative; the 15% gate catches gross skew.
                prev = Some(prev.map_or(at, |p| p.max(at)));
            }
        }
        out
    }
}

/// Reconstructs per-command paths from per-node recorder streams (the shape
/// [`crate::NodeRecorders::all_events`] returns). Paths come back in
/// `(client, seq)` order.
pub fn reconstruct_paths(streams: &[Vec<RecordedEvent>]) -> Vec<CmdPath> {
    let mut paths: BTreeMap<CmdId, CmdPath> = BTreeMap::new();
    for stream in streams {
        for rec in stream {
            if let ProbeEvent::CmdLifecycle {
                at,
                cmd,
                stage,
                shard,
                ..
            } = rec.event
            {
                let path = paths.entry(cmd).or_insert_with(|| CmdPath {
                    cmd,
                    shard,
                    stages: [None; STAGES],
                });
                // A sharded command's route stage knows the true group; a
                // pre-route stage (enqueue) defaults to 0 — keep the max so
                // the path ends up tagged with its real shard.
                path.shard = path.shard.max(shard);
                let slot = &mut path.stages[stage.index()];
                *slot = Some(match *slot {
                    Some(prev) => prev.min(at),
                    None => at,
                });
            }
        }
    }
    paths.into_values().collect()
}

/// Latency attribution over a batch of reconstructed paths: total ticks
/// charged to each stage, plus completeness accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Attribution {
    /// Paths with both endpoints observed (these contribute latency).
    pub complete: usize,
    /// Paths still open (observed but unfinished — not attributed).
    pub partial: usize,
    /// Total ticks attributed to stage `i` (indexed by [`CmdStage::index`])
    /// across all complete paths.
    pub stage_total: [u64; STAGES],
    /// Sum of probe-observed end-to-end latencies of the complete paths.
    pub e2e_total: u64,
}

impl Attribution {
    /// Sum of all per-stage attributions — equals [`Attribution::e2e_total`]
    /// by the telescoping construction.
    pub fn attributed_total(&self) -> u64 {
        self.stage_total.iter().sum()
    }

    /// The stage with the largest total attributed latency, with its total
    /// (ties break toward the earlier stage). `None` when nothing was
    /// attributed.
    pub fn dominant(&self) -> Option<(CmdStage, u64)> {
        let (mut best, mut best_total) = (None, 0u64);
        for stage in CmdStage::ALL {
            let t = self.stage_total[stage.index()];
            if t > best_total {
                best = Some(stage);
                best_total = t;
            }
        }
        best.map(|s| (s, best_total))
    }
}

/// Reduces paths to an [`Attribution`].
pub fn attribute(paths: &[CmdPath]) -> Attribution {
    let mut out = Attribution::default();
    for path in paths {
        if !path.is_complete() {
            out.partial += 1;
            continue;
        }
        out.complete += 1;
        out.e2e_total += path.end_to_end().unwrap_or(0);
        for (stage, delta) in path.stage_deltas() {
            out.stage_total[stage.index()] += delta;
        }
    }
    out
}

/// Folds per-stage latency deltas into log2 histograms in `registry`:
/// `lifecycle_stage_{stage}_{unit}` for the cluster-wide family and
/// `shard{S}_lifecycle_stage_{stage}_{unit}` for the per-shard breakdown,
/// plus `lifecycle_e2e_{unit}` / `shard{S}_lifecycle_e2e_{unit}` for the
/// closed paths. Returns how many complete paths were folded.
pub fn fold_into_registry(paths: &[CmdPath], registry: &Registry, unit: &str) -> usize {
    let mut folded = 0;
    for path in paths {
        if !path.is_complete() {
            continue;
        }
        folded += 1;
        for (stage, delta) in path.stage_deltas() {
            let label = stage.label();
            registry
                .histogram(&format!("lifecycle_stage_{label}_{unit}"))
                .record(delta);
            registry
                .histogram(&format!(
                    "shard{}_lifecycle_stage_{label}_{unit}",
                    path.shard
                ))
                .record(delta);
        }
        let e2e = path.end_to_end().unwrap_or(0);
        registry
            .histogram(&format!("lifecycle_e2e_{unit}"))
            .record(e2e);
        registry
            .histogram(&format!("shard{}_lifecycle_e2e_{unit}", path.shard))
            .record(e2e);
    }
    registry.describe(
        &format!("lifecycle_e2e_{unit}"),
        "Probe-observed end-to-end command latency (enqueue to reply)",
    );
    folded
}

#[cfg(test)]
mod tests {
    use super::*;
    use lls_primitives::ProcessId;

    fn rec(node: u32, at: u64, cmd: CmdId, stage: CmdStage, shard: u32) -> RecordedEvent {
        RecordedEvent {
            seq: 0,
            lamport: 0,
            event: ProbeEvent::CmdLifecycle {
                node: ProcessId(node),
                at: Instant::from_ticks(at),
                cmd,
                stage,
                shard,
            },
        }
    }

    fn cmd(seq: u64) -> CmdId {
        CmdId { client: 1, seq }
    }

    #[test]
    fn reconstructs_earliest_observation_per_stage_across_nodes() {
        // Command 0: client (node 0) encloses, leader (node 1) seals and
        // decides at t5/t9, a laggard replica (node 2) re-observes the
        // decide later at t12 — the path must keep the earliest.
        let streams = vec![
            vec![
                rec(0, 1, cmd(0), CmdStage::Enqueue, 0),
                rec(0, 14, cmd(0), CmdStage::Reply, 0),
            ],
            vec![
                rec(1, 5, cmd(0), CmdStage::BatchSeal, 0),
                rec(1, 9, cmd(0), CmdStage::Decide, 0),
            ],
            vec![rec(2, 12, cmd(0), CmdStage::Decide, 0)],
        ];
        let paths = reconstruct_paths(&streams);
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        assert!(p.is_complete());
        assert_eq!(p.stage_at(CmdStage::Decide), Some(Instant::from_ticks(9)));
        assert_eq!(p.end_to_end(), Some(13));
        // Telescoping: deltas sum exactly to end-to-end even with the
        // unobserved stages (route/propose/wal/apply) skipped.
        let deltas = p.stage_deltas();
        assert_eq!(
            deltas,
            vec![
                (CmdStage::BatchSeal, 4),
                (CmdStage::Decide, 4),
                (CmdStage::Reply, 5),
            ]
        );
        assert_eq!(deltas.iter().map(|(_, d)| d).sum::<u64>(), 13);
    }

    #[test]
    fn attribution_sums_telescope_and_find_the_dominant_stage() {
        // Two complete commands and one still in flight.
        let streams = vec![vec![
            rec(0, 0, cmd(0), CmdStage::Enqueue, 0),
            rec(0, 2, cmd(0), CmdStage::BatchSeal, 0),
            rec(0, 10, cmd(0), CmdStage::Decide, 0),
            rec(0, 11, cmd(0), CmdStage::Reply, 0),
            rec(0, 5, cmd(1), CmdStage::Enqueue, 0),
            rec(0, 6, cmd(1), CmdStage::BatchSeal, 0),
            rec(0, 16, cmd(1), CmdStage::Decide, 0),
            rec(0, 16, cmd(1), CmdStage::Reply, 0),
            rec(0, 20, cmd(2), CmdStage::Enqueue, 0),
        ]];
        let paths = reconstruct_paths(&streams);
        let attr = attribute(&paths);
        assert_eq!(attr.complete, 2);
        assert_eq!(attr.partial, 1);
        assert_eq!(attr.e2e_total, 11 + 11);
        assert_eq!(attr.attributed_total(), attr.e2e_total);
        // Decide carries 8 + 10 of the 22 ticks — the dominant stage.
        assert_eq!(attr.dominant(), Some((CmdStage::Decide, 18)));
    }

    #[test]
    fn out_of_order_clocks_saturate_instead_of_underflowing() {
        let streams = vec![vec![
            rec(0, 10, cmd(0), CmdStage::Enqueue, 0),
            // A skewed replica stamps the seal *before* the enqueue.
            rec(1, 7, cmd(0), CmdStage::BatchSeal, 0),
            rec(0, 15, cmd(0), CmdStage::Reply, 0),
        ]];
        let paths = reconstruct_paths(&streams);
        let deltas = paths[0].stage_deltas();
        assert_eq!(deltas[0], (CmdStage::BatchSeal, 0), "clamped, not wrapped");
        // The high-water chaining keeps the telescoping sum equal to the
        // (saturating) end-to-end latency.
        assert_eq!(deltas.iter().map(|(_, d)| d).sum::<u64>(), 5);
    }

    #[test]
    fn folding_writes_per_stage_and_per_shard_families() {
        let streams = vec![vec![
            rec(0, 0, cmd(0), CmdStage::Enqueue, 0),
            rec(0, 1, cmd(0), CmdStage::ShardRoute, 2),
            rec(1, 4, cmd(0), CmdStage::Decide, 2),
            rec(0, 6, cmd(0), CmdStage::Reply, 2),
        ]];
        let paths = reconstruct_paths(&streams);
        assert_eq!(paths[0].shard, 2, "path adopts the routed shard");
        let reg = Registry::new();
        assert_eq!(fold_into_registry(&paths, &reg, "ticks"), 1);
        let snap = reg.snapshot();
        assert_eq!(snap.histograms["lifecycle_stage_decide_ticks"].count, 1);
        assert_eq!(
            snap.histograms["shard2_lifecycle_stage_decide_ticks"].count,
            1
        );
        assert_eq!(snap.histograms["lifecycle_e2e_ticks"].sum, 6);
        assert_eq!(snap.histograms["shard2_lifecycle_e2e_ticks"].sum, 6);
    }
}
