//! Socket-level integration: the unchanged Ω state machine elects a leader
//! over real localhost TCP, survives injected loss, and re-elects when the
//! leader's connections are killed mid-run.

use std::time::{Duration as StdDuration, Instant as StdInstant};

use lls_primitives::ProcessId;
use omega::{CommEffOmega, OmegaParams};
use wirenet::{BackoffConfig, FaultConfig, WireCluster, WireConfig};

fn config(n: usize, loss: f64) -> WireConfig {
    WireConfig {
        n,
        tick: StdDuration::from_micros(200),
        queue_capacity: 1024,
        backoff: BackoffConfig::default(),
        faults: (loss > 0.0).then_some(FaultConfig {
            loss,
            min_delay: StdDuration::from_micros(100),
            max_delay: StdDuration::from_micros(800),
            seed: 7,
        }),
    }
}

/// Polls until every node's latest output has been the *same* leader for
/// `stable_for` continuously (momentary agreement during the initial churn
/// does not count), or gives up after `timeout`.
fn await_agreement(
    cluster: &WireCluster<CommEffOmega>,
    timeout: StdDuration,
    stable_for: StdDuration,
) -> Option<ProcessId> {
    let deadline = StdInstant::now() + timeout;
    let mut agreed: Option<(ProcessId, StdInstant)> = None;
    loop {
        let latest = cluster.latest_outputs();
        let unanimous = latest
            .first()
            .and_then(|o| *o)
            .filter(|first| latest.iter().all(|o| *o == Some(*first)));
        match (unanimous, agreed) {
            (Some(l), Some((held, since))) if l == held => {
                if since.elapsed() >= stable_for {
                    return Some(l);
                }
            }
            (Some(l), _) => agreed = Some((l, StdInstant::now())),
            (None, _) => agreed = None,
        }
        if StdInstant::now() > deadline {
            return None;
        }
        std::thread::sleep(StdDuration::from_millis(25));
    }
}

#[test]
fn three_processes_elect_one_leader_over_tcp() {
    let n = 3;
    let cluster = WireCluster::spawn(config(n, 0.05), |env| {
        CommEffOmega::new(env, OmegaParams::default())
    });
    let leader = await_agreement(
        &cluster,
        StdDuration::from_secs(10),
        StdDuration::from_millis(400),
    )
    .expect("no agreement over TCP");
    let report = cluster.stop();
    for p in (0..n as u32).map(ProcessId) {
        assert_eq!(
            report.final_output_of(p).copied(),
            Some(leader),
            "{p} disagrees"
        );
    }
    // Real bytes moved through real sockets.
    for p in (0..n as u32).map(ProcessId) {
        let total = report.node_links_total(p);
        assert!(total.msgs_sent > 0, "{p} wrote no frames");
        assert!(total.bytes_sent > 0, "{p} wrote no bytes");
        assert!(total.msgs_recv > 0, "{p} received no frames");
    }
}

#[test]
fn severed_leader_triggers_reelection_and_reconnect() {
    let n = 3;
    // No injected loss: the only disturbance is the severed connections.
    let cluster = WireCluster::spawn(config(n, 0.0), |env| {
        CommEffOmega::new(env, OmegaParams::default())
    });
    let old_leader = await_agreement(
        &cluster,
        StdDuration::from_secs(10),
        StdDuration::from_millis(400),
    )
    .expect("no initial agreement");

    // Kill the leader's connections in a tight loop for half a second. A
    // single sever heals in a few milliseconds on localhost (the redial
    // succeeds immediately), which can beat the 6 ms suspicion timeout;
    // flapping the links guarantees the silence the detector needs.
    let sever_at = cluster.elapsed();
    let storm_start = StdInstant::now();
    let mut severed = 0;
    while storm_start.elapsed() < StdDuration::from_millis(500) {
        severed += cluster.sever(old_leader);
        std::thread::sleep(StdDuration::from_millis(2));
    }
    assert!(severed > 0, "nothing to sever: no live connections");

    // The survivors must have moved off the silent leader during the storm.
    let new_leader = await_agreement(
        &cluster,
        StdDuration::from_secs(10),
        StdDuration::from_millis(400),
    )
    .expect("no re-agreement after sever storm");
    let report = cluster.stop();
    let reelected = report
        .outputs
        .iter()
        .any(|t| t.at >= sever_at && t.output != old_leader);
    assert!(
        reelected,
        "no output after the sever ever named a different leader \
         (old {old_leader}, final {new_leader}, outputs {:?})",
        report.outputs
    );
    assert!(
        report.total_reconnects() > 0,
        "links never reconnected: {:?}",
        report.links
    );
}

#[test]
fn queue_overflow_drops_oldest_but_cluster_stays_live() {
    let n = 2;
    // Queues of 1 with heavy injected delay: almost every heartbeat is
    // evicted by its successor, yet the protocol threads never block.
    let cluster = WireCluster::spawn(
        WireConfig {
            n,
            tick: StdDuration::from_micros(200),
            queue_capacity: 1,
            backoff: BackoffConfig::default(),
            faults: Some(FaultConfig {
                loss: 0.0,
                min_delay: StdDuration::from_millis(5),
                max_delay: StdDuration::from_millis(10),
                seed: 3,
            }),
        },
        |env| CommEffOmega::new(env, OmegaParams::default()),
    );
    std::thread::sleep(StdDuration::from_millis(600));
    let report = cluster.stop();
    let drops: u64 = report.links.iter().flatten().map(|s| s.queue_drops).sum();
    assert!(
        drops > 0,
        "expected overflow evictions, links {:?}",
        report.links
    );
    // Liveness: everyone still produced an output.
    for p in (0..n as u32).map(ProcessId) {
        assert!(report.final_output_of(p).is_some(), "{p} produced nothing");
    }
}
