//! Socket-level crash–restart: the leader is killed (listener and all
//! connections torn down, threads joined), the survivors re-elect, and the
//! old leader restarts from its durable storage — re-binding its original
//! address so the survivors' redial loops find it from the *accepting*
//! side — and rejoins as a follower.

use std::time::{Duration as StdDuration, Instant as StdInstant};

use lls_primitives::{ProcessId, StorageHandle};
use omega::{CommEffOmega, OmegaParams};
use wirenet::{BackoffConfig, WireCluster, WireConfig};

fn config(n: usize) -> WireConfig {
    // A coarser tick than the election tests: leader-check timeouts get
    // 30ms of wall-clock slack, so scheduler hiccups among the survivors
    // cannot forge accusations that would tie their counters with the
    // restarted process's bumped one.
    WireConfig {
        n,
        tick: StdDuration::from_millis(1),
        queue_capacity: 1024,
        backoff: BackoffConfig::default(),
        faults: None,
    }
}

/// Polls until every *member*'s latest output has been the same leader for
/// `stable_for` continuously, or gives up after `timeout`.
fn await_agreement_among(
    cluster: &WireCluster<CommEffOmega>,
    members: &[ProcessId],
    timeout: StdDuration,
    stable_for: StdDuration,
) -> Option<ProcessId> {
    let deadline = StdInstant::now() + timeout;
    let mut agreed: Option<(ProcessId, StdInstant)> = None;
    loop {
        let latest = cluster.latest_outputs();
        let views: Vec<Option<ProcessId>> = members.iter().map(|p| latest[p.as_usize()]).collect();
        let unanimous = views
            .first()
            .and_then(|o| *o)
            .filter(|first| views.iter().all(|o| *o == Some(*first)));
        match (unanimous, agreed) {
            (Some(l), Some((held, since))) if l == held => {
                if since.elapsed() >= stable_for {
                    return Some(l);
                }
            }
            (Some(l), _) => agreed = Some((l, StdInstant::now())),
            (None, _) => agreed = None,
        }
        if StdInstant::now() > deadline {
            return None;
        }
        std::thread::sleep(StdDuration::from_millis(25));
    }
}

#[test]
fn killed_leader_restarts_from_wal_and_rejoins_as_follower() {
    let n = 3;
    // One durable store per process, held outside the cluster so a restart
    // can recover from the same store its predecessor wrote.
    let stores: Vec<StorageHandle> = (0..n).map(|_| StorageHandle::in_memory()).collect();
    let mut cluster = WireCluster::spawn(config(n), |env| {
        CommEffOmega::with_storage(
            env,
            OmegaParams::default(),
            stores[env.id().as_usize()].clone(),
        )
        .expect("fresh in-memory store")
    });
    let all: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();

    let old_leader = await_agreement_among(
        &cluster,
        &all,
        StdDuration::from_secs(10),
        StdDuration::from_millis(400),
    )
    .expect("no initial agreement");

    // Kill the leader for real: listener gone, sockets severed, threads
    // joined. The survivors' writers fall back to redialling its address.
    cluster.kill(old_leader);
    assert!(!cluster.is_alive(old_leader));

    let survivors: Vec<ProcessId> = all.iter().copied().filter(|p| *p != old_leader).collect();
    let interim = await_agreement_among(
        &cluster,
        &survivors,
        StdDuration::from_secs(10),
        StdDuration::from_millis(400),
    )
    .expect("survivors did not re-elect after the kill");
    assert_ne!(interim, old_leader, "survivors still trust the dead leader");

    // Restart from the same durable store. The incarnation bump recovered
    // from the WAL (counter 0 -> 1) ranks the old leader below the
    // incumbents, so it must rejoin as a follower and adopt the new leader.
    let env = lls_primitives::Env::new(old_leader, n);
    let recovered = CommEffOmega::with_storage(
        &env,
        OmegaParams::default(),
        stores[old_leader.as_usize()].clone(),
    )
    .expect("recover from WAL");
    cluster
        .restart(old_leader, recovered)
        .expect("re-bind the old leader's address");
    assert!(cluster.is_alive(old_leader));

    let final_leader = await_agreement_among(
        &cluster,
        &all,
        StdDuration::from_secs(10),
        StdDuration::from_millis(400),
    )
    .expect("no full agreement after the restart");
    assert_ne!(
        final_leader, old_leader,
        "the restarted leader must not reclaim leadership"
    );

    let report = cluster.stop();
    assert_eq!(
        report.final_output_of(old_leader).copied(),
        Some(final_leader),
        "the restarted process must follow the new leader"
    );
    assert!(
        report.errors.is_empty(),
        "clean run expected: {:?}",
        report.errors
    );
    // The rejoin really went over fresh sockets: someone reconnected.
    assert!(
        report.total_reconnects() > 0,
        "no link ever reconnected: {:?}",
        report.links
    );
}
