//! Backpressure under a pipelined burst: a deliberately tiny bounded
//! outbound queue is flooded by the batched/pipelined leader path, and the
//! substrate must degrade by dropping the *oldest* frames — never by
//! blocking the node thread. The protocol's retry machinery then recovers
//! the lost traffic, so the log still makes progress, and the drops are
//! accounted in the metrics registry as `wirenet_queue_drops_total`.

use std::time::{Duration as StdDuration, Instant as StdInstant};

use consensus::{BatchParams, ConsensusParams, ReplicatedLog, RsmEvent};
use lls_obs::Registry;
use lls_primitives::ProcessId;
use wirenet::{BackoffConfig, WireCluster, WireConfig};

#[test]
fn pipelined_burst_overflows_queue_without_deadlock_and_counts_drops() {
    let n = 3;
    let cluster = WireCluster::try_spawn(
        WireConfig {
            n,
            tick: StdDuration::from_millis(1),
            // Small enough that one pipelined burst (every Accept and
            // Decide fans out to both peers) must overflow it.
            queue_capacity: 4,
            backoff: BackoffConfig::default(),
            faults: None,
        },
        |env| {
            ReplicatedLog::<u64, _>::new(
                env,
                ConsensusParams {
                    batch: BatchParams {
                        max_batch: 8,
                        pipeline_depth: 8,
                    },
                    ..ConsensusParams::default()
                },
            )
        },
    )
    .expect("bind 127.0.0.1 listeners");

    // Await a unanimous stable leader before flooding it.
    let deadline = StdInstant::now() + StdDuration::from_secs(10);
    let stable_for = StdDuration::from_millis(300);
    let mut held: Option<(ProcessId, StdInstant)> = None;
    let leader = loop {
        let view: Vec<Option<ProcessId>> = cluster
            .latest_outputs()
            .into_iter()
            .map(|o| match o {
                Some(RsmEvent::Leader(l)) => Some(l),
                _ => None,
            })
            .collect();
        let unanimous = match view.first() {
            Some(&Some(l)) if view.iter().all(|v| *v == Some(l)) => Some(l),
            _ => None,
        };
        match (unanimous, held) {
            (Some(l), Some((h, since))) if l == h && since.elapsed() >= stable_for => break l,
            (Some(l), Some((h, _))) if l == h => {}
            (Some(l), _) => held = Some((l, StdInstant::now())),
            (None, _) => held = None,
        }
        assert!(StdInstant::now() < deadline, "no stable leader over TCP");
        std::thread::sleep(StdDuration::from_millis(20));
    };

    // The pipelined burst: far more traffic than 4-deep queues can hold.
    let burst = 400u64;
    for v in 0..burst {
        cluster.request(leader, v);
    }

    // Liveness despite overflow: the retry path re-sends what the queue
    // evicted, so commits keep arriving. Wait for real progress — the node
    // thread being deadlocked would freeze the newest outputs instead.
    let deadline = StdInstant::now() + StdDuration::from_secs(20);
    loop {
        let progressed = cluster
            .latest_outputs()
            .into_iter()
            .any(|o| matches!(o, Some(RsmEvent::Committed { cmd: Some(v), .. }) if v >= 50));
        if progressed {
            break;
        }
        assert!(
            StdInstant::now() < deadline,
            "no commit progress under backpressure: {:?}",
            cluster.latest_outputs()
        );
        std::thread::sleep(StdDuration::from_millis(10));
    }

    // stop() joins every node and I/O thread — it returning at all is the
    // no-deadlock half of the property.
    let report = cluster.stop();

    // The drop accounting surfaces in the metrics registry.
    let registry = Registry::new();
    report.export(&registry);
    let drops = registry.counter_value("wirenet_queue_drops_total");
    assert!(
        drops > 0,
        "a {burst}-command pipelined burst against 4-deep queues must drop frames"
    );
}
