//! Cluster lifecycle over real sockets: bind, spawn, drive, sever, stop,
//! report. Mirrors `threadnet::Cluster` so experiments translate directly.

use std::net::{Ipv4Addr, SocketAddr, TcpListener};
use std::time::{Duration as StdDuration, Instant as StdInstant};

use lls_primitives::wire::Wire;
use lls_primitives::{Env, ProcessId, Sm};

use crate::counters::LinkStats;
use crate::link::BackoffConfig;
use crate::node::{FaultConfig, NodeConfig, TimedOutput, WireNode};

/// Configuration of a TCP cluster on localhost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireConfig {
    /// Number of processes (nodes, each with its own listener and threads).
    pub n: usize,
    /// Wall-clock length of one virtual tick (scales η and timeouts).
    pub tick: StdDuration,
    /// Capacity of each bounded outbound queue (drop-oldest on overflow).
    pub queue_capacity: usize,
    /// Reconnect backoff policy.
    pub backoff: BackoffConfig,
    /// Optional socket-layer loss/delay injection.
    pub faults: Option<FaultConfig>,
}

impl Default for WireConfig {
    /// 3 processes, 200 µs ticks, queues of 1024, default backoff, no
    /// injected faults.
    fn default() -> Self {
        WireConfig {
            n: 3,
            tick: StdDuration::from_micros(200),
            queue_capacity: 1024,
            backoff: BackoffConfig::default(),
            faults: None,
        }
    }
}

/// Everything a finished run reports. The shape matches
/// `threadnet::Report`, extended with the per-link socket counters.
#[derive(Debug, Clone)]
pub struct ClusterReport<O> {
    /// All outputs from every node, ordered by emission time.
    pub outputs: Vec<TimedOutput<O>>,
    /// Protocol-level sends per process (counted when the state machine
    /// emits them, as at `threadnet`'s router ingress).
    pub sent: Vec<u64>,
    /// Wall-clock offset of each process's last protocol-level send.
    pub last_send: Vec<Option<StdDuration>>,
    /// Socket counters: `links[p][q]` is node `p`'s view of its link to
    /// `q` (bytes/messages both ways, reconnects, drops, decode errors).
    pub links: Vec<Vec<LinkStats>>,
}

impl<O> ClusterReport<O> {
    /// The last output `p` emitted, if any.
    pub fn final_output_of(&self, p: ProcessId) -> Option<&O> {
        self.outputs
            .iter()
            .rev()
            .find(|t| t.process == p)
            .map(|t| &t.output)
    }

    /// Processes whose last send happened at or after `since` (from cluster
    /// start) — the communication-efficiency oracle, as in `threadnet`.
    pub fn senders_since(&self, since: StdDuration) -> Vec<ProcessId> {
        self.last_send
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_some_and(|t| t >= since))
            .map(|(i, _)| ProcessId(i as u32))
            .collect()
    }

    /// All of node `p`'s link counters merged into one total.
    pub fn node_links_total(&self, p: ProcessId) -> LinkStats {
        self.links[p.as_usize()]
            .iter()
            .fold(LinkStats::default(), |acc, s| acc.merge(*s))
    }

    /// Sum of every node's reconnect counters.
    pub fn total_reconnects(&self) -> u64 {
        self.links.iter().flatten().map(|s| s.reconnects).sum()
    }

    /// Sum of every node's decode-error counters.
    pub fn total_decode_errors(&self) -> u64 {
        self.links.iter().flatten().map(|s| s.decode_errors).sum()
    }
}

/// A running cluster of `n` [`WireNode`]s joined by real TCP connections
/// over localhost.
///
/// See the [crate example](crate).
#[derive(Debug)]
pub struct WireCluster<S: Sm> {
    nodes: Vec<WireNode<S>>,
    start: StdInstant,
}

impl<S> WireCluster<S>
where
    S: Sm + std::marker::Send + 'static,
    S::Msg: Wire,
{
    /// Binds `config.n` listeners on `127.0.0.1` (OS-assigned ports), then
    /// spawns one node per process, each running a state machine produced
    /// by `make`.
    ///
    /// # Panics
    ///
    /// Panics if `config.n < 2`, a listener cannot be bound, or
    /// `config.tick` is zero.
    pub fn spawn(config: WireConfig, mut make: impl FnMut(&Env) -> S) -> Self {
        assert!(config.n >= 2, "the model requires n > 1 processes");
        let n = config.n;
        let listeners: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).expect("bind 127.0.0.1 listener"))
            .collect();
        let addrs: Vec<SocketAddr> = listeners
            .iter()
            .map(|l| l.local_addr().expect("bound listener"))
            .collect();
        let start = StdInstant::now();
        let nodes = listeners
            .into_iter()
            .enumerate()
            .map(|(i, listener)| {
                let me = ProcessId(i as u32);
                let env = Env::new(me, n);
                let sm = make(&env);
                let node_config = NodeConfig {
                    me,
                    addrs: addrs.clone(),
                    tick: config.tick,
                    queue_capacity: config.queue_capacity,
                    backoff: config.backoff,
                    faults: config.faults,
                };
                WireNode::spawn_at(listener, node_config, sm, start)
            })
            .collect();
        WireCluster { nodes, start }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    /// The listen address of process `p`.
    pub fn addr_of(&self, p: ProcessId) -> SocketAddr {
        self.nodes[p.as_usize()].local_addr()
    }

    /// Delivers an external request to `p`.
    pub fn request(&self, p: ProcessId, req: S::Request) {
        self.nodes[p.as_usize()].request(req);
    }

    /// Force-closes every live TCP connection of node `p` (its writers and
    /// its peers' writers redial with backoff). Returns how many died.
    pub fn sever(&self, p: ProcessId) -> usize {
        self.nodes[p.as_usize()].sever()
    }

    /// A live snapshot of `(sent, last_send)` per process, mirroring
    /// `threadnet::Cluster::traffic_snapshot`.
    pub fn traffic_snapshot(&self) -> (Vec<u64>, Vec<Option<StdDuration>>) {
        let sent = self.nodes.iter().map(|nd| nd.traffic().sent()).collect();
        let last = self
            .nodes
            .iter()
            .map(|nd| nd.traffic().last_send())
            .collect();
        (sent, last)
    }

    /// A live snapshot of every node's per-link socket counters.
    pub fn link_snapshot(&self) -> Vec<Vec<LinkStats>> {
        self.nodes.iter().map(|nd| nd.link_stats()).collect()
    }

    /// Each node's most recent output, if any.
    pub fn latest_outputs(&self) -> Vec<Option<S::Output>> {
        self.nodes.iter().map(|nd| nd.latest_output()).collect()
    }

    /// Wall-clock elapsed since the cluster started.
    pub fn elapsed(&self) -> StdDuration {
        self.start.elapsed()
    }

    /// Stops every node, joins all threads, and returns the run report.
    pub fn stop(self) -> ClusterReport<S::Output> {
        // Halt all protocol threads before joining any node: otherwise the
        // survivors would watch the first node fall silent and re-elect,
        // polluting the report's final outputs.
        for node in &self.nodes {
            node.begin_stop();
        }
        let mut sent = Vec::with_capacity(self.nodes.len());
        let mut last_send = Vec::with_capacity(self.nodes.len());
        let mut links = Vec::with_capacity(self.nodes.len());
        let mut outputs = Vec::new();
        for node in self.nodes {
            sent.push(node.traffic().sent());
            last_send.push(node.traffic().last_send());
            links.push(node.link_stats());
            outputs.extend(node.stop());
        }
        outputs.sort_by_key(|t| t.at);
        ClusterReport {
            outputs,
            sent,
            last_send,
            links,
        }
    }
}
