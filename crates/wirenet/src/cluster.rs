//! Cluster lifecycle over real sockets: bind, spawn, drive, sever, stop,
//! report. Mirrors `threadnet::Cluster` so experiments translate directly.

use std::net::{Ipv4Addr, SocketAddr, TcpListener};
use std::time::{Duration as StdDuration, Instant as StdInstant};

use lls_primitives::wire::Wire;
use lls_primitives::{Env, LamportClock, ProcessId, Sm};

use crate::counters::LinkStats;
use crate::link::BackoffConfig;
use crate::node::{FaultConfig, NodeConfig, NodeError, TimedOutput, WireNode};

/// Configuration of a TCP cluster on localhost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireConfig {
    /// Number of processes (nodes, each with its own listener and threads).
    pub n: usize,
    /// Wall-clock length of one virtual tick (scales η and timeouts).
    pub tick: StdDuration,
    /// Capacity of each bounded outbound queue (drop-oldest on overflow).
    pub queue_capacity: usize,
    /// Reconnect backoff policy.
    pub backoff: BackoffConfig,
    /// Optional socket-layer loss/delay injection.
    pub faults: Option<FaultConfig>,
}

impl Default for WireConfig {
    /// 3 processes, 200 µs ticks, queues of 1024, default backoff, no
    /// injected faults.
    fn default() -> Self {
        WireConfig {
            n: 3,
            tick: StdDuration::from_micros(200),
            queue_capacity: 1024,
            backoff: BackoffConfig::default(),
            faults: None,
        }
    }
}

/// Everything a finished run reports. The shape matches
/// `threadnet::Report`, extended with the per-link socket counters.
#[derive(Debug, Clone)]
pub struct ClusterReport<O> {
    /// All outputs from every node, ordered by emission time.
    pub outputs: Vec<TimedOutput<O>>,
    /// Protocol-level sends per process (counted when the state machine
    /// emits them, as at `threadnet`'s router ingress).
    pub sent: Vec<u64>,
    /// Wall-clock offset of each process's last protocol-level send.
    pub last_send: Vec<Option<StdDuration>>,
    /// Socket counters: `links[p][q]` is node `p`'s view of its link to
    /// `q` (bytes/messages both ways, reconnects, drops, decode errors).
    pub links: Vec<Vec<LinkStats>>,
    /// Typed plumbing failures collected over the run — thread panics
    /// discovered at join time, listener failures during restarts.
    pub errors: Vec<NodeError>,
}

impl<O> ClusterReport<O> {
    /// The last output `p` emitted, if any.
    pub fn final_output_of(&self, p: ProcessId) -> Option<&O> {
        self.outputs
            .iter()
            .rev()
            .find(|t| t.process == p)
            .map(|t| &t.output)
    }

    /// Processes whose last send happened at or after `since` (from cluster
    /// start) — the communication-efficiency oracle, as in `threadnet`.
    pub fn senders_since(&self, since: StdDuration) -> Vec<ProcessId> {
        self.last_send
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_some_and(|t| t >= since))
            .map(|(i, _)| ProcessId(i as u32))
            .collect()
    }

    /// All of node `p`'s link counters merged into one total.
    pub fn node_links_total(&self, p: ProcessId) -> LinkStats {
        self.links[p.as_usize()]
            .iter()
            .fold(LinkStats::default(), |acc, s| acc.merge(*s))
    }

    /// Sum of every node's reconnect counters.
    pub fn total_reconnects(&self) -> u64 {
        self.links.iter().flatten().map(|s| s.reconnects).sum()
    }

    /// Sum of every node's decode-error counters.
    pub fn total_decode_errors(&self) -> u64 {
        self.links.iter().flatten().map(|s| s.decode_errors).sum()
    }

    /// Exports the run's socket accounting into an observability
    /// [`Registry`](lls_obs::Registry): per-process protocol-level
    /// `wirenet_sent_total_p{i}`, per-process merged link totals
    /// (`wirenet_link_msgs_sent_total_p{i}`, `…_bytes_sent_…`), and
    /// aggregate reconnect / drop / decode-error counters.
    ///
    /// Counters are monotone: export once per run (or into a fresh
    /// registry).
    pub fn export(&self, registry: &lls_obs::Registry) {
        for (i, sent) in self.sent.iter().enumerate() {
            registry
                .counter(&format!("wirenet_sent_total_p{i}"))
                .add(*sent);
        }
        for i in 0..self.links.len() {
            let total = self.node_links_total(ProcessId(i as u32));
            registry
                .counter(&format!("wirenet_link_msgs_sent_total_p{i}"))
                .add(total.msgs_sent);
            registry
                .counter(&format!("wirenet_link_bytes_sent_total_p{i}"))
                .add(total.bytes_sent);
        }
        registry
            .counter("wirenet_reconnects_total")
            .add(self.total_reconnects());
        registry
            .counter("wirenet_decode_errors_total")
            .add(self.total_decode_errors());
        registry.counter("wirenet_queue_drops_total").add(
            self.links
                .iter()
                .flatten()
                .map(|s| s.queue_drops + s.injected_drops)
                .sum(),
        );
    }
}

/// A running cluster of `n` [`WireNode`]s joined by real TCP connections
/// over localhost.
///
/// See the [crate example](crate).
#[derive(Debug)]
pub struct WireCluster<S: Sm> {
    /// `None` marks a killed process (its slot can be revived by
    /// [`WireCluster::restart`]).
    nodes: Vec<Option<WireNode<S>>>,
    /// The fixed listen address of every process — a restarted process
    /// re-binds its original address so peers' redial loops find it.
    addrs: Vec<SocketAddr>,
    /// One Lamport clock per process, surviving kill/restart so a revived
    /// incarnation continues the same causal timeline.
    clocks: Vec<LamportClock>,
    config: WireConfig,
    start: StdInstant,
    /// Per-process state archived from killed incarnations, merged into
    /// snapshots and the final report.
    archived_outputs: Vec<Vec<TimedOutput<S::Output>>>,
    archived_sent: Vec<u64>,
    archived_last_send: Vec<Option<StdDuration>>,
    archived_links: Vec<Vec<LinkStats>>,
    errors: Vec<NodeError>,
}

impl<S> WireCluster<S>
where
    S: Sm + std::marker::Send + 'static,
    S::Msg: Wire,
{
    /// Binds `config.n` listeners on `127.0.0.1` (OS-assigned ports), then
    /// spawns one node per process, each running a state machine produced
    /// by `make`.
    ///
    /// # Panics
    ///
    /// Panics if `config.n < 2`, a listener cannot be bound, or
    /// `config.tick` is zero. Use [`WireCluster::try_spawn`] to handle
    /// socket failures as errors.
    pub fn spawn(config: WireConfig, make: impl FnMut(&Env) -> S) -> Self {
        Self::try_spawn(config, make).expect("bind 127.0.0.1 listeners")
    }

    /// Like [`spawn`](WireCluster::spawn), but socket failures become typed
    /// [`NodeError`]s instead of panics.
    ///
    /// # Errors
    ///
    /// Fails if a listener cannot be bound or configured.
    ///
    /// # Panics
    ///
    /// Panics if `config.n < 2` or `config.tick` is zero (configuration
    /// bugs, not runtime conditions).
    pub fn try_spawn(config: WireConfig, make: impl FnMut(&Env) -> S) -> Result<Self, NodeError> {
        let clocks = (0..config.n).map(|i| LamportClock::new(i as u64)).collect();
        Self::try_spawn_traced(config, clocks, make)
    }

    /// Like [`try_spawn`](WireCluster::try_spawn), but with caller-supplied
    /// Lamport clocks — one per process, typically the handles from
    /// [`lls_obs::NodeRecorders::clocks`] so message stamps and recorded
    /// probe events share one causal timeline. Each node stamps the clock
    /// into every outbound frame (version-2 trace envelope) and merges the
    /// envelope of every inbound frame; a process [`restart`]ed after
    /// [`kill`] keeps its clock, continuing the same timeline.
    ///
    /// [`restart`]: WireCluster::restart
    /// [`kill`]: WireCluster::kill
    ///
    /// # Errors
    ///
    /// Fails like [`try_spawn`](WireCluster::try_spawn).
    ///
    /// # Panics
    ///
    /// Panics like [`try_spawn`](WireCluster::try_spawn), and additionally
    /// if `clocks.len() != config.n`.
    pub fn try_spawn_traced(
        config: WireConfig,
        clocks: Vec<LamportClock>,
        mut make: impl FnMut(&Env) -> S,
    ) -> Result<Self, NodeError> {
        assert!(config.n >= 2, "the model requires n > 1 processes");
        assert_eq!(clocks.len(), config.n, "one clock per process");
        let n = config.n;
        let any = SocketAddr::from((Ipv4Addr::LOCALHOST, 0));
        let listeners: Vec<TcpListener> = (0..n)
            .map(|_| {
                TcpListener::bind(any).map_err(|e| NodeError::Bind {
                    addr: any,
                    kind: e.kind(),
                })
            })
            .collect::<Result<_, _>>()?;
        let addrs: Vec<SocketAddr> = listeners
            .iter()
            .map(|l| {
                l.local_addr()
                    .map_err(|e| NodeError::Listener { kind: e.kind() })
            })
            .collect::<Result<_, _>>()?;
        let start = StdInstant::now();
        let nodes = listeners
            .into_iter()
            .enumerate()
            .map(|(i, listener)| {
                let me = ProcessId(i as u32);
                let env = Env::new(me, n);
                let sm = make(&env);
                let node_config = NodeConfig {
                    me,
                    addrs: addrs.clone(),
                    tick: config.tick,
                    queue_capacity: config.queue_capacity,
                    backoff: config.backoff,
                    faults: config.faults,
                    clock: Some(clocks[i].clone()),
                };
                WireNode::try_spawn_at(listener, node_config, sm, start).map(Some)
            })
            .collect::<Result<_, _>>()?;
        Ok(WireCluster {
            nodes,
            addrs,
            clocks,
            config,
            start,
            archived_outputs: vec![Vec::new(); n],
            archived_sent: vec![0; n],
            archived_last_send: vec![None; n],
            archived_links: vec![vec![LinkStats::default(); n]; n],
            errors: Vec::new(),
        })
    }

    /// Kills process `p`: tears down its listener and every live TCP
    /// connection it has, and joins all its threads. Peers observe the dead
    /// sockets, fall back to their redial/backoff loops, and keep knocking
    /// until [`WireCluster::restart`] re-binds the same address. Outputs and
    /// counters of the killed incarnation are archived into the final
    /// report. No-op if `p` is already dead.
    pub fn kill(&mut self, p: ProcessId) {
        let Some(node) = self.nodes[p.as_usize()].take() else {
            return;
        };
        self.merge_node_state(p, &node);
        let (outputs, errors) = node.stop_collecting();
        self.archived_outputs[p.as_usize()] = outputs;
        self.errors.extend(errors);
    }

    /// Returns `true` if `p` is currently running.
    pub fn is_alive(&self, p: ProcessId) -> bool {
        self.nodes[p.as_usize()].is_some()
    }

    /// Restarts a killed `p` with a fresh state machine `sm` — typically one
    /// recovered from the durable storage its predecessor wrote. Re-binds
    /// the process's original listen address (retrying briefly while the OS
    /// releases it), so the surviving peers' reconnect loops — which have
    /// been redialling that address since the kill — find the new
    /// incarnation from the *accepting* side.
    ///
    /// # Errors
    ///
    /// Fails with [`NodeError::Bind`] if the address cannot be re-bound
    /// within the retry budget, or [`NodeError::Listener`] if the fresh
    /// listener cannot be configured.
    ///
    /// # Panics
    ///
    /// Panics if `p` is still alive.
    pub fn restart(&mut self, p: ProcessId, sm: S) -> Result<(), NodeError> {
        assert!(
            self.nodes[p.as_usize()].is_none(),
            "cannot restart {p}: it is alive"
        );
        let addr = self.addrs[p.as_usize()];
        let listener = bind_with_retry(addr, StdDuration::from_secs(10))?;
        let node_config = NodeConfig {
            me: p,
            addrs: self.addrs.clone(),
            tick: self.config.tick,
            queue_capacity: self.config.queue_capacity,
            backoff: self.config.backoff,
            faults: self.config.faults,
            clock: Some(self.clocks[p.as_usize()].clone()),
        };
        let node = WireNode::try_spawn_at(listener, node_config, sm, self.start)?;
        self.nodes[p.as_usize()] = Some(node);
        Ok(())
    }

    /// Folds a node's live counters into the per-process archives.
    fn merge_node_state(&mut self, p: ProcessId, node: &WireNode<S>) {
        let i = p.as_usize();
        let traffic = node.traffic().snapshot();
        self.archived_sent[i] += traffic.sent;
        self.archived_last_send[i] = self.archived_last_send[i].max(traffic.last_send);
        for (q, stats) in node.link_stats().into_iter().enumerate() {
            self.archived_links[i][q] = self.archived_links[i][q].merge(stats);
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    /// The listen address of process `p` (fixed for the cluster's lifetime,
    /// even while `p` is dead).
    pub fn addr_of(&self, p: ProcessId) -> SocketAddr {
        self.addrs[p.as_usize()]
    }

    /// The wall-clock instant every node's virtual clock counts ticks
    /// from. An external client (e.g. a latency harness's submit queue)
    /// maps its own timestamps into the same tick domain with
    /// `(now - epoch) / tick`, so client- and replica-side probe events
    /// share one timeline.
    pub fn epoch(&self) -> StdInstant {
        self.start
    }

    /// The configured tick length — the granularity of every node's
    /// virtual clock.
    pub fn tick(&self) -> StdDuration {
        self.config.tick
    }

    /// Delivers an external request to `p`. Dropped if `p` is dead, like a
    /// request sent to a crashed server.
    pub fn request(&self, p: ProcessId, req: S::Request) {
        if let Some(node) = &self.nodes[p.as_usize()] {
            node.request(req);
        }
    }

    /// Force-closes every live TCP connection of node `p` (its writers and
    /// its peers' writers redial with backoff). Returns how many died; 0 if
    /// `p` is dead.
    pub fn sever(&self, p: ProcessId) -> usize {
        self.nodes[p.as_usize()].as_ref().map_or(0, |nd| nd.sever())
    }

    /// A live snapshot of `(sent, last_send)` per process, mirroring
    /// `threadnet::Cluster::traffic_snapshot`. Counters of killed
    /// incarnations are included.
    pub fn traffic_snapshot(&self) -> (Vec<u64>, Vec<Option<StdDuration>>) {
        // One snapshot per node: sent and last_send come from the same
        // point-in-time copy, so the pair can't tear across the two vectors.
        let snaps: Vec<_> = self
            .nodes
            .iter()
            .map(|nd| nd.as_ref().map(|nd| nd.traffic().snapshot()))
            .collect();
        let sent = snaps
            .iter()
            .enumerate()
            .map(|(i, s)| self.archived_sent[i] + s.map_or(0, |s| s.sent))
            .collect();
        let last = snaps
            .iter()
            .enumerate()
            .map(|(i, s)| self.archived_last_send[i].max(s.and_then(|s| s.last_send)))
            .collect();
        (sent, last)
    }

    /// A live snapshot of every node's per-link socket counters, killed
    /// incarnations included.
    pub fn link_snapshot(&self) -> Vec<Vec<LinkStats>> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, nd)| self.merged_links(i, nd.as_ref()))
            .collect()
    }

    fn merged_links(&self, i: usize, node: Option<&WireNode<S>>) -> Vec<LinkStats> {
        match node {
            Some(nd) => nd
                .link_stats()
                .into_iter()
                .enumerate()
                .map(|(q, s)| self.archived_links[i][q].merge(s))
                .collect(),
            None => self.archived_links[i].clone(),
        }
    }

    /// Each node's most recent output, if any. For a dead (or just-restarted
    /// and still quiet) process this is the last output of its most recent
    /// incarnation.
    pub fn latest_outputs(&self) -> Vec<Option<S::Output>> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, nd)| {
                nd.as_ref()
                    .and_then(|nd| nd.latest_output())
                    .or_else(|| self.archived_outputs[i].last().map(|t| t.output.clone()))
            })
            .collect()
    }

    /// Wall-clock elapsed since the cluster started.
    pub fn elapsed(&self) -> StdDuration {
        self.start.elapsed()
    }

    /// Stops every node, joins all threads, and returns the run report
    /// (archived state of killed incarnations merged in).
    pub fn stop(mut self) -> ClusterReport<S::Output> {
        // Halt all protocol threads before joining any node: otherwise the
        // survivors would watch the first node fall silent and re-elect,
        // polluting the report's final outputs.
        for node in self.nodes.iter().flatten() {
            node.begin_stop();
        }
        let n = self.nodes.len();
        let mut sent = Vec::with_capacity(n);
        let mut last_send = Vec::with_capacity(n);
        let mut links = Vec::with_capacity(n);
        let mut outputs = Vec::new();
        let nodes = std::mem::take(&mut self.nodes);
        for (i, node) in nodes.into_iter().enumerate() {
            outputs.extend(std::mem::take(&mut self.archived_outputs[i]));
            match node {
                Some(node) => {
                    let traffic = node.traffic().snapshot();
                    sent.push(self.archived_sent[i] + traffic.sent);
                    last_send.push(self.archived_last_send[i].max(traffic.last_send));
                    links.push(self.merged_links(i, Some(&node)));
                    let (node_outputs, errors) = node.stop_collecting();
                    outputs.extend(node_outputs);
                    self.errors.extend(errors);
                }
                None => {
                    sent.push(self.archived_sent[i]);
                    last_send.push(self.archived_last_send[i]);
                    links.push(self.archived_links[i].clone());
                }
            }
        }
        outputs.sort_by_key(|t| t.at);
        ClusterReport {
            outputs,
            sent,
            last_send,
            links,
            errors: self.errors,
        }
    }
}

/// Binds `addr`, retrying while the OS finishes releasing it from a
/// just-killed predecessor (usually immediate — severing the old sockets
/// RSTs them past TIME_WAIT — but the retry keeps restarts robust on
/// slower kernels).
fn bind_with_retry(addr: SocketAddr, budget: StdDuration) -> Result<TcpListener, NodeError> {
    let deadline = StdInstant::now() + budget;
    loop {
        match TcpListener::bind(addr) {
            Ok(listener) => return Ok(listener),
            Err(e) => {
                if StdInstant::now() >= deadline {
                    return Err(NodeError::Bind {
                        addr,
                        kind: e.kind(),
                    });
                }
                std::thread::sleep(StdDuration::from_millis(25));
            }
        }
    }
}
