//! Real TCP transport substrate: the third runtime for the *same* sans-io
//! state machines.
//!
//! The workspace's algorithms ([`CommEffOmega`], the consensus machines,
//! the replicated KV store) are pure [`Sm`] state machines. `netsim` runs
//! them on a deterministic discrete-event simulator and `threadnet` on an
//! in-process thread mesh; this crate runs them over **real TCP sockets**
//! with zero changes to the algorithm code:
//!
//! * every process is a [`WireNode`]: one listener, one reader thread per
//!   inbound connection, one dialer/writer thread per peer, and one
//!   protocol thread driving the state machine;
//! * messages travel as versioned, CRC-checked frames (the shared
//!   [`lls_primitives::wire`] codec) — corrupted frames are counted and
//!   skipped, never panics;
//! * each ordered pair of processes has one TCP connection, dialed by the
//!   sender side; lost connections are redialed with jittered exponential
//!   backoff ([`BackoffConfig`]);
//! * outbound queues are bounded and evict their oldest frame on overflow,
//!   so a dead peer costs messages (fair-lossy), never liveness;
//! * loss and delay can be injected at the socket layer
//!   ([`FaultConfig`], backed by the shared
//!   [`FaultInjector`](lls_primitives::FaultInjector));
//! * per-link counters (bytes/messages both ways, reconnects, queue drops,
//!   decode failures) surface in a [`ClusterReport`] mirroring
//!   `threadnet`'s;
//! * every frame carries a version-2 trace envelope (the sender's Lamport
//!   clock), merged on receive, so recorded probe events line up on one
//!   causal timeline across nodes;
//! * a dependency-free HTTP [`ScrapeServer`] serves live `/metrics`
//!   (Prometheus text), `/flight` (flight-recorder dump), and `/spans`
//!   (reconstructed causal spans) for any recorder bundle.
//!
//! [`CommEffOmega`]: https://docs.rs/omega
//! [`Sm`]: lls_primitives::Sm
//!
//! # Example
//!
//! Elect a leader over real sockets:
//!
//! ```no_run
//! use std::time::Duration;
//! use wirenet::{WireCluster, WireConfig};
//! # use lls_primitives::{Ctx, ProcessId, Sm, TimerId};
//! # #[derive(Debug)] struct Noop;
//! # impl Sm for Noop {
//! #     type Msg = u64; type Output = ProcessId; type Request = ();
//! #     fn on_start(&mut self, _ctx: &mut Ctx<'_, u64, ProcessId>) {}
//! #     fn on_message(&mut self, _ctx: &mut Ctx<'_, u64, ProcessId>, _f: ProcessId, _m: u64) {}
//! #     fn on_timer(&mut self, _ctx: &mut Ctx<'_, u64, ProcessId>, _t: TimerId) {}
//! # }
//!
//! let cluster = WireCluster::spawn(WireConfig::default(), |_env| Noop);
//! std::thread::sleep(Duration::from_millis(500));
//! let report = cluster.stop();
//! let leader = report.final_output_of(ProcessId(0));
//! # let _ = leader;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod cluster;
mod counters;
mod link;
mod node;
pub mod scrape;

pub use cluster::{ClusterReport, WireCluster, WireConfig};
pub use counters::{LinkCounters, LinkStats, NodeTraffic, NodeTrafficStats};
pub use link::BackoffConfig;
pub use node::{FaultConfig, NodeConfig, NodeError, TimedOutput, WireNode};
pub use scrape::{scrape, ScrapeRoutes, ScrapeServer};
