//! A tiny hand-rolled HTTP/1.x scrape endpoint — no external dependencies.
//!
//! Production observability stacks pull metrics over HTTP; a wirenet node
//! (or a whole cluster harness) can serve the same three views live:
//!
//! * `/metrics` — Prometheus text exposition from a
//!   [`Registry`](lls_obs::Registry) snapshot;
//! * `/flight` — the flight-recorder dump of every node (the post-mortem
//!   view, on demand while the run is still going);
//! * `/spans` — recently reconstructed causal spans as JSON;
//! * `/timeline` — the bounded-ring time-series frames of an attached
//!   [`TimelineSampler`](lls_obs::TimelineSampler) as JSON (per-window
//!   counter rates and interpolated p50/p99).
//!
//! The server is deliberately minimal: it parses only the request line of a
//! `GET`, answers with `HTTP/1.0` + `Connection: close`, and serves each
//! connection on the accept thread (scrapes are rare and small). That is
//! enough for `curl`, Prometheus, and the in-repo [`scrape`] client, and it
//! keeps the workspace's no-new-dependencies rule intact.

use std::io::{Read, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration as StdDuration;

/// The content producers behind the three scrape paths. Each callback is
/// invoked per request, so the response always reflects live state.
#[allow(missing_debug_implementations)]
pub struct ScrapeRoutes {
    /// Body of `GET /metrics` (Prometheus text exposition).
    pub metrics: Arc<dyn Fn() -> String + Send + Sync>,
    /// Body of `GET /flight` (flight-recorder dump, plain text).
    pub flight: Arc<dyn Fn() -> String + Send + Sync>,
    /// Body of `GET /spans` (reconstructed spans, JSON).
    pub spans: Arc<dyn Fn() -> String + Send + Sync>,
    /// Body of `GET /timeline` (time-series frames, JSON). Defaults to an
    /// empty frame ring until [`ScrapeRoutes::with_timeline`] attaches a
    /// live sampler.
    pub timeline: Arc<dyn Fn() -> String + Send + Sync>,
}

impl ScrapeRoutes {
    /// Routes backed by a recorder bundle: `/metrics` renders its registry,
    /// `/flight` dumps every node's ring, `/spans` reconstructs spans from
    /// the recorded events on each request.
    pub fn for_recorders(recorders: Arc<lls_obs::NodeRecorders>) -> Self {
        let r1 = Arc::clone(&recorders);
        let r2 = Arc::clone(&recorders);
        let r3 = recorders;
        ScrapeRoutes {
            metrics: Arc::new(move || r1.registry().render_prometheus()),
            flight: Arc::new(move || r2.dump_all()),
            spans: Arc::new(move || {
                lls_obs::spans_json(&lls_obs::reconstruct_spans(&r3.all_events()))
            }),
            timeline: Arc::new(|| lls_obs::TimelineSampler::new(1).to_json()),
        }
    }

    /// Attaches a live [`TimelineSampler`](lls_obs::TimelineSampler):
    /// `GET /timeline` renders whatever frames the harness has sampled so
    /// far, per request — scraping mid-run sees the ring exactly as the
    /// in-process sampler holds it.
    #[must_use]
    pub fn with_timeline(self, sampler: Arc<std::sync::Mutex<lls_obs::TimelineSampler>>) -> Self {
        ScrapeRoutes {
            timeline: Arc::new(move || {
                sampler
                    .lock()
                    .expect("timeline sampler lock poisoned")
                    .to_json()
            }),
            ..self
        }
    }

    /// Routes for a sharded node: `/metrics` composes the per-shard
    /// registries into **one** scrape body — each shard's metrics under a
    /// `shard{id}_` prefix plus unprefixed cross-shard sums (see
    /// [`lls_obs::aggregate_shard_registries`]). `/flight` and `/spans`
    /// come from the recorder bundle as usual. Aggregation happens per
    /// request, so the scrape always reflects live per-shard state.
    pub fn for_shard_registries(
        shards: Vec<(u32, Arc<lls_obs::Registry>)>,
        recorders: Arc<lls_obs::NodeRecorders>,
    ) -> Self {
        let base = ScrapeRoutes::for_recorders(recorders);
        ScrapeRoutes {
            metrics: Arc::new(move || {
                lls_obs::aggregate_shard_registries(
                    shards.iter().map(|(id, reg)| (*id, reg.as_ref())),
                )
                .render_prometheus()
            }),
            ..base
        }
    }
}

/// A running scrape server: one accept thread on a loopback port.
#[derive(Debug)]
pub struct ScrapeServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ScrapeServer {
    /// Binds `127.0.0.1:0` (OS-assigned port) and starts serving `routes`.
    ///
    /// # Errors
    ///
    /// Fails if the loopback listener cannot be bound or configured.
    pub fn spawn(routes: ScrapeRoutes) -> std::io::Result<Self> {
        let listener = TcpListener::bind(SocketAddr::from((Ipv4Addr::LOCALHOST, 0)))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let handle = std::thread::spawn({
            let shutdown = Arc::clone(&shutdown);
            move || accept_loop(listener, routes, shutdown)
        });
        Ok(ScrapeServer {
            addr,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The address the server listens on (loopback, OS-assigned port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept thread and joins it.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ScrapeServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: TcpListener, routes: ScrapeRoutes, shutdown: Arc<AtomicBool>) {
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => serve_one(stream, &routes),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                std::thread::sleep(StdDuration::from_millis(10));
            }
            Err(_) => std::thread::sleep(StdDuration::from_millis(10)),
        }
    }
}

/// Handles one connection: read the request head, answer, close.
fn serve_one(mut stream: TcpStream, routes: &ScrapeRoutes) {
    let _ = stream.set_read_timeout(Some(StdDuration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(StdDuration::from_millis(500)));
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    // Read until the end of the request head (or a bounded amount).
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && head.len() < 8192 {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(_) => break,
        }
    }
    let request_line = head
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .unwrap_or(b"");
    let request_line = String::from_utf8_lossy(request_line);
    let mut parts = request_line.split_ascii_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let response = if method != "GET" {
        http_response(405, "text/plain; charset=utf-8", "method not allowed\n")
    } else {
        // Ignore any query string: `/metrics?x=y` scrapes like `/metrics`.
        match path.split('?').next().unwrap_or("") {
            "/metrics" => http_response(
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                &(routes.metrics)(),
            ),
            "/flight" => http_response(200, "text/plain; charset=utf-8", &(routes.flight)()),
            "/spans" => http_response(200, "application/json", &(routes.spans)()),
            "/timeline" => http_response(200, "application/json", &(routes.timeline)()),
            _ => http_response(404, "text/plain; charset=utf-8", "not found\n"),
        }
    };
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

fn http_response(status: u16, content_type: &str, body: &str) -> String {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

/// A minimal scrape client for tests and experiments: `GET {path}` from
/// `addr`, returning the response body.
///
/// # Errors
///
/// Fails on connect/write/read errors or a non-200 status line.
pub fn scrape(addr: SocketAddr, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect_timeout(&addr, StdDuration::from_secs(2))?;
    stream.set_read_timeout(Some(StdDuration::from_secs(2)))?;
    stream.set_write_timeout(Some(StdDuration::from_secs(2)))?;
    stream.write_all(format!("GET {path} HTTP/1.0\r\nHost: scrape\r\n\r\n").as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed HTTP response")
    })?;
    let status_line = head.lines().next().unwrap_or("");
    if !status_line.contains(" 200 ") {
        return Err(std::io::Error::other(format!(
            "scrape {path}: {status_line}"
        )));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lls_obs::{NodeRecorders, Probe, ProbeEvent};
    use lls_primitives::{Instant, ProcessId};

    fn test_routes(recorders: &Arc<NodeRecorders>) -> ScrapeRoutes {
        ScrapeRoutes::for_recorders(Arc::clone(recorders))
    }

    #[test]
    fn serves_metrics_flight_and_spans() {
        let recorders = Arc::new(NodeRecorders::new(2, 32));
        let probe = recorders.probe_for(ProcessId(0));
        probe.emit(ProbeEvent::LeaderChange {
            node: ProcessId(0),
            at: Instant::from_ticks(7),
            leader: ProcessId(1),
        });
        let server = ScrapeServer::spawn(test_routes(&recorders)).expect("spawn scrape server");
        let addr = server.addr();

        let metrics = scrape(addr, "/metrics").expect("scrape /metrics");
        assert!(metrics.contains("probe_leader_change_total"));
        assert_eq!(metrics, recorders.registry().render_prometheus());

        let flight = scrape(addr, "/flight").expect("scrape /flight");
        assert!(flight.contains("LEADER"), "{flight}");

        let spans = scrape(addr, "/spans").expect("scrape /spans");
        assert!(spans.starts_with('['), "spans is a JSON array: {spans}");

        server.stop();
    }

    #[test]
    fn unknown_path_is_404_and_post_is_405() {
        let recorders = Arc::new(NodeRecorders::new(2, 8));
        let server = ScrapeServer::spawn(test_routes(&recorders)).expect("spawn scrape server");
        let addr = server.addr();

        let err = scrape(addr, "/nope").expect_err("404 surfaces as error");
        assert!(err.to_string().contains("404"), "{err}");

        // A hand-written POST should bounce with 405.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"POST /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.0 405"), "{response}");

        server.stop();
    }

    #[test]
    fn sharded_metrics_compose_into_one_scrape() {
        let recorders = Arc::new(NodeRecorders::new(2, 8));
        let s0 = Arc::new(lls_obs::Registry::new());
        let s1 = Arc::new(lls_obs::Registry::new());
        s0.counter("decided_total").add(3);
        s1.counter("decided_total").add(5);
        let server = ScrapeServer::spawn(ScrapeRoutes::for_shard_registries(
            vec![(0, Arc::clone(&s0)), (1, Arc::clone(&s1))],
            Arc::clone(&recorders),
        ))
        .expect("spawn scrape server");

        let body = scrape(server.addr(), "/metrics").expect("scrape /metrics");
        assert!(body.contains("shard0_decided_total 3"), "{body}");
        assert!(body.contains("shard1_decided_total 5"), "{body}");
        assert!(
            body.contains("\ndecided_total 8"),
            "cross-shard sum present: {body}"
        );

        // The aggregation is live: bump a shard and re-scrape.
        s0.counter("decided_total").add(1);
        let body = scrape(server.addr(), "/metrics").expect("re-scrape /metrics");
        assert!(body.contains("shard0_decided_total 4"), "{body}");
        assert!(body.contains("\ndecided_total 9"), "{body}");

        server.stop();
    }

    #[test]
    fn timeline_route_serves_live_sampler_state() {
        use lls_obs::{Registry, TimelineSampler};
        use std::sync::Mutex;

        let recorders = Arc::new(NodeRecorders::new(2, 8));
        let registry = Registry::new();
        let sampler = Arc::new(Mutex::new(TimelineSampler::new(4)));
        let routes = test_routes(&recorders).with_timeline(Arc::clone(&sampler));
        let server = ScrapeServer::spawn(routes).expect("spawn scrape server");
        let addr = server.addr();

        // Before any sample: an empty ring, still valid JSON.
        let body = scrape(addr, "/timeline").expect("scrape empty /timeline");
        assert!(body.contains("\"frames\": []"), "{body}");

        // Mid-run: the scrape body equals the in-process sampler's JSON at
        // every step, including after the ring wraps (capacity 4, 6 frames).
        for i in 0..6u64 {
            registry.counter("decided_total").add(i + 1);
            sampler.lock().unwrap().sample(&registry, i * 10);
            let served = scrape(addr, "/timeline").expect("scrape /timeline");
            assert_eq!(served, sampler.lock().unwrap().to_json());
            // /metrics stays consistent with the same in-process registry
            // used by the recorder bundle (E18-style equality).
            let metrics = scrape(addr, "/metrics").expect("scrape /metrics");
            assert_eq!(metrics, recorders.registry().render_prometheus());
        }
        {
            let s = sampler.lock().unwrap();
            assert_eq!(s.len(), 4, "ring holds only the last 4 frames");
            assert_eq!(s.dropped(), 2, "two oldest frames evicted");
        }

        server.stop();
    }

    #[test]
    fn query_strings_are_ignored() {
        let recorders = Arc::new(NodeRecorders::new(2, 8));
        let server = ScrapeServer::spawn(test_routes(&recorders)).expect("spawn scrape server");
        let body = scrape(server.addr(), "/metrics?window=60s").expect("scrape with query");
        assert!(body.contains("# TYPE") || body.is_empty() || body.contains("probe"));
        server.stop();
    }
}
