//! One wirenet node: a TCP listener plus reader threads (inbound), one
//! dialer/writer thread per peer (outbound), and a protocol thread that
//! drives the unchanged sans-io state machine.
//!
//! The protocol thread is identical in structure to `threadnet`'s node
//! loop — timers with reset semantics, wall-clock → tick mapping — except
//! that sends are encoded with the shared wire codec and handed to the
//! outbound links instead of an in-process router.

use std::collections::HashMap;
use std::io::Read;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::{Duration as StdDuration, Instant as StdInstant};

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use lls_primitives::wire::{
    decode_frame, decode_frame_any, encode_frame, encode_frame_sharded, encode_frame_stamped,
    Deframer, Wire,
};
use lls_primitives::{
    Ctx, Effects, Env, FaultInjector, Instant, LamportClock, ProcessId, Sm, TimerCmd, TimerId,
};
use parking_lot::Mutex;

use crate::counters::{LinkCounters, LinkStats, NodeTraffic};
use crate::link::{run_writer, BackoffConfig, PeerLink};

/// A typed failure of a node's socket plumbing, surfaced through the node
/// and cluster APIs instead of panicking — restart logic has to distinguish
/// "the port is still in TIME_WAIT" from "a thread died".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeError {
    /// Binding a listener failed (e.g. the address is still held by a dying
    /// predecessor).
    Bind {
        /// The address that could not be bound.
        addr: SocketAddr,
        /// The OS error kind.
        kind: std::io::ErrorKind,
    },
    /// Configuring an already-bound listener failed (reading its local
    /// address or switching it to non-blocking mode).
    Listener {
        /// The OS error kind.
        kind: std::io::ErrorKind,
    },
    /// A node thread panicked and was discovered at join time.
    ThreadPanic {
        /// The node whose thread died.
        node: ProcessId,
        /// Which thread: `"writer"`, `"acceptor"`, `"protocol"`, `"reader"`.
        role: &'static str,
    },
}

impl std::fmt::Display for NodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeError::Bind { addr, kind } => write!(f, "cannot bind {addr}: {kind}"),
            NodeError::Listener { kind } => write!(f, "cannot configure listener: {kind}"),
            NodeError::ThreadPanic { node, role } => {
                write!(f, "{role} thread of node {node} panicked")
            }
        }
    }
}

impl std::error::Error for NodeError {}

/// Optional loss/delay injected at the socket layer, applied independently
/// per outbound link (seeds are decorrelated per link).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Per-frame drop probability in `[0, 1]`.
    pub loss: f64,
    /// Minimum injected delay before a frame hits the socket.
    pub min_delay: StdDuration,
    /// Maximum injected delay.
    pub max_delay: StdDuration,
    /// Base seed; each link derives its own stream from it.
    pub seed: u64,
}

/// Configuration of one node.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// This process's identity.
    pub me: ProcessId,
    /// Listen address of every process, indexed by [`ProcessId`];
    /// `addrs[me]` is this node's own (already bound) address.
    pub addrs: Vec<SocketAddr>,
    /// Wall-clock length of one virtual tick (scales η and timeouts).
    pub tick: StdDuration,
    /// Capacity of each bounded outbound queue (drop-oldest on overflow).
    pub queue_capacity: usize,
    /// Reconnect backoff policy.
    pub backoff: BackoffConfig,
    /// Optional socket-layer loss/delay injection.
    pub faults: Option<FaultConfig>,
    /// Lamport clock handle stamped into every outbound frame (version-2
    /// trace envelope) and merged on every inbound frame. `None` spawns a
    /// private clock — frames are still stamped, but the timeline is not
    /// shared with any recorder. Pass the handle from
    /// [`lls_obs::NodeRecorders::clocks`] to put message stamps and probe
    /// events on one causal timeline.
    pub clock: Option<LamportClock>,
}

/// One timestamped protocol output from the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedOutput<O> {
    /// Wall-clock offset from node (or cluster) start.
    pub at: StdDuration,
    /// The process that emitted the output.
    pub process: ProcessId,
    /// The output value.
    pub output: O,
}

enum Control<M, R> {
    Deliver { from: ProcessId, msg: M },
    Request(R),
    Stop,
}

/// Live TCP streams of this node, registered so they can be severed (for
/// fault experiments) or shut down (for graceful stop) from outside the
/// threads that own them.
#[derive(Debug, Default)]
pub(crate) struct ConnRegistry {
    next: AtomicU64,
    conns: StdMutex<HashMap<u64, TcpStream>>,
}

impl ConnRegistry {
    /// Registers a clone of `stream`; returns a token for deregistration.
    pub(crate) fn register(&self, stream: &TcpStream) -> u64 {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            self.conns
                .lock()
                .expect("conn registry poisoned")
                .insert(id, clone);
        }
        id
    }

    pub(crate) fn deregister(&self, id: u64) {
        self.conns
            .lock()
            .expect("conn registry poisoned")
            .remove(&id);
    }

    /// Force-closes every live connection; returns how many were severed.
    pub(crate) fn sever_all(&self) -> usize {
        let conns: Vec<TcpStream> = {
            let mut map = self.conns.lock().expect("conn registry poisoned");
            map.drain().map(|(_, s)| s).collect()
        };
        let count = conns.len();
        for s in &conns {
            let _ = s.shutdown(Shutdown::Both);
        }
        count
    }
}

/// A running node: the state machine `S` over real TCP.
pub struct WireNode<S: Sm> {
    me: ProcessId,
    n: usize,
    local_addr: SocketAddr,
    control: Sender<Control<S::Msg, S::Request>>,
    shutdown: Arc<AtomicBool>,
    links: Vec<Option<Arc<PeerLink>>>,
    counters: Arc<Vec<Arc<LinkCounters>>>,
    traffic: Arc<NodeTraffic>,
    outputs: Arc<Mutex<Vec<TimedOutput<S::Output>>>>,
    conns: Arc<ConnRegistry>,
    clock: LamportClock,
    handles: Vec<(&'static str, JoinHandle<()>)>,
    reader_handles: Arc<StdMutex<Vec<JoinHandle<()>>>>,
}

impl<S: Sm> std::fmt::Debug for WireNode<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireNode")
            .field("me", &self.me)
            .field("n", &self.n)
            .field("local_addr", &self.local_addr)
            .finish_non_exhaustive()
    }
}

impl<S> WireNode<S>
where
    S: Sm + std::marker::Send + 'static,
    S::Msg: Wire,
{
    /// Spawns a node on an already-bound listener (bind with port 0 to let
    /// the OS pick a free port, then read `local_addr`).
    ///
    /// # Panics
    ///
    /// Panics if `config.me` is out of range, `config.addrs` has fewer than
    /// two entries, `config.tick` is zero, or configuring the listener fails
    /// (use [`WireNode::try_spawn`] to handle that case as an error).
    pub fn spawn(listener: TcpListener, config: NodeConfig, sm: S) -> Self {
        Self::try_spawn(listener, config, sm).expect("configure listener")
    }

    /// Like [`spawn`](WireNode::spawn), but listener configuration failures
    /// become [`NodeError::Listener`] instead of panics.
    ///
    /// # Errors
    ///
    /// Fails if the listener's local address cannot be read or it cannot be
    /// switched to non-blocking mode.
    ///
    /// # Panics
    ///
    /// Panics if `config.me` is out of range, `config.addrs` has fewer than
    /// two entries, or `config.tick` is zero (configuration bugs, not
    /// runtime conditions).
    pub fn try_spawn(listener: TcpListener, config: NodeConfig, sm: S) -> Result<Self, NodeError> {
        Self::try_spawn_at(listener, config, sm, StdInstant::now())
    }

    /// Like [`try_spawn`](WireNode::try_spawn) with an explicit start
    /// instant, so a cluster can timestamp all nodes' outputs on one clock.
    pub(crate) fn try_spawn_at(
        listener: TcpListener,
        config: NodeConfig,
        sm: S,
        start: StdInstant,
    ) -> Result<Self, NodeError> {
        let n = config.addrs.len();
        let me = config.me;
        assert!(n >= 2, "the model requires n > 1 processes");
        assert!(me.as_usize() < n, "me out of range");
        assert!(!config.tick.is_zero(), "tick must be positive");
        let local_addr = listener
            .local_addr()
            .map_err(|e| NodeError::Listener { kind: e.kind() })?;
        listener
            .set_nonblocking(true)
            .map_err(|e| NodeError::Listener { kind: e.kind() })?;

        let clock = config
            .clock
            .clone()
            .unwrap_or_else(|| LamportClock::new(u64::from(me.0)));
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(ConnRegistry::default());
        let counters: Arc<Vec<Arc<LinkCounters>>> =
            Arc::new((0..n).map(|_| Arc::new(LinkCounters::default())).collect());
        let traffic = Arc::new(NodeTraffic::default());
        let outputs: Arc<Mutex<Vec<TimedOutput<S::Output>>>> = Arc::new(Mutex::new(Vec::new()));
        let reader_handles: Arc<StdMutex<Vec<JoinHandle<()>>>> =
            Arc::new(StdMutex::new(Vec::new()));
        let (control_tx, control_rx) = bounded::<Control<S::Msg, S::Request>>(4096);

        let mut handles = Vec::new();

        // Outbound: one link + writer thread per remote peer.
        let hello = encode_frame(&me);
        let mut links: Vec<Option<Arc<PeerLink>>> = Vec::with_capacity(n);
        for peer in 0..n {
            if peer == me.as_usize() {
                links.push(None);
                continue;
            }
            let link = Arc::new(PeerLink::new(config.addrs[peer], config.queue_capacity));
            let faults = config.faults.map(|f| {
                FaultInjector::new(
                    f.loss.clamp(0.0, 1.0),
                    f.min_delay,
                    f.max_delay,
                    mix_seed(f.seed, me, peer as u32),
                )
            });
            let jitter_seed = mix_seed(0x6A77_1EED, me, peer as u32);
            handles.push((
                "writer",
                std::thread::spawn({
                    let link = Arc::clone(&link);
                    let hello = hello.clone();
                    let backoff = config.backoff;
                    let counters = Arc::clone(&counters[peer]);
                    let conns = Arc::clone(&conns);
                    let shutdown = Arc::clone(&shutdown);
                    move || {
                        run_writer(
                            link,
                            hello,
                            backoff,
                            faults,
                            counters,
                            conns,
                            shutdown,
                            jitter_seed,
                        )
                    }
                }),
            ));
            links.push(Some(link));
        }

        // Inbound: the acceptor spawns one reader thread per connection.
        handles.push((
            "acceptor",
            std::thread::spawn({
                let control = control_tx.clone();
                let counters = Arc::clone(&counters);
                let conns = Arc::clone(&conns);
                let shutdown = Arc::clone(&shutdown);
                let reader_handles = Arc::clone(&reader_handles);
                let clock = clock.clone();
                move || {
                    run_acceptor::<S::Msg, S::Request>(
                        listener,
                        n,
                        control,
                        counters,
                        conns,
                        shutdown,
                        reader_handles,
                        clock,
                    )
                }
            }),
        ));

        // The protocol thread.
        handles.push((
            "protocol",
            std::thread::spawn({
                let env = Env::new(me, n);
                let links = links.clone();
                let counters = Arc::clone(&counters);
                let traffic = Arc::clone(&traffic);
                let outputs = Arc::clone(&outputs);
                let tick = config.tick;
                let clock = clock.clone();
                move || {
                    protocol_loop(
                        env, sm, control_rx, links, counters, traffic, outputs, tick, start, clock,
                    )
                }
            }),
        ));

        Ok(WireNode {
            me,
            n,
            local_addr,
            control: control_tx,
            shutdown,
            links,
            counters,
            traffic,
            outputs,
            conns,
            clock,
            handles,
            reader_handles,
        })
    }

    /// This node's identity.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// Cluster size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The address this node listens on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Delivers an external request to the state machine.
    pub fn request(&self, req: S::Request) {
        let _ = self.control.send(Control::Request(req));
    }

    /// Force-closes every live TCP connection this node currently has
    /// (inbound and outbound). Writers redial with backoff; peers see EOF
    /// and their writers redial too. Returns how many connections died.
    pub fn sever(&self) -> usize {
        self.conns.sever_all()
    }

    /// Per-peer link counter snapshots, indexed by [`ProcessId`] (this
    /// node's own slot stays zero).
    pub fn link_stats(&self) -> Vec<LinkStats> {
        self.counters.iter().map(|c| c.snapshot()).collect()
    }

    /// Protocol-level send accounting (the communication-efficiency oracle).
    pub fn traffic(&self) -> &NodeTraffic {
        &self.traffic
    }

    /// The node's Lamport clock handle (shared with its reader and protocol
    /// threads): ticked on each send, merged on each stamped receive.
    pub fn clock(&self) -> &LamportClock {
        &self.clock
    }

    /// A copy of all outputs emitted so far.
    pub fn outputs_snapshot(&self) -> Vec<TimedOutput<S::Output>> {
        self.outputs.lock().clone()
    }

    /// The most recent output, if any.
    pub fn latest_output(&self) -> Option<S::Output> {
        self.outputs.lock().last().map(|t| t.output.clone())
    }

    /// Signals every thread to stop without waiting for them. The protocol
    /// thread emits no further outputs after processing the stop message.
    /// Used by the cluster to halt all nodes *before* joining any of them —
    /// joining one node at a time would leave the survivors running long
    /// enough to notice the silence and re-elect.
    pub fn begin_stop(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        let _ = self.control.send(Control::Stop);
        for link in self.links.iter().flatten() {
            link.interrupt();
        }
        // Unblock reader threads stuck in a read.
        self.conns.sever_all();
    }

    /// Stops every thread, joins them, and returns all outputs, discarding
    /// thread-panic reports (see [`WireNode::stop_collecting`]).
    pub fn stop(self) -> Vec<TimedOutput<S::Output>> {
        self.stop_collecting().0
    }

    /// Stops every thread, joins them, and returns all outputs plus a
    /// [`NodeError::ThreadPanic`] for each thread that died abnormally —
    /// silently swallowing a panicked protocol thread would let a broken
    /// node masquerade as a merely quiet one.
    pub fn stop_collecting(mut self) -> (Vec<TimedOutput<S::Output>>, Vec<NodeError>) {
        self.begin_stop();
        let mut errors = Vec::new();
        for (role, h) in self.handles.drain(..) {
            if h.join().is_err() {
                errors.push(NodeError::ThreadPanic {
                    node: self.me,
                    role,
                });
            }
        }
        let readers: Vec<JoinHandle<()>> = {
            let mut g = self
                .reader_handles
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            g.drain(..).collect()
        };
        for h in readers {
            if h.join().is_err() {
                errors.push(NodeError::ThreadPanic {
                    node: self.me,
                    role: "reader",
                });
            }
        }
        (self.outputs.lock().clone(), errors)
    }
}

/// Decorrelates per-link RNG streams from one base seed.
fn mix_seed(base: u64, me: ProcessId, peer: u32) -> u64 {
    base ^ (u64::from(me.0) << 32) ^ (u64::from(peer) << 8) ^ 0x9E37_79B9
}

/// The accept loop: hands each inbound connection to a reader thread.
#[allow(clippy::too_many_arguments)]
fn run_acceptor<M, R>(
    listener: TcpListener,
    n: usize,
    control: Sender<Control<M, R>>,
    counters: Arc<Vec<Arc<LinkCounters>>>,
    conns: Arc<ConnRegistry>,
    shutdown: Arc<AtomicBool>,
    reader_handles: Arc<StdMutex<Vec<JoinHandle<()>>>>,
    clock: LamportClock,
) where
    M: Wire + Clone + std::fmt::Debug + std::marker::Send + 'static,
    R: Clone + std::fmt::Debug + std::marker::Send + 'static,
{
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                let conn_id = conns.register(&stream);
                let handle = std::thread::spawn({
                    let control = control.clone();
                    let counters = Arc::clone(&counters);
                    let conns = Arc::clone(&conns);
                    let shutdown = Arc::clone(&shutdown);
                    let clock = clock.clone();
                    move || {
                        run_reader(
                            stream, n, control, counters, conns, conn_id, shutdown, clock,
                        )
                    }
                });
                reader_handles
                    .lock()
                    .expect("reader handles poisoned")
                    .push(handle);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                std::thread::sleep(StdDuration::from_millis(10));
            }
            Err(_) => std::thread::sleep(StdDuration::from_millis(10)),
        }
    }
}

/// Reads frames off one inbound connection. The first frame must be the
/// `Hello` handshake carrying the sender's [`ProcessId`]; after that, every
/// well-formed frame is decoded as an `M` and delivered. Frames failing
/// checksum or body decode are counted and *skipped* — the length-prefix
/// framing keeps the stream aligned. Only a corrupt length prefix (framing
/// lost) or a bad handshake tears the connection down.
///
/// Version-2 frames carry a trace envelope which is merged into the node's
/// Lamport clock *here*, on the reader thread, before the message is queued
/// for the protocol thread: the clock is a shared atomic that only grows, so
/// merging early never violates causal order — the handler always runs at a
/// clock value at or above the sender's stamp.
#[allow(clippy::too_many_arguments)]
fn run_reader<M, R>(
    mut stream: TcpStream,
    n: usize,
    control: Sender<Control<M, R>>,
    counters: Arc<Vec<Arc<LinkCounters>>>,
    conns: Arc<ConnRegistry>,
    conn_id: u64,
    shutdown: Arc<AtomicBool>,
    clock: LamportClock,
) where
    M: Wire,
{
    let _ = stream.set_read_timeout(Some(StdDuration::from_millis(200)));
    let mut deframer = Deframer::new();
    let mut from: Option<ProcessId> = None;
    let mut buf = [0u8; 8192];
    'conn: while !shutdown.load(Ordering::Relaxed) {
        let nread = match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(nread) => nread,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        };
        deframer.extend(&buf[..nread]);
        loop {
            match deframer.next_frame() {
                Ok(None) => break,
                Ok(Some(payload)) => {
                    // Account the length prefix too.
                    let frame_bytes = (payload.len() + 4) as u64;
                    match from {
                        None => match decode_frame::<ProcessId>(&payload) {
                            Ok(pid) if pid.as_usize() < n => from = Some(pid),
                            // A peer that cannot even introduce itself is
                            // not speaking this protocol: drop it.
                            _ => break 'conn,
                        },
                        Some(f) => {
                            let c = &counters[f.as_usize()];
                            c.add_recv(frame_bytes);
                            match decode_frame_any::<M>(&payload) {
                                Ok((envelope, msg)) => {
                                    if let Some(env) = &envelope {
                                        clock.observe_envelope(env);
                                    }
                                    if control.send(Control::Deliver { from: f, msg }).is_err() {
                                        break 'conn;
                                    }
                                }
                                Err(_) => c.add_decode_error(),
                            }
                        }
                    }
                }
                Err(_) => {
                    // The length prefix itself is implausible: alignment is
                    // gone and nothing downstream can be trusted.
                    if let Some(f) = from {
                        counters[f.as_usize()].add_decode_error();
                    }
                    break 'conn;
                }
            }
        }
    }
    conns.deregister(conn_id);
}

/// The protocol thread: timers with reset semantics, inbox delivery,
/// wall-clock → tick mapping, sends encoded onto outbound links.
#[allow(clippy::too_many_arguments)]
fn protocol_loop<S: Sm>(
    env: Env,
    mut sm: S,
    inbox: Receiver<Control<S::Msg, S::Request>>,
    links: Vec<Option<Arc<PeerLink>>>,
    counters: Arc<Vec<Arc<LinkCounters>>>,
    traffic: Arc<NodeTraffic>,
    outputs: Arc<Mutex<Vec<TimedOutput<S::Output>>>>,
    tick: StdDuration,
    start: StdInstant,
    clock: LamportClock,
) where
    S::Msg: Wire,
{
    let me = env.id();
    let now_ticks = |at: StdInstant| -> Instant {
        Instant::from_ticks(
            (at.saturating_duration_since(start).as_nanos() / tick.as_nanos().max(1)) as u64,
        )
    };
    let mut fx: Effects<S::Msg, S::Output> = Effects::new();
    let mut deadlines: HashMap<TimerId, StdInstant> = HashMap::new();

    let apply = |fx: &mut Effects<S::Msg, S::Output>,
                 deadlines: &mut HashMap<TimerId, StdInstant>,
                 at: StdInstant| {
        let taken = fx.take();
        for s in taken.sends {
            traffic.record_send(start);
            // Tick per send attempt: clocks count events, not deliveries,
            // so a frame that is later dropped still advances the clock.
            let envelope = clock.stamp();
            let to = s.to.as_usize();
            if let Some(link) = links.get(to).and_then(|l| l.as_ref()) {
                // Shard-group traffic rides a version-3 frame tagged with
                // its shard; everything else (including the shared Ω) stays
                // on version 2.
                let frame = match s.msg.shard_tag() {
                    Some(shard) => encode_frame_sharded(&s.msg, shard, &envelope),
                    None => encode_frame_stamped(&s.msg, &envelope),
                };
                link.enqueue(frame, &counters[to]);
            }
        }
        for cmd in taken.timers {
            match cmd {
                TimerCmd::Set { timer, after } => {
                    let wall = tick
                        .checked_mul(after.ticks().min(u32::MAX as u64) as u32)
                        .unwrap_or(StdDuration::from_secs(3600));
                    deadlines.insert(timer, at + wall);
                }
                TimerCmd::Cancel { timer } => {
                    deadlines.remove(&timer);
                }
            }
        }
        if !taken.outputs.is_empty() {
            let mut out = outputs.lock();
            for o in taken.outputs {
                out.push(TimedOutput {
                    at: at.saturating_duration_since(start),
                    process: me,
                    output: o,
                });
            }
        }
    };

    let at = StdInstant::now();
    sm.on_start(&mut Ctx::new(&env, now_ticks(at), &mut fx));
    apply(&mut fx, &mut deadlines, at);

    loop {
        let now = StdInstant::now();
        let due: Vec<TimerId> = deadlines
            .iter()
            .filter(|(_, d)| **d <= now)
            .map(|(t, _)| *t)
            .collect();
        for t in due {
            deadlines.remove(&t);
            sm.on_timer(&mut Ctx::new(&env, now_ticks(now), &mut fx), t);
            apply(&mut fx, &mut deadlines, now);
        }
        let wait = deadlines
            .values()
            .min()
            .map(|d| d.saturating_duration_since(StdInstant::now()))
            .unwrap_or(StdDuration::from_millis(20));
        match inbox.recv_timeout(wait) {
            Ok(Control::Deliver { from, msg }) => {
                let at = StdInstant::now();
                sm.on_message(&mut Ctx::new(&env, now_ticks(at), &mut fx), from, msg);
                apply(&mut fx, &mut deadlines, at);
            }
            Ok(Control::Request(req)) => {
                let at = StdInstant::now();
                sm.on_request(&mut Ctx::new(&env, now_ticks(at), &mut fx), req);
                apply(&mut fx, &mut deadlines, at);
            }
            Ok(Control::Stop) => return,
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}
