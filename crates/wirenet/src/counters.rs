//! Per-link and per-node instrumentation counters.
//!
//! All counters are atomics so the writer, reader, and protocol threads can
//! bump them without sharing a lock; snapshots are taken with relaxed loads
//! (exact consistency across counters is not needed for reporting).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration as StdDuration, Instant as StdInstant};

/// Live counters for the link between this node and one remote peer
/// (both directions combined).
#[derive(Debug, Default)]
pub struct LinkCounters {
    msgs_sent: AtomicU64,
    bytes_sent: AtomicU64,
    msgs_recv: AtomicU64,
    bytes_recv: AtomicU64,
    reconnects: AtomicU64,
    queue_drops: AtomicU64,
    injected_drops: AtomicU64,
    decode_errors: AtomicU64,
}

impl LinkCounters {
    pub(crate) fn add_sent(&self, bytes: u64) {
        self.msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn add_recv(&self, bytes: u64) {
        self.msgs_recv.fetch_add(1, Ordering::Relaxed);
        self.bytes_recv.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn add_reconnect(&self) {
        self.reconnects.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_queue_drop(&self) {
        self.queue_drops.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_injected_drop(&self) {
        self.injected_drops.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_decode_error(&self) {
        self.decode_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> LinkStats {
        LinkStats {
            msgs_sent: self.msgs_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            msgs_recv: self.msgs_recv.load(Ordering::Relaxed),
            bytes_recv: self.bytes_recv.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            queue_drops: self.queue_drops.load(Ordering::Relaxed),
            injected_drops: self.injected_drops.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
        }
    }
}

/// A frozen copy of one link's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Frames written to the socket.
    pub msgs_sent: u64,
    /// Bytes written to the socket.
    pub bytes_sent: u64,
    /// Frames received and checksum-verified.
    pub msgs_recv: u64,
    /// Frame bytes received (length prefixes included).
    pub bytes_recv: u64,
    /// Successful re-establishments after a connection was lost.
    pub reconnects: u64,
    /// Frames evicted from the bounded outbound queue (drop-oldest).
    pub queue_drops: u64,
    /// Frames dropped by the injected loss model.
    pub injected_drops: u64,
    /// Frames rejected by checksum/decode (counted, then skipped).
    pub decode_errors: u64,
}

impl LinkStats {
    /// Element-wise sum with another snapshot.
    pub fn merge(self, other: LinkStats) -> LinkStats {
        LinkStats {
            msgs_sent: self.msgs_sent + other.msgs_sent,
            bytes_sent: self.bytes_sent + other.bytes_sent,
            msgs_recv: self.msgs_recv + other.msgs_recv,
            bytes_recv: self.bytes_recv + other.bytes_recv,
            reconnects: self.reconnects + other.reconnects,
            queue_drops: self.queue_drops + other.queue_drops,
            injected_drops: self.injected_drops + other.injected_drops,
            decode_errors: self.decode_errors + other.decode_errors,
        }
    }
}

/// Sentinel for "never sent" in [`NodeTraffic::last_send_nanos`].
const NEVER: u64 = u64::MAX;

/// Protocol-level send accounting for one node, mirroring the semantics of
/// `threadnet`'s router-ingress counters: a send is counted when the state
/// machine emits it, before loss/queueing can interfere. This is what the
/// communication-efficiency oracle (`senders_since`) measures.
#[derive(Debug)]
pub struct NodeTraffic {
    sent: AtomicU64,
    last_send_nanos: AtomicU64,
}

impl Default for NodeTraffic {
    fn default() -> Self {
        NodeTraffic {
            sent: AtomicU64::new(0),
            last_send_nanos: AtomicU64::new(NEVER),
        }
    }
}

impl NodeTraffic {
    pub(crate) fn record_send(&self, start: StdInstant) {
        self.sent.fetch_add(1, Ordering::Relaxed);
        let nanos = start.elapsed().as_nanos().min(u128::from(NEVER - 1)) as u64;
        self.last_send_nanos.store(nanos, Ordering::Relaxed);
    }

    /// A point-in-time copy of both counters, taken in one call.
    ///
    /// This is the only read API: reading `sent` and `last_send` through
    /// separate getters could tear (a send landing between the two loads
    /// yields a count and timestamp from different instants), which showed
    /// up as off-by-one sender sets in the efficiency oracle. The loads here
    /// are still two relaxed atomics, but every caller now gets both fields
    /// from one named snapshot, so a torn pair can't be split across
    /// decision points.
    pub fn snapshot(&self) -> NodeTrafficStats {
        NodeTrafficStats {
            sent: self.sent.load(Ordering::Relaxed),
            last_send: match self.last_send_nanos.load(Ordering::Relaxed) {
                NEVER => None,
                n => Some(StdDuration::from_nanos(n)),
            },
        }
    }
}

/// A frozen copy of one node's protocol-level send accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeTrafficStats {
    /// Total protocol-level sends.
    pub sent: u64,
    /// Offset from cluster start of the most recent send, if any.
    pub last_send: Option<StdDuration>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_counters_snapshot_counts() {
        let c = LinkCounters::default();
        c.add_sent(10);
        c.add_sent(5);
        c.add_recv(7);
        c.add_reconnect();
        c.add_queue_drop();
        c.add_injected_drop();
        c.add_decode_error();
        let s = c.snapshot();
        assert_eq!(s.msgs_sent, 2);
        assert_eq!(s.bytes_sent, 15);
        assert_eq!(s.msgs_recv, 1);
        assert_eq!(s.bytes_recv, 7);
        assert_eq!(s.reconnects, 1);
        assert_eq!(s.queue_drops, 1);
        assert_eq!(s.injected_drops, 1);
        assert_eq!(s.decode_errors, 1);
    }

    #[test]
    fn merge_adds_elementwise() {
        let a = LinkStats {
            msgs_sent: 1,
            bytes_sent: 2,
            msgs_recv: 3,
            bytes_recv: 4,
            reconnects: 5,
            queue_drops: 6,
            injected_drops: 7,
            decode_errors: 8,
        };
        let b = a;
        let m = a.merge(b);
        assert_eq!(m.msgs_sent, 2);
        assert_eq!(m.decode_errors, 16);
    }

    #[test]
    fn node_traffic_tracks_last_send() {
        let t = NodeTraffic::default();
        let s = t.snapshot();
        assert_eq!(s.sent, 0);
        assert_eq!(s.last_send, None);
        let start = StdInstant::now();
        t.record_send(start);
        let s = t.snapshot();
        assert_eq!(s.sent, 1);
        assert!(s.last_send.is_some());
    }
}
