//! Outbound peer links: one bounded queue plus one dialer/writer thread per
//! remote peer.
//!
//! The protocol thread *never* blocks on the network: it enqueues encoded
//! frames into a bounded deque that evicts its oldest entry on overflow
//! (fair-lossy — a slow or dead peer costs messages, not liveness). The
//! writer thread owns the TCP connection: it dials, retries with jittered
//! exponential backoff, sends the `Hello` handshake frame, then drains the
//! queue, applying the optional injected loss/delay at the socket layer.

use std::collections::VecDeque;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration as StdDuration;

use lls_primitives::{Fate, FaultInjector};

use crate::counters::LinkCounters;
use crate::node::ConnRegistry;

/// Reconnect backoff policy: exponential with full jitter on the upper
/// half (`sleep ∈ [delay/2, delay]`), doubling up to `max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffConfig {
    /// First retry delay.
    pub initial: StdDuration,
    /// Cap on the retry delay.
    pub max: StdDuration,
}

impl Default for BackoffConfig {
    /// 50 ms initial, 2 s cap.
    fn default() -> Self {
        BackoffConfig {
            initial: StdDuration::from_millis(50),
            max: StdDuration::from_secs(2),
        }
    }
}

/// The queue half of an outbound link, shared between the protocol thread
/// (producer) and the writer thread (consumer).
#[derive(Debug)]
pub(crate) struct PeerLink {
    addr: SocketAddr,
    capacity: usize,
    queue: Mutex<VecDeque<Vec<u8>>>,
    available: Condvar,
}

impl PeerLink {
    pub(crate) fn new(addr: SocketAddr, capacity: usize) -> Self {
        PeerLink {
            addr,
            capacity: capacity.max(1),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        }
    }

    /// Enqueues one encoded frame, evicting the oldest on overflow. Never
    /// blocks.
    pub(crate) fn enqueue(&self, frame: Vec<u8>, counters: &LinkCounters) {
        let mut q = self.queue.lock().expect("link queue poisoned");
        if q.len() >= self.capacity {
            q.pop_front();
            counters.add_queue_drop();
        }
        q.push_back(frame);
        drop(q);
        self.available.notify_one();
    }

    /// Blocks until a frame is available or shutdown is requested.
    fn pop(&self, shutdown: &AtomicBool) -> Option<Vec<u8>> {
        let mut q = self.queue.lock().expect("link queue poisoned");
        loop {
            if shutdown.load(Ordering::Relaxed) {
                return None;
            }
            if let Some(frame) = q.pop_front() {
                return Some(frame);
            }
            let (guard, _) = self
                .available
                .wait_timeout(q, StdDuration::from_millis(100))
                .expect("link queue poisoned");
            q = guard;
        }
    }

    /// Wakes the writer so it can observe a shutdown request.
    pub(crate) fn interrupt(&self) {
        self.available.notify_one();
    }
}

/// Runs the dialer/writer loop for one outbound link until shutdown.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_writer(
    link: Arc<PeerLink>,
    hello: Vec<u8>,
    backoff: BackoffConfig,
    mut faults: Option<FaultInjector>,
    counters: Arc<LinkCounters>,
    conns: Arc<ConnRegistry>,
    shutdown: Arc<AtomicBool>,
    jitter_seed: u64,
) {
    let mut jitter = FaultInjector::new(0.0, StdDuration::ZERO, StdDuration::ZERO, jitter_seed);
    let mut delay = backoff.initial;
    let mut had_connection = false;
    'dial: while !shutdown.load(Ordering::Relaxed) {
        let stream = match TcpStream::connect_timeout(&link.addr, StdDuration::from_secs(1)) {
            Ok(s) => s,
            Err(_) => {
                // Jittered exponential backoff: sleep in [delay/2, delay],
                // in small slices so shutdown stays responsive.
                let sleep = jitter.sample_between(delay / 2, delay);
                sleep_interruptibly(sleep, &shutdown);
                delay = (delay * 2).min(backoff.max);
                continue;
            }
        };
        let _ = stream.set_nodelay(true);
        if had_connection {
            counters.add_reconnect();
        }
        had_connection = true;
        delay = backoff.initial;
        let conn_id = conns.register(&stream);
        let broken = write_connected(&link, stream, &hello, &mut faults, &counters, &shutdown);
        conns.deregister(conn_id);
        if !broken {
            // Clean shutdown, not a connection failure.
            break 'dial;
        }
    }
}

/// Drains the queue onto one live connection. Returns `true` when the
/// connection broke (caller should redial), `false` on shutdown.
fn write_connected(
    link: &PeerLink,
    mut stream: TcpStream,
    hello: &[u8],
    faults: &mut Option<FaultInjector>,
    counters: &LinkCounters,
    shutdown: &AtomicBool,
) -> bool {
    if stream.write_all(hello).is_err() {
        return true;
    }
    counters.add_sent(hello.len() as u64);
    while let Some(frame) = link.pop(shutdown) {
        if let Some(inj) = faults.as_mut() {
            match inj.fate() {
                Fate::Drop => {
                    counters.add_injected_drop();
                    continue;
                }
                Fate::DeliverAfter(d) if !d.is_zero() => {
                    // Socket-layer delay: holds back this link only, which
                    // is exactly a slow network path. The protocol thread is
                    // unaffected — its sends keep landing in the queue.
                    std::thread::sleep(d);
                }
                Fate::DeliverAfter(_) => {}
            }
        }
        if stream.write_all(&frame).is_err() {
            // The frame is lost with the connection: fair-lossy semantics.
            return true;
        }
        counters.add_sent(frame.len() as u64);
    }
    false
}

/// Sleeps up to `total`, checking the shutdown flag every 50 ms.
fn sleep_interruptibly(total: StdDuration, shutdown: &AtomicBool) {
    let slice = StdDuration::from_millis(50);
    let mut remaining = total;
    while !remaining.is_zero() && !shutdown.load(Ordering::Relaxed) {
        let step = remaining.min(slice);
        std::thread::sleep(step);
        remaining -= step;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_link(cap: usize) -> PeerLink {
        PeerLink::new("127.0.0.1:1".parse().expect("addr"), cap)
    }

    #[test]
    fn queue_drops_oldest_on_overflow() {
        let link = mk_link(2);
        let counters = LinkCounters::default();
        link.enqueue(vec![1], &counters);
        link.enqueue(vec![2], &counters);
        link.enqueue(vec![3], &counters);
        assert_eq!(counters.snapshot().queue_drops, 1);
        let shutdown = AtomicBool::new(false);
        assert_eq!(link.pop(&shutdown), Some(vec![2]), "oldest was evicted");
        assert_eq!(link.pop(&shutdown), Some(vec![3]));
    }

    #[test]
    fn pop_returns_none_on_shutdown() {
        let link = mk_link(4);
        let shutdown = AtomicBool::new(true);
        assert_eq!(link.pop(&shutdown), None);
    }

    #[test]
    fn enqueue_never_blocks_even_when_full() {
        let link = mk_link(1);
        let counters = LinkCounters::default();
        for i in 0..100u8 {
            link.enqueue(vec![i], &counters);
        }
        assert_eq!(counters.snapshot().queue_drops, 99);
    }

    #[test]
    fn backoff_default_is_sane() {
        let b = BackoffConfig::default();
        assert!(b.initial <= b.max);
    }
}
