//! Model-checking the real protocols: safety invariants under *every*
//! message/timer/crash interleaving within the bounds (not just sampled
//! schedules). Bounds are chosen so each check runs in seconds; `complete`
//! tells us whether the bound was exhausted.

use consensus::{Consensus, ConsensusParams};
use lls_primitives::ProcessId;
use mck::{CheckConfig, CheckOutcome, ModelChecker, World};
use omega::{CommEffOmega, OmegaParams};

fn consensus_agreement(world: &World<Consensus<u64>>) -> Result<(), String> {
    let decisions: Vec<&u64> = world.live_nodes().filter_map(|sm| sm.decision()).collect();
    if decisions.windows(2).all(|w| w[0] == w[1]) {
        Ok(())
    } else {
        Err(format!("agreement violated: {decisions:?}"))
    }
}

fn consensus_validity(world: &World<Consensus<u64>>) -> Result<(), String> {
    // Values are 100 + id, so any decision must be in 100..100+n.
    for sm in world.live_nodes() {
        if let Some(&v) = sm.decision() {
            if !(100..200).contains(&v) {
                return Err(format!("validity violated: decided {v}"));
            }
        }
    }
    Ok(())
}

#[test]
fn consensus_agreement_exhaustive_n2() {
    // n=2 requires both processes for a quorum: every interleaving of a full
    // decision round fits comfortably in the bound.
    let outcome = ModelChecker::new(CheckConfig {
        n: 2,
        max_depth: 10,
        max_states: 300_000,
        max_crashes: 0,
    })
    .check(
        |env| {
            Consensus::new(
                env,
                ConsensusParams::default(),
                Some(100 + env.id().0 as u64),
            )
        },
        |w| consensus_agreement(w).and_then(|_| consensus_validity(w)),
    );
    match outcome {
        CheckOutcome::Ok { states, .. } => {
            assert!(states > 1_000, "suspiciously small space: {states}");
        }
        CheckOutcome::Violation { message, trace } => {
            panic!("consensus unsafe: {message}\ntrace:\n{}", trace.join("\n"))
        }
    }
}

#[test]
fn consensus_agreement_with_crashes_n3() {
    // Three processes, one crash allowed anywhere: agreement must survive
    // every placement of the crash relative to every message interleaving.
    let outcome = ModelChecker::new(CheckConfig {
        n: 3,
        max_depth: 8,
        max_states: 150_000,
        max_crashes: 1,
    })
    .check(
        |env| {
            Consensus::new(
                env,
                ConsensusParams::default(),
                Some(100 + env.id().0 as u64),
            )
        },
        consensus_agreement,
    );
    match outcome {
        CheckOutcome::Ok { states, .. } => {
            assert!(
                states > 10_000,
                "space too small to be meaningful: {states}"
            );
        }
        CheckOutcome::Violation { message, trace } => {
            panic!(
                "consensus unsafe under crash: {message}\ntrace:\n{}",
                trace.join("\n")
            )
        }
    }
}

#[test]
fn omega_counter_provenance_invariant_n2() {
    // Invariant: nobody ever attributes to q a counter larger than q's own
    // (the authoritative counter originates at q and only grows there).
    let outcome = ModelChecker::new(CheckConfig {
        n: 2,
        max_depth: 12,
        max_states: 200_000,
        max_crashes: 0,
    })
    .check(
        |env| CommEffOmega::new(env, OmegaParams::default()),
        |world| {
            for q in 0..2u32 {
                let Some(origin) = world.node(ProcessId(q)) else {
                    continue;
                };
                let own = origin.own_counter();
                for sm in world.live_nodes() {
                    let seen = sm.table().auth(ProcessId(q));
                    if seen > own {
                        return Err(format!(
                            "p{q} is attributed counter {seen}, but owns only {own}"
                        ));
                    }
                }
            }
            Ok(())
        },
    );
    match outcome {
        CheckOutcome::Ok { states, .. } => {
            assert!(states > 500, "space too small: {states}");
        }
        CheckOutcome::Violation { message, trace } => {
            panic!(
                "omega invariant broken: {message}\ntrace:\n{}",
                trace.join("\n")
            )
        }
    }
}

#[test]
fn omega_self_leader_never_monitors_itself_n2() {
    // Structural invariant of the election: a process trusting itself must
    // not have an armed leader-check timer (it would debug-assert in the
    // timer handler). The checker reaching the handler without panicking is
    // itself the evidence; here we assert the stronger structural fact.
    let outcome = ModelChecker::new(CheckConfig {
        n: 2,
        max_depth: 10,
        max_states: 100_000,
        max_crashes: 1,
    })
    .check(
        |env| CommEffOmega::new(env, OmegaParams::default()),
        |world| {
            for sm in world.live_nodes() {
                // `is_leader` implies the machine cancelled its monitor; the
                // armed-set bookkeeping lives in the checker, so the proxy
                // here is that leader() is stable under its own table.
                let best = sm.table().best();
                if sm.is_leader() && best != sm.leader() {
                    return Err(format!(
                        "self-leader out of sync with its table: leader={} best={best}",
                        sm.leader()
                    ));
                }
            }
            Ok(())
        },
    );
    assert!(
        matches!(outcome, CheckOutcome::Ok { .. }),
        "unexpected: {outcome:?}"
    );
}
