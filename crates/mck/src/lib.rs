//! A bounded explicit-state model checker for the workspace's sans-io
//! protocol state machines.
//!
//! The simulator (`netsim`) samples *random* schedules; safety claims like
//! consensus agreement must hold under **all** schedules. This crate
//! explores every interleaving of a small system exhaustively, under the
//! classic *untimed* abstraction:
//!
//! * any in-flight message may be delivered next (links reorder freely;
//!   a message may also simply never be delivered, which subsumes loss for
//!   safety purposes — the checker never forces delivery);
//! * any armed timer may fire next (arbitrary timing: timeouts carry no
//!   meaning, which over-approximates every δ/GST choice);
//! * any live process may crash (up to a configurable budget).
//!
//! Exploration is depth-first with state memoization, bounded by depth and
//! state count, and reports whether the bound was exhausted — truncation is
//! explicit, never silent. On an invariant violation it returns the full
//! transition trace as a counterexample.
//!
//! Only **safety** invariants make sense here ("no two processes decide
//! differently"), not liveness ("someone eventually decides") — the untimed
//! abstraction contains schedules where nothing is ever delivered.
//!
//! # Example: consensus agreement under all interleavings
//!
//! ```
//! use consensus::{Consensus, ConsensusParams};
//! use mck::{CheckConfig, CheckOutcome, ModelChecker};
//!
//! let config = CheckConfig {
//!     n: 2,
//!     max_depth: 8,
//!     max_states: 50_000,
//!     max_crashes: 0,
//! };
//! let outcome = ModelChecker::new(config)
//!     .check(
//!         |env| Consensus::new(env, ConsensusParams::default(), Some(env.id().0 as u64)),
//!         |world| {
//!             let decisions: Vec<&u64> = world
//!                 .live_nodes()
//!                 .filter_map(|sm| sm.decision())
//!                 .collect();
//!             if decisions.windows(2).all(|w| w[0] == w[1]) {
//!                 Ok(())
//!             } else {
//!                 Err(format!("disagreement: {decisions:?}"))
//!             }
//!         },
//!     );
//! assert!(matches!(outcome, CheckOutcome::Ok { .. }), "{outcome:?}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::{Hash, Hasher};

use lls_primitives::{Ctx, Effects, Env, Instant, ProcessId, Send, Sm, TimerCmd, TimerId};

/// Exploration bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckConfig {
    /// System size (keep tiny: 2–3).
    pub n: usize,
    /// Maximum number of transitions along any path.
    pub max_depth: usize,
    /// Maximum number of distinct states to visit before giving up.
    pub max_states: usize,
    /// How many processes the adversary may crash.
    pub max_crashes: usize,
}

impl Default for CheckConfig {
    /// n = 2, depth 10, 100k states, no crashes.
    fn default() -> Self {
        CheckConfig {
            n: 2,
            max_depth: 10,
            max_states: 100_000,
            max_crashes: 0,
        }
    }
}

/// A snapshot of the whole system handed to invariants.
pub struct World<S: Sm> {
    /// Per process: `Some(sm)` if alive, `None` if crashed.
    nodes: Vec<Option<S>>,
    /// Messages sent but not yet delivered (or never to be delivered).
    in_flight: Vec<Flight<S::Msg>>,
    /// Armed timers per process.
    armed: Vec<Vec<TimerId>>,
    crashes_used: usize,
}

/// One undelivered message.
#[derive(Debug, Clone)]
struct Flight<M> {
    from: ProcessId,
    to: ProcessId,
    msg: M,
}

impl<S: Sm> fmt::Debug for World<S>
where
    S: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("World")
            .field("nodes", &self.nodes)
            .field("in_flight", &self.in_flight.len())
            .finish_non_exhaustive()
    }
}

impl<S: Sm + Clone> Clone for World<S> {
    fn clone(&self) -> Self {
        World {
            nodes: self.nodes.clone(),
            in_flight: self.in_flight.clone(),
            armed: self.armed.clone(),
            crashes_used: self.crashes_used,
        }
    }
}

impl<S: Sm> World<S> {
    /// The state machine of `p`, if alive.
    pub fn node(&self, p: ProcessId) -> Option<&S> {
        self.nodes.get(p.as_usize()).and_then(Option::as_ref)
    }

    /// Iterates over live state machines.
    pub fn live_nodes(&self) -> impl Iterator<Item = &S> {
        self.nodes.iter().flatten()
    }

    /// Number of undelivered messages.
    pub fn in_flight_len(&self) -> usize {
        self.in_flight.len()
    }
}

/// The result of a check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckOutcome {
    /// No reachable state within the bounds violates the invariant.
    Ok {
        /// Distinct states visited.
        states: usize,
        /// `true` if the exploration finished without hitting a bound —
        /// i.e. the result covers *every* reachable state at this depth.
        complete: bool,
    },
    /// A violating state was reached.
    Violation {
        /// The invariant's error message.
        message: String,
        /// The transitions leading to the violation, in order.
        trace: Vec<String>,
    },
}

/// The checker. See the [crate docs](crate) for the semantics.
#[derive(Debug, Clone, Copy)]
pub struct ModelChecker {
    config: CheckConfig,
}

enum Transition {
    Deliver(usize),
    Fire(ProcessId, TimerId),
    Crash(ProcessId),
}

impl ModelChecker {
    /// Creates a checker with the given bounds.
    ///
    /// # Panics
    ///
    /// Panics if `config.n < 2`.
    pub fn new(config: CheckConfig) -> Self {
        assert!(config.n >= 2, "the model requires n > 1 processes");
        ModelChecker { config }
    }

    /// Explores all interleavings of the system built by `make`, checking
    /// `invariant` at every reached state.
    ///
    /// `S` must implement `Clone` (states are snapshotted) and `Debug`
    /// (states are memoized by their debug representation — adequate for
    /// the tiny systems this checker is meant for, and free of extra trait
    /// bounds on protocol types).
    pub fn check<S, F>(&self, mut make: impl FnMut(&Env) -> S, invariant: F) -> CheckOutcome
    where
        S: Sm + Clone + fmt::Debug,
        S::Msg: fmt::Debug,
        F: Fn(&World<S>) -> Result<(), String>,
    {
        let n = self.config.n;
        let mut world = World {
            nodes: Vec::with_capacity(n),
            in_flight: Vec::new(),
            armed: vec![Vec::new(); n],
            crashes_used: 0,
        };
        // Boot every process (starts are not interleaved: on_start is
        // local-only in all our protocols, so start order is immaterial;
        // messages they emit go in flight and ARE interleaved).
        for i in 0..n {
            let p = ProcessId(i as u32);
            let env = Env::new(p, n);
            let mut sm = make(&env);
            let mut fx = Effects::new();
            sm.on_start(&mut Ctx::new(&env, Instant::ZERO, &mut fx));
            world.nodes.push(Some(sm));
            apply_effects(&mut world, p, fx);
        }

        let mut visited: HashSet<u64> = HashSet::new();
        visited.insert(state_id(&world));
        let mut states = 1usize;
        let mut complete = true;
        let mut trace: Vec<String> = Vec::new();

        match self.dfs(
            &world,
            &invariant,
            &mut visited,
            &mut states,
            &mut complete,
            &mut trace,
            0,
        ) {
            Err(message) => CheckOutcome::Violation { message, trace },
            Ok(()) => CheckOutcome::Ok { states, complete },
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs<S, F>(
        &self,
        world: &World<S>,
        invariant: &F,
        visited: &mut HashSet<u64>,
        states: &mut usize,
        complete: &mut bool,
        trace: &mut Vec<String>,
        depth: usize,
    ) -> Result<(), String>
    where
        S: Sm + Clone + fmt::Debug,
        S::Msg: fmt::Debug,
        F: Fn(&World<S>) -> Result<(), String>,
    {
        invariant(world)?;
        if depth >= self.config.max_depth {
            *complete = false;
            return Ok(());
        }
        for t in self.transitions(world) {
            if *states >= self.config.max_states {
                *complete = false;
                return Ok(());
            }
            let (next, label) = self.apply(world, &t);
            let id = state_id(&next);
            if !visited.insert(id) {
                continue;
            }
            *states += 1;
            trace.push(label);
            self.dfs(
                &next,
                invariant,
                visited,
                states,
                complete,
                trace,
                depth + 1,
            )?;
            trace.pop();
        }
        Ok(())
    }

    fn transitions<S: Sm>(&self, world: &World<S>) -> Vec<Transition> {
        let mut out = Vec::new();
        for (i, f) in world.in_flight.iter().enumerate() {
            if world.nodes[f.to.as_usize()].is_some() {
                out.push(Transition::Deliver(i));
            }
        }
        for (i, timers) in world.armed.iter().enumerate() {
            if world.nodes[i].is_some() {
                for &t in timers {
                    out.push(Transition::Fire(ProcessId(i as u32), t));
                }
            }
        }
        if world.crashes_used < self.config.max_crashes {
            for i in 0..world.nodes.len() {
                if world.nodes[i].is_some() {
                    out.push(Transition::Crash(ProcessId(i as u32)));
                }
            }
        }
        out
    }

    fn apply<S>(&self, world: &World<S>, t: &Transition) -> (World<S>, String)
    where
        S: Sm + Clone + fmt::Debug,
        S::Msg: fmt::Debug,
    {
        let mut next = world.clone();
        match *t {
            Transition::Deliver(i) => {
                let f = next.in_flight.remove(i);
                let label = format!("deliver {} -> {}: {:?}", f.from, f.to, f.msg);
                let env = Env::new(f.to, next.nodes.len());
                let mut fx = Effects::new();
                if let Some(sm) = next.nodes[f.to.as_usize()].as_mut() {
                    sm.on_message(&mut Ctx::new(&env, Instant::ZERO, &mut fx), f.from, f.msg);
                }
                apply_effects(&mut next, f.to, fx);
                (next, label)
            }
            Transition::Fire(p, timer) => {
                let label = format!("fire {p} {timer}");
                next.armed[p.as_usize()].retain(|&t| t != timer);
                let env = Env::new(p, next.nodes.len());
                let mut fx = Effects::new();
                if let Some(sm) = next.nodes[p.as_usize()].as_mut() {
                    sm.on_timer(&mut Ctx::new(&env, Instant::ZERO, &mut fx), timer);
                }
                apply_effects(&mut next, p, fx);
                (next, label)
            }
            Transition::Crash(p) => {
                next.nodes[p.as_usize()] = None;
                next.armed[p.as_usize()].clear();
                next.crashes_used += 1;
                (next, format!("crash {p}"))
            }
        }
    }
}

/// Folds a step's effects into the world: sends go in flight, timer commands
/// mutate the armed set (durations are meaningless under the untimed
/// abstraction).
fn apply_effects<S: Sm>(world: &mut World<S>, from: ProcessId, fx: Effects<S::Msg, S::Output>) {
    for Send { to, msg } in fx.sends {
        world.in_flight.push(Flight { from, to, msg });
    }
    for cmd in fx.timers {
        let armed = &mut world.armed[from.as_usize()];
        match cmd {
            TimerCmd::Set { timer, .. } => {
                if !armed.contains(&timer) {
                    armed.push(timer);
                }
            }
            TimerCmd::Cancel { timer } => armed.retain(|&t| t != timer),
        }
    }
    // Outputs are deliberately dropped: invariants inspect protocol state
    // directly (decisions, leaders) so that state identity is
    // history-independent and memoization stays sound.
    drop(fx.outputs);
}

/// State identity: a hash of the debug representation of the machines, the
/// multiset of in-flight messages, and the armed timers. Debug-string
/// identity is crude but dependency-free and sound as long as `Debug`
/// faithfully reflects protocol state (derived `Debug` does).
fn state_id<S: Sm + fmt::Debug>(world: &World<S>) -> u64
where
    S::Msg: fmt::Debug,
{
    let mut flights: Vec<String> = world
        .in_flight
        .iter()
        .map(|f| format!("{}>{}:{:?}", f.from, f.to, f.msg))
        .collect();
    flights.sort();
    let mut armed: Vec<String> = world
        .armed
        .iter()
        .enumerate()
        .map(|(i, ts)| {
            let mut ts: Vec<u32> = ts.iter().map(|t| t.0).collect();
            ts.sort_unstable();
            format!("{i}:{ts:?}")
        })
        .collect();
    armed.sort();
    let mut h = DefaultHasher::new();
    format!(
        "{:?}|{:?}|{:?}|{}",
        world.nodes, flights, armed, world.crashes_used
    )
    .hash(&mut h);
    h.finish()
}

/// Convenience: count occurrences of each distinct decision among live
/// nodes using an extractor, for agreement-style invariants.
pub fn tally<S: Sm, T: Eq + Hash + Clone>(
    world: &World<S>,
    extract: impl Fn(&S) -> Option<T>,
) -> HashMap<T, usize> {
    let mut m = HashMap::new();
    for sm in world.live_nodes() {
        if let Some(v) = extract(sm) {
            *m.entry(v).or_insert(0) += 1;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy protocol: p0 sends its value; receivers adopt the first value
    /// they see and gossip it on. Agreement holds trivially — unless the
    /// deliberately broken variant is used.
    #[derive(Debug, Clone, PartialEq)]
    struct Gossip {
        broken: bool,
        value: Option<u32>,
    }

    impl Sm for Gossip {
        type Msg = u32;
        type Output = ();
        type Request = ();

        fn on_start(&mut self, ctx: &mut Ctx<'_, u32, ()>) {
            if ctx.id() == ProcessId(0) {
                self.value = Some(7);
                ctx.broadcast(7);
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, u32, ()>, from: ProcessId, msg: u32) {
            if self.value.is_none() {
                // The broken variant "adopts" a corrupted value from p1.
                let v = if self.broken && from == ProcessId(1) {
                    msg + 1
                } else {
                    msg
                };
                self.value = Some(v);
                ctx.broadcast(v);
            }
        }

        fn on_timer(&mut self, _ctx: &mut Ctx<'_, u32, ()>, _t: TimerId) {}
    }

    fn agreement(world: &World<Gossip>) -> Result<(), String> {
        let values: Vec<u32> = world.live_nodes().filter_map(|s| s.value).collect();
        if values.windows(2).all(|w| w[0] == w[1]) {
            Ok(())
        } else {
            Err(format!("values diverged: {values:?}"))
        }
    }

    #[test]
    fn correct_protocol_passes_completely() {
        let outcome = ModelChecker::new(CheckConfig {
            n: 3,
            max_depth: 12,
            max_states: 100_000,
            max_crashes: 0,
        })
        .check(
            |_| Gossip {
                broken: false,
                value: None,
            },
            agreement,
        );
        match outcome {
            CheckOutcome::Ok { states, complete } => {
                assert!(complete, "exploration should finish ({states} states)");
                assert!(states > 3, "should explore more than the initial state");
            }
            CheckOutcome::Violation { message, trace } => {
                panic!("unexpected violation: {message}\n{trace:?}")
            }
        }
    }

    #[test]
    fn broken_protocol_yields_a_counterexample_trace() {
        let outcome = ModelChecker::new(CheckConfig {
            n: 3,
            max_depth: 12,
            max_states: 100_000,
            max_crashes: 0,
        })
        .check(
            |_| Gossip {
                broken: true,
                value: None,
            },
            agreement,
        );
        match outcome {
            CheckOutcome::Violation { message, trace } => {
                assert!(message.contains("diverged"), "{message}");
                assert!(!trace.is_empty());
                // The counterexample must route a message through p1.
                assert!(
                    trace
                        .iter()
                        .any(|s| s.contains("p1 -> p2") || s.contains("p1 ->")),
                    "trace should show the corrupting hop: {trace:?}"
                );
            }
            other => panic!("expected a violation, got {other:?}"),
        }
    }

    #[test]
    fn crash_budget_expands_the_space() {
        let run = |crashes| match ModelChecker::new(CheckConfig {
            n: 2,
            max_depth: 6,
            max_states: 100_000,
            max_crashes: crashes,
        })
        .check(
            |_| Gossip {
                broken: false,
                value: None,
            },
            agreement,
        ) {
            CheckOutcome::Ok { states, .. } => states,
            v => panic!("{v:?}"),
        };
        assert!(run(1) > run(0), "crash transitions must add states");
    }

    #[test]
    fn truncation_is_reported_not_silent() {
        let outcome = ModelChecker::new(CheckConfig {
            n: 3,
            max_depth: 2, // far too shallow to finish
            max_states: 100_000,
            max_crashes: 0,
        })
        .check(
            |_| Gossip {
                broken: false,
                value: None,
            },
            agreement,
        );
        match outcome {
            CheckOutcome::Ok { complete, .. } => assert!(!complete),
            v => panic!("{v:?}"),
        }
    }

    #[test]
    fn tally_counts_values() {
        let world: World<Gossip> = World {
            nodes: vec![
                Some(Gossip {
                    broken: false,
                    value: Some(7),
                }),
                Some(Gossip {
                    broken: false,
                    value: Some(7),
                }),
                None,
            ],
            in_flight: Vec::new(),
            armed: vec![Vec::new(); 3],
            crashes_used: 1,
        };
        let t = tally(&world, |s| s.value);
        assert_eq!(t[&7], 2);
        assert_eq!(world.live_nodes().count(), 2);
        assert_eq!(world.node(ProcessId(2)), None);
    }
}
