//! Single-shot leader-driven consensus over fair-lossy links.
//!
//! A Synod-style ballot protocol whose proposer role is gated by the
//! embedded communication-efficient Ω detector: only the process that
//! currently trusts itself drives ballots, so after Ω stabilizes there is a
//! single proposer and decisions complete in one prepare/accept round trip.
//!
//! Fair-lossy links lose messages, so every phase is driven by a
//! retransmission timer and every acceptor reply is idempotent: a proposer
//! re-broadcasts its current phase message to the peers it has not heard
//! from, and re-received `Prepare`/`Accept` messages are re-answered.
//! **Safety never depends on timing or on Ω being right** — ballots and
//! majority quorums alone guarantee agreement; Ω (and a correct majority)
//! only buy liveness, exactly as the paper claims for system `S_maj`.

use std::fmt;

use lls_obs::{NoopProbe, Probe, ProbeEvent};
use lls_primitives::{
    Ctx, Duration, Effects, Env, Instant, ProcessId, Sm, StorageError, StorageHandle, TimerCmd,
    TimerId, Wire,
};
use omega::{BatchParams, CommEffOmega, OmegaMsg, OmegaParams};
use serde::{Deserialize, Serialize};

use crate::ballot::Ballot;
use crate::durable::AcceptorRecord;
use crate::msg::ConsensusMsg;

/// Timer driving retransmission and proposer restarts.
pub const RETRY_TIMER: TimerId = TimerId(0);

/// Embedded Ω timers are remapped above this base.
pub const OMEGA_TIMER_BASE: u32 = 1_000;

/// Parameters of a [`Consensus`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConsensusParams {
    /// Parameters of the embedded Ω detector.
    pub omega: OmegaParams,
    /// Retransmission / proposer-restart period.
    pub retry: Duration,
    /// Batching/pipelining knobs of the replicated log's leader fast path
    /// (ignored by single-shot consensus, which has exactly one slot).
    pub batch: BatchParams,
    /// Leader-lease knobs of the replicated log's fast read path (ignored
    /// by single-shot consensus; off by default).
    pub lease: LeaseParams,
}

impl Default for ConsensusParams {
    /// Ω defaults plus a 40-tick retry period; batching off, leases off.
    fn default() -> Self {
        ConsensusParams {
            omega: OmegaParams::default(),
            retry: Duration::from_ticks(40),
            batch: BatchParams::default(),
            lease: LeaseParams::default(),
        }
    }
}

/// Leader-lease parameters of the replicated log's fast read path.
///
/// A lease is a *bet on the ♦-timely-source assumption*: the leader asks a
/// quorum to promise not to promise a competing ballot for `duration`, and
/// the grant is only useful if the two clocks advance at comparable rates.
/// The safety margin is asymmetric on purpose — each **granter** holds off
/// elections until `receipt + duration + skew` on its own clock, while the
/// **leader** stops serving lease-reads at `round_start + duration - skew`
/// on its clock — so with per-process clock error bounded by `skew`, the
/// leader's serving window always ends before any granter frees itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeaseParams {
    /// Master switch. Off by default: with leases disabled the log behaves
    /// exactly as before this feature existed (no grant traffic, no boot
    /// blackout, lease-reads refused).
    pub enabled: bool,
    /// Nominal lease length, granted per renewal round. Renewals ride the
    /// retry timer, so this should comfortably exceed `retry` or the lease
    /// blinks off between ticks.
    pub duration: Duration,
    /// Bound on per-process clock error over one lease. Subtracted from the
    /// leader's serving window and added to the granters' holdoff.
    pub skew: Duration,
    /// **Test-only sabotage switch**: invert the skew margins (leader serves
    /// until `+ skew`, granters free at `- skew`), recreating the classic
    /// broken-lease implementation that trusts clocks exactly. The
    /// induced-violation plane (E23) uses this to prove the `StaleRead`
    /// watchdog catches a real violation. Never enable outside tests.
    pub unsafe_skew_inversion: bool,
}

impl Default for LeaseParams {
    /// Disabled; 120-tick leases with an 8-tick skew bound when enabled.
    fn default() -> Self {
        LeaseParams {
            enabled: false,
            duration: Duration::from_ticks(120),
            skew: Duration::from_ticks(8),
            unsafe_skew_inversion: false,
        }
    }
}

impl LeaseParams {
    /// Enabled lease with the default duration/skew — the common test knob.
    pub fn enabled() -> Self {
        LeaseParams {
            enabled: true,
            ..LeaseParams::default()
        }
    }
}

/// Observable events of a [`Consensus`] run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConsensusEvent<V> {
    /// The embedded Ω detector changed its output.
    Leader(ProcessId),
    /// This process decided `V` (emitted exactly once per process).
    Decided(V),
}

/// The proposer's current phase.
#[derive(Debug, Clone)]
enum Role<V> {
    Idle,
    Preparing {
        b: Ballot,
        /// Per process: `Some(reply)` once its promise arrived.
        promises: Vec<Option<Option<(Ballot, V)>>>,
    },
    Accepting {
        b: Ballot,
        v: V,
        acks: Vec<bool>,
    },
}

/// Single-shot consensus state machine (acceptor + Ω-gated proposer +
/// learner in one process).
///
/// See the [crate-level example](crate).
///
/// The `P` parameter is an observability [`Probe`] shared with the embedded
/// Ω detector; the default [`NoopProbe`] costs nothing.
#[derive(Debug, Clone)]
pub struct Consensus<V, P: Probe = NoopProbe> {
    env: Env,
    params: ConsensusParams,
    omega: CommEffOmega<P>,
    proposal: Option<V>,
    decided: Option<V>,
    // Acceptor state.
    promised: Ballot,
    accepted: Option<(Ballot, V)>,
    // Proposer state.
    role: Role<V>,
    highest_seen: Ballot,
    // Learner/decider state.
    decide_acks: Vec<bool>,
    retransmit_decide: bool,
    // Durability (see `crate::durable` for the safety arguments).
    storage: Option<StorageHandle>,
    wedged: bool,
    /// Observability sink; `NoopProbe` by default (zero cost).
    probe: P,
    /// Wall of the last stimulus (`ctx.now()` at handler entry) — gives the
    /// persistence path a timestamp without threading `ctx` through it.
    clock: Instant,
}

impl<V> Consensus<V>
where
    V: Clone + Eq + fmt::Debug + Send + Wire + 'static,
{
    /// Creates a consensus instance; `proposal` is this process's initial
    /// value (it may also arrive later as a request).
    ///
    /// # Panics
    ///
    /// Panics if the Ω parameters are invalid.
    pub fn new(env: &Env, params: ConsensusParams, proposal: Option<V>) -> Self {
        Consensus::new_with_probe(env, params, proposal, NoopProbe)
    }

    /// Creates a consensus instance backed by a durable log, recovering any
    /// state a previous incarnation persisted.
    ///
    /// Recovery runs here, synchronously, before any stimulus — the
    /// "recovering rejoin mode": the machine stays quiet until its promised
    /// ballot, accepted pair, decision and Ω counter are reloaded, so a
    /// restart can never answer from pre-crash amnesia. A recovered decision
    /// is *not* re-emitted as an output (integrity: decide at most once),
    /// and the recovered Ω counter is bumped once so the restarted process
    /// rejoins as a follower. See [`crate::durable`] for the per-field
    /// safety arguments.
    ///
    /// # Errors
    ///
    /// Fails if the log cannot be read or the boot record cannot be written.
    ///
    /// # Panics
    ///
    /// Panics if the Ω parameters are invalid.
    pub fn with_storage(
        env: &Env,
        params: ConsensusParams,
        proposal: Option<V>,
        storage: StorageHandle,
    ) -> Result<Self, StorageError> {
        Consensus::with_storage_and_probe(env, params, proposal, storage, NoopProbe)
    }
}

impl<V, P> Consensus<V, P>
where
    V: Clone + Eq + fmt::Debug + Send + Wire + 'static,
    P: Probe,
{
    /// Like [`Consensus::new`], with an observability probe (shared with
    /// the embedded Ω detector, so one sink sees both layers).
    ///
    /// # Panics
    ///
    /// Panics if the Ω parameters are invalid.
    pub fn new_with_probe(
        env: &Env,
        params: ConsensusParams,
        proposal: Option<V>,
        probe: P,
    ) -> Self {
        Consensus {
            env: *env,
            params,
            omega: CommEffOmega::new_with_probe(env, params.omega, probe.clone()),
            proposal,
            decided: None,
            promised: Ballot::ZERO,
            accepted: None,
            role: Role::Idle,
            highest_seen: Ballot::ZERO,
            decide_acks: vec![false; env.n()],
            retransmit_decide: false,
            storage: None,
            wedged: false,
            probe,
            clock: Instant::ZERO,
        }
    }

    /// Like [`Consensus::with_storage`], with an observability probe.
    ///
    /// # Errors
    ///
    /// Fails if the log cannot be read or the boot record cannot be written.
    ///
    /// # Panics
    ///
    /// Panics if the Ω parameters are invalid.
    pub fn with_storage_and_probe(
        env: &Env,
        params: ConsensusParams,
        proposal: Option<V>,
        storage: StorageHandle,
        probe: P,
    ) -> Result<Self, StorageError> {
        let mut sm = Consensus::new_with_probe(env, params, proposal, probe);
        let records: Vec<AcceptorRecord<V>> = storage.load_records()?;
        sm.probe.emit(ProbeEvent::WalRecover {
            node: env.id(),
            at: Instant::ZERO,
            records: records.len() as u64,
        });
        let recovering = !records.is_empty();
        let mut omega_counter = 0u64;
        for rec in records {
            match rec {
                AcceptorRecord::OmegaCounter(c) => omega_counter = omega_counter.max(c),
                AcceptorRecord::Promised(b) => sm.promised = sm.promised.max(b),
                AcceptorRecord::Accepted(b, v) => {
                    // An accept implies a promise at the same ballot.
                    sm.promised = sm.promised.max(b);
                    if sm.accepted.as_ref().is_none_or(|(ab, _)| b >= *ab) {
                        sm.accepted = Some((b, v));
                    }
                }
                AcceptorRecord::Decided(v) => sm.decided = Some(v),
            }
        }
        sm.highest_seen = sm.promised;
        let boot_counter = if recovering {
            omega_counter.saturating_add(1)
        } else {
            0
        };
        // Write-ahead even for the boot record: if this fails, the process
        // never joins, so no peer can have heard the new counter.
        storage.append_record(&AcceptorRecord::<V>::OmegaCounter(boot_counter))?;
        sm.omega.restore_own_counter(boot_counter);
        sm.storage = Some(storage);
        Ok(sm)
    }

    /// Appends `rec` to the durable log, if one is attached. Returns `false`
    /// — and wedges the machine — if the append failed: a process that
    /// cannot persist its promises must fall silent (behave as crashed)
    /// rather than make commitments it could forget.
    fn persist(&mut self, rec: &AcceptorRecord<V>) -> bool {
        if self.wedged {
            return false;
        }
        match &self.storage {
            None => true,
            Some(store) => {
                if store.append_record(rec).is_ok() {
                    self.probe.emit(ProbeEvent::WalAppend {
                        node: self.env.id(),
                        at: self.clock,
                    });
                    true
                } else {
                    self.probe.emit(ProbeEvent::WalWedge {
                        node: self.env.id(),
                        at: self.clock,
                    });
                    self.wedged = true;
                    false
                }
            }
        }
    }

    /// The decided value, if this process has learned it.
    pub fn decision(&self) -> Option<&V> {
        self.decided.as_ref()
    }

    /// The embedded Ω detector (for instrumentation).
    pub fn omega(&self) -> &CommEffOmega<P> {
        &self.omega
    }

    /// The value this process proposes, if any.
    pub fn proposal(&self) -> Option<&V> {
        self.proposal.as_ref()
    }

    /// The acceptor's current promise (for instrumentation).
    pub fn promised(&self) -> Ballot {
        self.promised
    }

    fn me(&self) -> ProcessId {
        self.env.id()
    }

    fn majority(&self) -> usize {
        self.env.membership().majority()
    }

    /// Runs one embedded-Ω step and translates its effects: sends are
    /// wrapped, timers are remapped above [`OMEGA_TIMER_BASE`], leader
    /// changes become [`ConsensusEvent::Leader`] and may activate the
    /// proposer.
    fn drive_omega(
        &mut self,
        ctx: &mut Ctx<'_, ConsensusMsg<V>, ConsensusEvent<V>>,
        step: impl FnOnce(&mut CommEffOmega<P>, &mut Ctx<'_, OmegaMsg, ProcessId>),
    ) {
        let mut fx: Effects<OmegaMsg, ProcessId> = Effects::new();
        let counter_before = self.omega.own_counter();
        {
            let mut octx = Ctx::new(&self.env, ctx.now(), &mut fx);
            step(&mut self.omega, &mut octx);
        }
        // Write-ahead for the embedded Ω: a bumped accusation counter must be
        // durable before any effect of this step can carry it out. On
        // failure the machine wedges and the step's effects are discarded.
        let counter_after = self.omega.own_counter();
        if counter_after != counter_before
            && !self.persist(&AcceptorRecord::OmegaCounter(counter_after))
        {
            return;
        }
        for s in fx.sends {
            ctx.send(s.to, ConsensusMsg::Omega(s.msg));
        }
        for cmd in fx.timers {
            match cmd {
                TimerCmd::Set { timer, after } => {
                    ctx.set_timer(timer.offset(OMEGA_TIMER_BASE), after);
                }
                TimerCmd::Cancel { timer } => {
                    ctx.cancel_timer(timer.offset(OMEGA_TIMER_BASE));
                }
            }
        }
        for leader in fx.outputs {
            ctx.output(ConsensusEvent::Leader(leader));
            self.on_leader_change(ctx, leader);
        }
    }

    fn on_leader_change(
        &mut self,
        ctx: &mut Ctx<'_, ConsensusMsg<V>, ConsensusEvent<V>>,
        leader: ProcessId,
    ) {
        if leader == self.me() {
            if self.decided.is_none() && matches!(self.role, Role::Idle) && self.proposal.is_some()
            {
                self.start_prepare(ctx);
            }
        } else {
            // Demoted: abandon any in-flight ballot. Safety is unaffected —
            // the ballot simply never reaches a quorum.
            self.role = Role::Idle;
        }
    }

    fn start_prepare(&mut self, ctx: &mut Ctx<'_, ConsensusMsg<V>, ConsensusEvent<V>>) {
        let b = self.highest_seen.max(self.promised).next_for(self.me());
        if !self.persist(&AcceptorRecord::Promised(b)) {
            return;
        }
        self.highest_seen = b;
        let mut promises: Vec<Option<Option<(Ballot, V)>>> = vec![None; self.env.n()];
        // Promise to our own ballot locally.
        self.promised = b;
        promises[self.me().as_usize()] = Some(self.accepted.clone());
        self.role = Role::Preparing { b, promises };
        self.probe.emit(ProbeEvent::PhaseEnter {
            node: self.env.id(),
            at: ctx.now(),
            label: "prepare",
            number: b.round(),
        });
        ctx.broadcast(ConsensusMsg::Prepare { b });
        self.try_finish_prepare(ctx);
    }

    /// Phase 1 → phase 2 transition once a majority has promised.
    fn try_finish_prepare(&mut self, ctx: &mut Ctx<'_, ConsensusMsg<V>, ConsensusEvent<V>>) {
        let Role::Preparing { b, promises } = &self.role else {
            return;
        };
        let count = promises.iter().filter(|p| p.is_some()).count();
        if count < self.majority() {
            return;
        }
        let b = *b;
        // The classic choice rule: adopt the value of the highest-ballot
        // accepted pair revealed by the quorum, else be free to propose.
        let inherited = promises
            .iter()
            .flatten()
            .flatten()
            .max_by_key(|(ab, _)| *ab)
            .map(|(_, v)| v.clone());
        let v = match inherited.or_else(|| self.proposal.clone()) {
            Some(v) => v,
            None => {
                // Leader without a value: nothing to drive yet.
                self.role = Role::Idle;
                return;
            }
        };
        if !self.persist(&AcceptorRecord::Accepted(b, v.clone())) {
            return;
        }
        let mut acks = vec![false; self.env.n()];
        // Accept our own proposal locally.
        self.promised = b;
        self.accepted = Some((b, v.clone()));
        acks[self.me().as_usize()] = true;
        self.role = Role::Accepting {
            b,
            v: v.clone(),
            acks,
        };
        self.probe.emit(ProbeEvent::PhaseEnter {
            node: self.env.id(),
            at: ctx.now(),
            label: "accept",
            number: b.round(),
        });
        ctx.broadcast(ConsensusMsg::Accept { b, v });
        self.try_finish_accept(ctx);
    }

    /// Phase 2 → decision once a majority has accepted.
    fn try_finish_accept(&mut self, ctx: &mut Ctx<'_, ConsensusMsg<V>, ConsensusEvent<V>>) {
        let Role::Accepting { v, acks, .. } = &self.role else {
            return;
        };
        if acks.iter().filter(|a| **a).count() < self.majority() {
            return;
        }
        let v = v.clone();
        self.role = Role::Idle;
        self.learn(ctx, v.clone());
        if self.wedged {
            return;
        }
        self.retransmit_decide = true;
        let me = self.me().as_usize();
        self.decide_acks[me] = true;
        ctx.broadcast(ConsensusMsg::Decide { v });
    }

    fn learn(&mut self, ctx: &mut Ctx<'_, ConsensusMsg<V>, ConsensusEvent<V>>, v: V) {
        // Agreement is checked externally by the consensus checker.
        if self.decided.is_none() {
            if !self.persist(&AcceptorRecord::Decided(v.clone())) {
                return;
            }
            self.decided = Some(v.clone());
            self.probe.emit(ProbeEvent::Decide {
                node: self.env.id(),
                at: ctx.now(),
                slot: 0,
            });
            ctx.output(ConsensusEvent::Decided(v));
        }
    }

    fn on_retry(&mut self, ctx: &mut Ctx<'_, ConsensusMsg<V>, ConsensusEvent<V>>) {
        if let Some(v) = self.decided.clone() {
            // Dissemination: the original decider retransmits to peers that
            // have not acknowledged — and so does the current Ω leader, in
            // case the decider crashed before everyone learned (the leader
            // is sending ALIVEs forever anyway, so the steady sender set is
            // unchanged).
            if self.retransmit_decide || self.omega.is_leader() {
                for q in self.env.membership().others(self.me()) {
                    if !self.decide_acks[q.as_usize()] {
                        ctx.send(q, ConsensusMsg::Decide { v: v.clone() });
                    }
                }
            }
            return;
        }
        if !self.omega.is_leader() {
            self.role = Role::Idle;
            return;
        }
        match &self.role {
            Role::Idle => {
                if self.proposal.is_some() || self.accepted.is_some() {
                    self.start_prepare(ctx);
                }
            }
            Role::Preparing { b, promises } => {
                let b = *b;
                let missing: Vec<ProcessId> = self
                    .env
                    .membership()
                    .others(self.me())
                    .filter(|q| promises[q.as_usize()].is_none())
                    .collect();
                for q in missing {
                    ctx.send(q, ConsensusMsg::Prepare { b });
                }
            }
            Role::Accepting { b, v, acks } => {
                let (b, v) = (*b, v.clone());
                let missing: Vec<ProcessId> = self
                    .env
                    .membership()
                    .others(self.me())
                    .filter(|q| !acks[q.as_usize()])
                    .collect();
                for q in missing {
                    ctx.send(q, ConsensusMsg::Accept { b, v: v.clone() });
                }
            }
        }
    }

    fn on_consensus_msg(
        &mut self,
        ctx: &mut Ctx<'_, ConsensusMsg<V>, ConsensusEvent<V>>,
        from: ProcessId,
        msg: ConsensusMsg<V>,
    ) {
        match msg {
            ConsensusMsg::Omega(_) => unreachable!("routed by caller"),
            ConsensusMsg::Prepare { b } => {
                self.highest_seen = self.highest_seen.max(b);
                if b >= self.promised {
                    // Write-ahead: the promise must be durable before the
                    // Promise reply can leave; a failed append drops the
                    // message (as if lost) and wedges the machine.
                    if !self.persist(&AcceptorRecord::Promised(b)) {
                        return;
                    }
                    self.promised = b;
                    ctx.send(
                        from,
                        ConsensusMsg::Promise {
                            b,
                            accepted: self.accepted.clone(),
                        },
                    );
                } else {
                    ctx.send(
                        from,
                        ConsensusMsg::Nack {
                            b,
                            higher: self.promised,
                        },
                    );
                }
            }
            ConsensusMsg::Promise { b, accepted } => {
                if let Role::Preparing { b: cur, promises } = &mut self.role {
                    if *cur == b {
                        promises[from.as_usize()] = Some(accepted);
                        self.try_finish_prepare(ctx);
                    }
                }
            }
            ConsensusMsg::Accept { b, v } => {
                self.highest_seen = self.highest_seen.max(b);
                if b >= self.promised {
                    if !self.persist(&AcceptorRecord::Accepted(b, v.clone())) {
                        return;
                    }
                    self.promised = b;
                    self.accepted = Some((b, v));
                    ctx.send(from, ConsensusMsg::Accepted { b });
                } else {
                    ctx.send(
                        from,
                        ConsensusMsg::Nack {
                            b,
                            higher: self.promised,
                        },
                    );
                }
            }
            ConsensusMsg::Accepted { b } => {
                if let Role::Accepting { b: cur, acks, .. } = &mut self.role {
                    if *cur == b {
                        acks[from.as_usize()] = true;
                        self.try_finish_accept(ctx);
                    }
                }
            }
            ConsensusMsg::Nack { b, higher } => {
                self.highest_seen = self.highest_seen.max(higher);
                let ours = match &self.role {
                    Role::Preparing { b: cur, .. } | Role::Accepting { b: cur, .. } => *cur == b,
                    Role::Idle => false,
                };
                if ours {
                    // Our ballot is dead; restart from a higher one at the
                    // next retry tick (immediate restart would duel hotly).
                    self.role = Role::Idle;
                }
            }
            ConsensusMsg::Decide { v } => {
                self.learn(ctx, v);
                ctx.send(from, ConsensusMsg::DecideAck);
            }
            ConsensusMsg::DecideAck => {
                self.decide_acks[from.as_usize()] = true;
            }
        }
    }
}

impl<V, P> Sm for Consensus<V, P>
where
    V: Clone + Eq + fmt::Debug + Send + Wire + 'static,
    P: Probe,
{
    type Msg = ConsensusMsg<V>;
    type Output = ConsensusEvent<V>;
    type Request = V;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Output>) {
        self.clock = ctx.now();
        if self.wedged {
            return;
        }
        ctx.set_timer(RETRY_TIMER, self.params.retry);
        self.drive_omega(ctx, |omega, octx| omega.on_start(octx));
    }

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Output>,
        from: ProcessId,
        msg: Self::Msg,
    ) {
        self.clock = ctx.now();
        if self.wedged {
            return;
        }
        match msg {
            ConsensusMsg::Omega(m) => {
                self.drive_omega(ctx, |omega, octx| omega.on_message(octx, from, m));
            }
            other => self.on_consensus_msg(ctx, from, other),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Output>, timer: TimerId) {
        self.clock = ctx.now();
        if self.wedged {
            return;
        }
        if timer.0 >= OMEGA_TIMER_BASE {
            let inner = TimerId(timer.0 - OMEGA_TIMER_BASE);
            self.drive_omega(ctx, |omega, octx| omega.on_timer(octx, inner));
        } else if timer == RETRY_TIMER {
            self.on_retry(ctx);
            ctx.set_timer(RETRY_TIMER, self.params.retry);
        } else {
            debug_assert!(false, "unexpected timer {timer}");
        }
    }

    fn on_request(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Output>, req: V) {
        self.clock = ctx.now();
        if self.wedged {
            return;
        }
        if self.proposal.is_none() {
            self.proposal = Some(req);
            if self.omega.is_leader() && self.decided.is_none() && matches!(self.role, Role::Idle) {
                self.start_prepare(ctx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lls_primitives::Instant;

    type C = Consensus<u64>;

    struct Harness {
        env: Env,
        sm: C,
        fx: Effects<ConsensusMsg<u64>, ConsensusEvent<u64>>,
    }

    impl Harness {
        fn new(me: u32, n: usize, proposal: Option<u64>) -> Self {
            let env = Env::new(ProcessId(me), n);
            let sm = Consensus::new(&env, ConsensusParams::default(), proposal);
            Harness {
                env,
                sm,
                fx: Effects::new(),
            }
        }

        fn start(&mut self) -> Effects<ConsensusMsg<u64>, ConsensusEvent<u64>> {
            let mut ctx = Ctx::new(&self.env, Instant::ZERO, &mut self.fx);
            self.sm.on_start(&mut ctx);
            self.fx.take()
        }

        fn deliver(
            &mut self,
            from: u32,
            msg: ConsensusMsg<u64>,
        ) -> Effects<ConsensusMsg<u64>, ConsensusEvent<u64>> {
            let mut ctx = Ctx::new(&self.env, Instant::ZERO, &mut self.fx);
            self.sm.on_message(&mut ctx, ProcessId(from), msg);
            self.fx.take()
        }

        fn fire_retry(&mut self) -> Effects<ConsensusMsg<u64>, ConsensusEvent<u64>> {
            let mut ctx = Ctx::new(&self.env, Instant::ZERO, &mut self.fx);
            self.sm.on_timer(&mut ctx, RETRY_TIMER);
            self.fx.take()
        }
    }

    fn b(round: u64, leader: u32) -> Ballot {
        Ballot::new(round, ProcessId(leader))
    }

    #[test]
    fn initial_omega_leader_proposes_at_start() {
        let mut h = Harness::new(0, 3, Some(42));
        let fx = h.start();
        // p0 trusts itself at start → sends Prepare to both peers.
        let prepares = fx
            .sends
            .iter()
            .filter(|s| matches!(s.msg, ConsensusMsg::Prepare { .. }))
            .count();
        assert_eq!(prepares, 2);
    }

    #[test]
    fn followers_do_not_propose() {
        let mut h = Harness::new(1, 3, Some(42));
        let fx = h.start();
        assert!(fx
            .sends
            .iter()
            .all(|s| matches!(s.msg, ConsensusMsg::Omega(_))));
    }

    #[test]
    fn full_round_reaches_decision_with_majority() {
        let mut h = Harness::new(0, 3, Some(42));
        h.start();
        // One promise (plus self) = majority of 3.
        let fx = h.deliver(
            1,
            ConsensusMsg::Promise {
                b: b(1, 0),
                accepted: None,
            },
        );
        let accepts = fx
            .sends
            .iter()
            .filter(|s| matches!(s.msg, ConsensusMsg::Accept { v: 42, .. }))
            .count();
        assert_eq!(accepts, 2, "phase 2 must broadcast the proposal");
        // One accepted (plus self) = majority → decide.
        let fx = h.deliver(1, ConsensusMsg::Accepted { b: b(1, 0) });
        assert_eq!(h.sm.decision(), Some(&42));
        assert!(fx.outputs.contains(&ConsensusEvent::Decided(42)));
        assert!(fx
            .sends
            .iter()
            .any(|s| matches!(s.msg, ConsensusMsg::Decide { v: 42 })));
    }

    #[test]
    fn prepare_quorum_inherits_highest_accepted_value() {
        let mut h = Harness::new(0, 5, Some(42));
        h.start();
        h.deliver(
            1,
            ConsensusMsg::Promise {
                b: b(1, 0),
                accepted: Some((b(0, 3), 7)),
            },
        );
        let fx = h.deliver(
            2,
            ConsensusMsg::Promise {
                b: b(1, 0),
                accepted: Some((b(0, 4), 9)),
            },
        );
        // Majority (3 of 5 incl. self): must propose 9 (higher ballot (0,4)).
        assert!(fx
            .sends
            .iter()
            .any(|s| matches!(s.msg, ConsensusMsg::Accept { v: 9, .. })));
    }

    #[test]
    fn acceptor_promises_monotonically_and_nacks_stale() {
        let mut h = Harness::new(1, 3, None);
        h.start();
        let fx = h.deliver(0, ConsensusMsg::Prepare { b: b(5, 0) });
        assert!(fx
            .sends
            .iter()
            .any(|s| s.to == ProcessId(0) && matches!(s.msg, ConsensusMsg::Promise { .. })));
        // A stale lower ballot is nacked with the promised ballot.
        let fx = h.deliver(2, ConsensusMsg::Prepare { b: b(2, 2) });
        assert!(fx.sends.iter().any(|s| s.to == ProcessId(2)
            && matches!(s.msg, ConsensusMsg::Nack { higher, .. } if higher == b(5, 0))));
    }

    #[test]
    fn acceptor_rejects_stale_accept() {
        let mut h = Harness::new(1, 3, None);
        h.start();
        h.deliver(0, ConsensusMsg::Prepare { b: b(5, 0) });
        let fx = h.deliver(2, ConsensusMsg::Accept { b: b(2, 2), v: 9 });
        assert!(fx
            .sends
            .iter()
            .any(|s| matches!(s.msg, ConsensusMsg::Nack { .. })));
        assert_eq!(h.sm.accepted, None);
    }

    #[test]
    fn reprepare_is_idempotent_for_lost_promises() {
        let mut h = Harness::new(1, 3, None);
        h.start();
        let fx1 = h.deliver(0, ConsensusMsg::Prepare { b: b(5, 0) });
        let fx2 = h.deliver(0, ConsensusMsg::Prepare { b: b(5, 0) });
        // Same promise both times; no state corruption.
        assert_eq!(fx1.sends.len(), fx2.sends.len());
        assert_eq!(h.sm.promised(), b(5, 0));
    }

    #[test]
    fn nack_abandons_ballot_and_retry_uses_higher() {
        let mut h = Harness::new(0, 3, Some(42));
        h.start(); // Preparing at b(1,0)
        h.deliver(
            1,
            ConsensusMsg::Nack {
                b: b(1, 0),
                higher: b(9, 2),
            },
        );
        assert!(matches!(h.sm.role, Role::Idle));
        let fx = h.fire_retry();
        // Restarted with a ballot above (9,2).
        let new_b = fx.sends.iter().find_map(|s| match s.msg {
            ConsensusMsg::Prepare { b } => Some(b),
            _ => None,
        });
        assert_eq!(new_b, Some(b(10, 0)));
    }

    #[test]
    fn learner_adopts_decide_acks_and_decides_once() {
        let mut h = Harness::new(2, 3, None);
        h.start();
        let fx = h.deliver(0, ConsensusMsg::Decide { v: 5 });
        assert_eq!(h.sm.decision(), Some(&5));
        assert!(fx.outputs.contains(&ConsensusEvent::Decided(5)));
        assert!(fx
            .sends
            .iter()
            .any(|s| s.to == ProcessId(0) && matches!(s.msg, ConsensusMsg::DecideAck)));
        // Retransmitted Decide: re-ack but no duplicate output.
        let fx = h.deliver(0, ConsensusMsg::Decide { v: 5 });
        assert!(fx.outputs.is_empty());
        assert!(fx
            .sends
            .iter()
            .any(|s| matches!(s.msg, ConsensusMsg::DecideAck)));
    }

    #[test]
    fn decider_retransmits_until_acked() {
        let mut h = Harness::new(0, 3, Some(42));
        h.start();
        h.deliver(
            1,
            ConsensusMsg::Promise {
                b: b(1, 0),
                accepted: None,
            },
        );
        h.deliver(1, ConsensusMsg::Accepted { b: b(1, 0) });
        assert!(h.sm.decision().is_some());
        // Nobody acked yet: retry resends Decide to both peers.
        let fx = h.fire_retry();
        let decides = fx
            .sends
            .iter()
            .filter(|s| matches!(s.msg, ConsensusMsg::Decide { .. }))
            .count();
        assert_eq!(decides, 2);
        // p1 acks: only p2 is retried.
        h.deliver(1, ConsensusMsg::DecideAck);
        let fx = h.fire_retry();
        let targets: Vec<_> = fx
            .sends
            .iter()
            .filter(|s| matches!(s.msg, ConsensusMsg::Decide { .. }))
            .map(|s| s.to)
            .collect();
        assert_eq!(targets, vec![ProcessId(2)]);
    }

    #[test]
    fn late_request_triggers_proposal_if_leader() {
        let mut h = Harness::new(0, 3, None);
        let fx = h.start();
        assert!(!fx
            .sends
            .iter()
            .any(|s| matches!(s.msg, ConsensusMsg::Prepare { .. })));
        let mut ctx_fx = Effects::new();
        let mut ctx = Ctx::new(&h.env, Instant::ZERO, &mut ctx_fx);
        h.sm.on_request(&mut ctx, 11);
        assert!(ctx_fx
            .sends
            .iter()
            .any(|s| matches!(s.msg, ConsensusMsg::Prepare { .. })));
        // A second proposal is ignored (single-shot).
        let mut ctx = Ctx::new(&h.env, Instant::ZERO, &mut ctx_fx);
        h.sm.on_request(&mut ctx, 99);
        assert_eq!(h.sm.proposal(), Some(&11));
    }

    #[test]
    fn retry_restarts_prepare_for_wedged_leader() {
        let mut h = Harness::new(0, 3, Some(42));
        h.start();
        // No replies at all; the retry tick re-sends Prepare to silent peers.
        let fx = h.fire_retry();
        let prepares = fx
            .sends
            .iter()
            .filter(|s| matches!(s.msg, ConsensusMsg::Prepare { .. }))
            .count();
        assert_eq!(prepares, 2);
    }

    #[test]
    fn restart_from_wal_preserves_promise_accept_and_decision() {
        use lls_primitives::StorageHandle;
        let env = Env::new(ProcessId(1), 3);
        let store = StorageHandle::in_memory();
        let mut fx: Effects<ConsensusMsg<u64>, ConsensusEvent<u64>> = Effects::new();
        {
            let mut sm: C =
                Consensus::with_storage(&env, ConsensusParams::default(), Some(7), store.clone())
                    .unwrap();
            let mut ctx = Ctx::new(&env, Instant::ZERO, &mut fx);
            sm.on_start(&mut ctx);
            fx.take();
            let mut ctx = Ctx::new(&env, Instant::ZERO, &mut fx);
            sm.on_message(&mut ctx, ProcessId(0), ConsensusMsg::Prepare { b: b(3, 0) });
            fx.take();
            let mut ctx = Ctx::new(&env, Instant::ZERO, &mut fx);
            sm.on_message(
                &mut ctx,
                ProcessId(0),
                ConsensusMsg::Accept { b: b(3, 0), v: 99 },
            );
            fx.take();
            // Crash: the in-memory machine is dropped, only the WAL survives.
        }
        let mut sm2: C =
            Consensus::with_storage(&env, ConsensusParams::default(), Some(7), store).unwrap();
        assert_eq!(sm2.promised(), b(3, 0), "promise must survive the crash");
        assert_eq!(
            sm2.omega().own_counter(),
            1,
            "incarnation bump: recovered counter 0 + 1"
        );
        // A stale proposer is still refused after the restart.
        let mut ctx = Ctx::new(&env, Instant::ZERO, &mut fx);
        sm2.on_message(&mut ctx, ProcessId(2), ConsensusMsg::Prepare { b: b(1, 2) });
        let out = fx.take();
        assert!(
            out.sends
                .iter()
                .any(|s| matches!(s.msg, ConsensusMsg::Nack { higher, .. } if higher == b(3, 0))),
            "restart must not forget the promise"
        );
        // A higher-ballot proposer learns of the pre-crash accepted pair.
        let mut ctx = Ctx::new(&env, Instant::ZERO, &mut fx);
        sm2.on_message(&mut ctx, ProcessId(2), ConsensusMsg::Prepare { b: b(5, 2) });
        let out = fx.take();
        assert!(
            out.sends.iter().any(|s| matches!(
                &s.msg,
                ConsensusMsg::Promise { accepted: Some((ab, v)), .. } if *ab == b(3, 0) && *v == 99
            )),
            "restart must reveal the pre-crash accepted value"
        );
    }

    #[test]
    fn restart_restores_decision_without_reemitting_output() {
        use lls_primitives::StorageHandle;
        let env = Env::new(ProcessId(1), 3);
        let store = StorageHandle::in_memory();
        let mut fx: Effects<ConsensusMsg<u64>, ConsensusEvent<u64>> = Effects::new();
        {
            let mut sm: C =
                Consensus::with_storage(&env, ConsensusParams::default(), None, store.clone())
                    .unwrap();
            let mut ctx = Ctx::new(&env, Instant::ZERO, &mut fx);
            sm.on_message(&mut ctx, ProcessId(0), ConsensusMsg::Decide { v: 55 });
            let out = fx.take();
            assert!(out.outputs.contains(&ConsensusEvent::Decided(55)));
        }
        let sm2: C =
            Consensus::with_storage(&env, ConsensusParams::default(), None, store).unwrap();
        assert_eq!(
            sm2.decided, // integrity: restored quietly, decided at most once
            Some(55)
        );
    }
}
