//! Baseline: rotating-coordinator consensus (Chandra–Toueg ◇S style).
//!
//! Before Ω-based designs, the standard way to solve consensus under
//! partial synchrony was the rotating coordinator: rounds `r = 0, 1, 2, …`
//! are pre-assigned to coordinators `c(r) = r mod n`, and an eventually
//! strong failure detector (◇S — here emulated with adaptive timeouts on
//! the current coordinator) lets processes abandon a silent coordinator and
//! move on. The paper's contribution is exactly to *replace* this pattern
//! with an Ω-gated single proposer; this module implements the classic
//! pattern so experiment E14 can compare them on equal substrate.
//!
//! Round structure (per Chandra–Toueg):
//!
//! 1. every process sends `ESTIMATE(r, ts, est)` to `c(r)`;
//! 2. `c(r)` adopts the estimate with the largest `ts` from a majority and
//!    broadcasts `PROPOSE(r, v)`;
//! 3. each process either adopts the proposal (`est := v, ts := r`) and
//!    `ACK`s, or — after its ◇S timeout on the coordinator fires — `NACK`s
//!    and moves to round `r+1`;
//! 4. on a majority of `ACK`s the coordinator decides and (reliably, via
//!    retransmission with acknowledgements) broadcasts `DECIDE`.
//!
//! The `(est, ts)` locking rule plus majority intersection gives agreement
//! regardless of timing; ◇S-style suspicion gives liveness once some
//! correct coordinator stops being suspected. All messages are round-tagged
//! and retransmitted on a timer, so fair-lossy links only delay progress.
//! Higher-round messages fast-forward a laggard into that round.

use std::fmt;

use lls_obs::{NoopProbe, Probe, ProbeEvent};
use lls_primitives::{Ctx, Duration, Env, ProcessId, Sm, TimerId};
use serde::{Deserialize, Serialize};

use crate::single::ConsensusParams;

/// Timer driving retransmission of the current phase's message.
pub const RETRY_TIMER: TimerId = TimerId(0);
/// Timer implementing the ◇S suspicion of the current coordinator.
pub const SUSPECT_TIMER: TimerId = TimerId(1);

/// Messages of [`RotatingConsensus`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RotMsg<V> {
    /// Phase 1: a process's current estimate for round `r`.
    Estimate {
        /// Round.
        r: u64,
        /// When the estimate was last locked (0 = initial).
        ts: u64,
        /// The estimate.
        est: V,
    },
    /// Phase 2: the coordinator's proposal for round `r`.
    Propose {
        /// Round.
        r: u64,
        /// The proposed value.
        v: V,
    },
    /// Phase 3 (positive): the sender adopted round `r`'s proposal.
    Ack {
        /// Round.
        r: u64,
    },
    /// Phase 3 (negative): the sender suspected the coordinator of `r`.
    Nack {
        /// Round.
        r: u64,
    },
    /// The decided value (retransmitted until acknowledged).
    Decide {
        /// The decision.
        v: V,
    },
    /// Silences `Decide` retransmission to the sender.
    DecideAck,
}

/// Classifier for per-kind message statistics.
pub fn classify_rot_msg<V>(msg: &RotMsg<V>) -> &'static str {
    match msg {
        RotMsg::Estimate { .. } => "ESTIMATE",
        RotMsg::Propose { .. } => "PROPOSE",
        RotMsg::Ack { .. } => "ACK",
        RotMsg::Nack { .. } => "NACK",
        RotMsg::Decide { .. } => "DECIDE",
        RotMsg::DecideAck => "DECIDE_ACK",
    }
}

/// Where a process is within its current round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Sent `ESTIMATE`, waiting for the coordinator's `PROPOSE`.
    WaitingPropose,
    /// Adopted and `ACK`ed (or `NACK`ed); waiting for the round to resolve.
    Responded,
}

/// Per-round coordinator bookkeeping.
#[derive(Debug, Clone)]
struct CoordState<V> {
    r: u64,
    estimates: Vec<Option<(u64, V)>>,
    proposed: Option<V>,
    acks: Vec<bool>,
    nacks: Vec<bool>,
}

/// The rotating-coordinator consensus state machine.
///
/// # Example
///
/// ```
/// use consensus::{ConsensusParams, RotatingConsensus, RotEvent};
/// use lls_primitives::{Duration, Instant, ProcessId};
/// use netsim::{SimBuilder, Topology};
///
/// let n = 3;
/// let mut sim = SimBuilder::new(n)
///     .topology(Topology::all_timely(n, Duration::from_ticks(2)))
///     .build_with(|env| {
///         RotatingConsensus::new(env, ConsensusParams::default(), 100 + env.id().0 as u64)
///     });
/// sim.run_until(Instant::from_ticks(20_000));
/// let first = sim.node(ProcessId(0)).decision().copied().expect("p0 decides");
/// for p in 1..n as u32 {
///     assert_eq!(sim.node(ProcessId(p)).decision(), Some(&first));
/// }
/// ```
#[derive(Debug, Clone)]
pub struct RotatingConsensus<V, P: Probe = NoopProbe> {
    env: Env,
    params: ConsensusParams,
    r: u64,
    est: V,
    ts: u64,
    phase: Phase,
    suspect_timeout: Duration,
    coord: Option<CoordState<V>>,
    decided: Option<V>,
    decide_acks: Vec<bool>,
    retransmit_decide: bool,
    /// Diagnostics: how many rounds this process has entered.
    rounds_entered: u64,
    /// Observability sink; `NoopProbe` by default (zero cost).
    probe: P,
}

/// Observable events of a [`RotatingConsensus`] run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RotEvent<V> {
    /// Entered round `r`.
    Round(u64),
    /// Decided `V` (exactly once per process).
    Decided(V),
}

impl<V> RotatingConsensus<V>
where
    V: Clone + Eq + fmt::Debug + Send + 'static,
{
    /// Creates the machine with this process's initial proposal.
    pub fn new(env: &Env, params: ConsensusParams, proposal: V) -> Self {
        RotatingConsensus::new_with_probe(env, params, proposal, NoopProbe)
    }
}

impl<V, P> RotatingConsensus<V, P>
where
    V: Clone + Eq + fmt::Debug + Send + 'static,
    P: Probe,
{
    /// Like [`RotatingConsensus::new`], with an observability probe.
    pub fn new_with_probe(env: &Env, params: ConsensusParams, proposal: V, probe: P) -> Self {
        RotatingConsensus {
            env: *env,
            params,
            r: 0,
            est: proposal,
            ts: 0,
            phase: Phase::WaitingPropose,
            suspect_timeout: params.omega.initial_timeout,
            coord: None,
            decided: None,
            decide_acks: vec![false; env.n()],
            retransmit_decide: false,
            rounds_entered: 0,
            probe,
        }
    }

    /// The decided value, if learned.
    pub fn decision(&self) -> Option<&V> {
        self.decided.as_ref()
    }

    /// The current round (diagnostics).
    pub fn round(&self) -> u64 {
        self.r
    }

    /// Rounds entered so far (diagnostics; measures coordinator churn).
    pub fn rounds_entered(&self) -> u64 {
        self.rounds_entered
    }

    fn me(&self) -> ProcessId {
        self.env.id()
    }

    fn n(&self) -> usize {
        self.env.n()
    }

    fn majority(&self) -> usize {
        self.env.membership().majority()
    }

    fn coordinator(&self, r: u64) -> ProcessId {
        ProcessId((r % self.n() as u64) as u32)
    }

    /// Enters round `r`: send our estimate to its coordinator and arm the
    /// suspicion timer.
    fn enter_round(&mut self, ctx: &mut Ctx<'_, RotMsg<V>, RotEvent<V>>, r: u64) {
        self.r = r;
        self.rounds_entered += 1;
        self.phase = Phase::WaitingPropose;
        self.probe.emit(ProbeEvent::PhaseEnter {
            node: self.me(),
            at: ctx.now(),
            label: "round",
            number: r,
        });
        ctx.output(RotEvent::Round(r));
        let c = self.coordinator(r);
        if c == self.me() {
            let mut cs = CoordState {
                r,
                estimates: vec![None; self.n()],
                proposed: None,
                acks: vec![false; self.n()],
                nacks: vec![false; self.n()],
            };
            cs.estimates[self.me().as_usize()] = Some((self.ts, self.est.clone()));
            self.coord = Some(cs);
            self.try_propose(ctx);
        } else {
            self.coord = None;
            ctx.send(
                c,
                RotMsg::Estimate {
                    r,
                    ts: self.ts,
                    est: self.est.clone(),
                },
            );
        }
        ctx.set_timer(SUSPECT_TIMER, self.suspect_timeout);
    }

    /// Coordinator: once a majority of estimates is in, propose the one with
    /// the largest timestamp (the locking rule that makes this safe).
    fn try_propose(&mut self, ctx: &mut Ctx<'_, RotMsg<V>, RotEvent<V>>) {
        let majority = self.majority();
        let me = self.me().as_usize();
        let Some(cs) = &mut self.coord else { return };
        if cs.proposed.is_some() {
            return;
        }
        if cs.estimates.iter().flatten().count() < majority {
            return;
        }
        let (_, v) = cs
            .estimates
            .iter()
            .flatten()
            .max_by_key(|(ts, _)| *ts)
            .expect("majority is non-empty")
            .clone();
        cs.proposed = Some(v.clone());
        // The coordinator adopts its own proposal.
        cs.acks[me] = true;
        self.est = v.clone();
        self.ts = self.r;
        self.phase = Phase::Responded;
        ctx.broadcast(RotMsg::Propose { r: self.r, v });
    }

    /// Coordinator: resolve the round once every reply is accounted for or a
    /// majority of ACKs arrived.
    fn try_resolve(&mut self, ctx: &mut Ctx<'_, RotMsg<V>, RotEvent<V>>) {
        let Some(cs) = &self.coord else { return };
        if cs.proposed.is_none() {
            return;
        }
        let acks = cs.acks.iter().filter(|a| **a).count();
        let nacks = cs.nacks.iter().filter(|a| **a).count();
        if acks >= self.majority() {
            let v = cs.proposed.clone().expect("checked above");
            self.decide(ctx, v);
        } else if acks + nacks == self.n() {
            // Fully resolved without a quorum of ACKs: move on.
            let next = self.r + 1;
            self.enter_round(ctx, next);
        }
    }

    fn decide(&mut self, ctx: &mut Ctx<'_, RotMsg<V>, RotEvent<V>>, v: V) {
        if self.decided.is_none() {
            self.decided = Some(v.clone());
            self.probe.emit(ProbeEvent::Decide {
                node: self.me(),
                at: ctx.now(),
                slot: 0,
            });
            ctx.output(RotEvent::Decided(v.clone()));
        }
        self.retransmit_decide = true;
        let me = self.me().as_usize();
        self.decide_acks[me] = true;
        ctx.broadcast(RotMsg::Decide { v });
        ctx.cancel_timer(SUSPECT_TIMER);
    }

    /// Fast-forward if `r` is ahead of us.
    fn maybe_catch_up(&mut self, ctx: &mut Ctx<'_, RotMsg<V>, RotEvent<V>>, r: u64) {
        if r > self.r && self.decided.is_none() {
            self.enter_round(ctx, r);
        }
    }

    fn on_retry(&mut self, ctx: &mut Ctx<'_, RotMsg<V>, RotEvent<V>>) {
        if let Some(v) = self.decided.clone() {
            if self.retransmit_decide {
                for q in self.env.membership().others(self.me()) {
                    if !self.decide_acks[q.as_usize()] {
                        ctx.send(q, RotMsg::Decide { v: v.clone() });
                    }
                }
            }
            return;
        }
        // Retransmit the current phase's message (fair-lossy links).
        let c = self.coordinator(self.r);
        if let Some(cs) = &self.coord {
            if let Some(v) = &cs.proposed {
                let (r, v) = (cs.r, v.clone());
                let missing: Vec<ProcessId> = self
                    .env
                    .membership()
                    .others(self.me())
                    .filter(|q| !cs.acks[q.as_usize()] && !cs.nacks[q.as_usize()])
                    .collect();
                for q in missing {
                    ctx.send(q, RotMsg::Propose { r, v: v.clone() });
                }
            }
            // (Estimates are pushed by the others' retry timers.)
        } else if self.phase == Phase::WaitingPropose {
            ctx.send(
                c,
                RotMsg::Estimate {
                    r: self.r,
                    ts: self.ts,
                    est: self.est.clone(),
                },
            );
        }
    }
}

impl<V, P> Sm for RotatingConsensus<V, P>
where
    V: Clone + Eq + fmt::Debug + Send + 'static,
    P: Probe,
{
    type Msg = RotMsg<V>;
    type Output = RotEvent<V>;
    type Request = V;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Output>) {
        ctx.set_timer(RETRY_TIMER, self.params.retry);
        self.enter_round(ctx, 0);
    }

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Output>,
        from: ProcessId,
        msg: Self::Msg,
    ) {
        match msg {
            RotMsg::Estimate { r, ts, est } => {
                self.maybe_catch_up(ctx, r);
                if let Some(cs) = &mut self.coord {
                    if cs.r == r && cs.estimates[from.as_usize()].is_none() {
                        cs.estimates[from.as_usize()] = Some((ts, est));
                        self.try_propose(ctx);
                        self.try_resolve(ctx);
                    }
                }
            }
            RotMsg::Propose { r, v } => {
                self.maybe_catch_up(ctx, r);
                if r == self.r && self.phase == Phase::WaitingPropose && self.decided.is_none() {
                    // Adopt and lock the proposal.
                    self.est = v;
                    self.ts = r;
                    self.phase = Phase::Responded;
                    ctx.send(from, RotMsg::Ack { r });
                } else if r == self.r && self.phase == Phase::Responded && self.ts == r {
                    // Retransmitted proposal: re-ACK (our ACK may be lost).
                    ctx.send(from, RotMsg::Ack { r });
                }
            }
            RotMsg::Ack { r } => {
                if let Some(cs) = &mut self.coord {
                    if cs.r == r {
                        cs.acks[from.as_usize()] = true;
                        self.try_resolve(ctx);
                    }
                }
            }
            RotMsg::Nack { r } => {
                self.maybe_catch_up(ctx, r.saturating_add(0));
                if let Some(cs) = &mut self.coord {
                    if cs.r == r {
                        cs.nacks[from.as_usize()] = true;
                        self.try_resolve(ctx);
                    }
                }
            }
            RotMsg::Decide { v } => {
                if self.decided.is_none() {
                    self.decided = Some(v.clone());
                    self.probe.emit(ProbeEvent::Decide {
                        node: self.me(),
                        at: ctx.now(),
                        slot: 0,
                    });
                    ctx.output(RotEvent::Decided(v));
                    ctx.cancel_timer(SUSPECT_TIMER);
                }
                ctx.send(from, RotMsg::DecideAck);
            }
            RotMsg::DecideAck => {
                self.decide_acks[from.as_usize()] = true;
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Output>, timer: TimerId) {
        match timer {
            RETRY_TIMER => {
                self.on_retry(ctx);
                ctx.set_timer(RETRY_TIMER, self.params.retry);
            }
            SUSPECT_TIMER => {
                if self.decided.is_some() {
                    return;
                }
                // ◇S emulation: suspect the coordinator, NACK it, grow the
                // timeout so suspicion of a live coordinator dies out, and
                // move to the next round.
                let c = self.coordinator(self.r);
                self.suspect_timeout = self.params.omega.timeout_policy.bump(self.suspect_timeout);
                self.probe.emit(ProbeEvent::TimeoutAdapt {
                    node: self.me(),
                    at: ctx.now(),
                    suspect: c,
                    timeout: self.suspect_timeout,
                });
                if c != self.me() {
                    ctx.send(c, RotMsg::Nack { r: self.r });
                }
                let next = self.r + 1;
                self.enter_round(ctx, next);
            }
            other => debug_assert!(false, "unexpected timer {other}"),
        }
    }

    /// Replaces the estimate if no round has locked one yet (pre-round-0
    /// semantics; mainly useful for tests).
    fn on_request(&mut self, _ctx: &mut Ctx<'_, Self::Msg, Self::Output>, req: V) {
        if self.ts == 0 && self.decided.is_none() {
            self.est = req;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lls_primitives::{Effects, Instant};

    type R = RotatingConsensus<u64>;

    struct Harness {
        env: Env,
        sm: R,
        fx: Effects<RotMsg<u64>, RotEvent<u64>>,
    }

    impl Harness {
        fn new(me: u32, n: usize, proposal: u64) -> Self {
            let env = Env::new(ProcessId(me), n);
            let sm = RotatingConsensus::new(&env, ConsensusParams::default(), proposal);
            Harness {
                env,
                sm,
                fx: Effects::new(),
            }
        }

        fn start(&mut self) -> Effects<RotMsg<u64>, RotEvent<u64>> {
            let mut ctx = Ctx::new(&self.env, Instant::ZERO, &mut self.fx);
            self.sm.on_start(&mut ctx);
            self.fx.take()
        }

        fn deliver(&mut self, from: u32, msg: RotMsg<u64>) -> Effects<RotMsg<u64>, RotEvent<u64>> {
            let mut ctx = Ctx::new(&self.env, Instant::ZERO, &mut self.fx);
            self.sm.on_message(&mut ctx, ProcessId(from), msg);
            self.fx.take()
        }

        fn fire(&mut self, t: TimerId) -> Effects<RotMsg<u64>, RotEvent<u64>> {
            let mut ctx = Ctx::new(&self.env, Instant::ZERO, &mut self.fx);
            self.sm.on_timer(&mut ctx, t);
            self.fx.take()
        }
    }

    #[test]
    fn round_zero_coordinator_is_p0_and_proposes_on_majority() {
        let mut h = Harness::new(0, 3, 42);
        let fx = h.start();
        // p0 coordinates round 0; non-coordinators would send estimates.
        assert!(fx.sends.is_empty(), "coordinator has its own estimate only");
        let fx = h.deliver(
            1,
            RotMsg::Estimate {
                r: 0,
                ts: 0,
                est: 7,
            },
        );
        // Majority (2 of 3): proposes max-ts estimate; ties by iteration
        // order keep a deterministic value; all estimates have ts 0, the max
        // picks one of them — and proposes it to everyone.
        let proposes = fx
            .sends
            .iter()
            .filter(|s| matches!(s.msg, RotMsg::Propose { r: 0, .. }))
            .count();
        assert_eq!(proposes, 2);
    }

    #[test]
    fn follower_sends_estimate_and_acks_proposal() {
        let mut h = Harness::new(1, 3, 11);
        let fx = h.start();
        assert!(fx
            .sends
            .iter()
            .any(|s| s.to == ProcessId(0) && matches!(s.msg, RotMsg::Estimate { r: 0, .. })));
        let fx = h.deliver(0, RotMsg::Propose { r: 0, v: 42 });
        assert!(fx
            .sends
            .iter()
            .any(|s| s.to == ProcessId(0) && matches!(s.msg, RotMsg::Ack { r: 0 })));
        // The proposal is locked.
        assert_eq!(h.sm.est, 42);
        assert_eq!(h.sm.ts, 0);
    }

    #[test]
    fn coordinator_decides_on_majority_acks() {
        let mut h = Harness::new(0, 3, 42);
        h.start();
        h.deliver(
            1,
            RotMsg::Estimate {
                r: 0,
                ts: 0,
                est: 7,
            },
        );
        let fx = h.deliver(1, RotMsg::Ack { r: 0 });
        assert!(h.sm.decision().is_some());
        assert!(fx.outputs.iter().any(|o| matches!(o, RotEvent::Decided(_))));
        assert!(fx
            .sends
            .iter()
            .any(|s| matches!(s.msg, RotMsg::Decide { .. })));
    }

    #[test]
    fn suspicion_nacks_and_advances_round() {
        let mut h = Harness::new(2, 3, 9);
        h.start();
        assert_eq!(h.sm.round(), 0);
        let t0 = h.sm.suspect_timeout;
        let fx = h.fire(SUSPECT_TIMER);
        assert_eq!(h.sm.round(), 1);
        assert!(h.sm.suspect_timeout > t0, "◇S timeout must grow");
        assert!(fx
            .sends
            .iter()
            .any(|s| s.to == ProcessId(0) && matches!(s.msg, RotMsg::Nack { r: 0 })));
        // Round 1's coordinator is p1: a fresh estimate goes there.
        assert!(fx
            .sends
            .iter()
            .any(|s| s.to == ProcessId(1) && matches!(s.msg, RotMsg::Estimate { r: 1, .. })));
    }

    #[test]
    fn coordinator_locking_rule_prefers_highest_ts() {
        // Round 3's coordinator is p0 (3 mod 3 = 0). The locked estimate
        // (ts=2) arrives with the majority-completing message, so the
        // proposal must carry it rather than the coordinator's own ts=0
        // value.
        let mut h = Harness::new(0, 3, 1);
        h.start();
        let fx = h.deliver(
            2,
            RotMsg::Estimate {
                r: 3,
                ts: 2,
                est: 99,
            },
        );
        assert_eq!(h.sm.round(), 3);
        // Majority is 2 (self + p2): the proposal goes out now and must be 99.
        assert!(
            fx.sends
                .iter()
                .any(|s| matches!(s.msg, RotMsg::Propose { r: 3, v: 99 })),
            "locking rule violated: {:?}",
            fx.sends
        );
    }

    #[test]
    fn full_nack_round_moves_coordinator_on() {
        let mut h = Harness::new(0, 3, 42);
        h.start();
        h.deliver(
            1,
            RotMsg::Estimate {
                r: 0,
                ts: 0,
                est: 7,
            },
        );
        // Proposal went out; both peers NACK.
        h.deliver(1, RotMsg::Nack { r: 0 });
        let fx = h.deliver(2, RotMsg::Nack { r: 0 });
        // acks(self)=1 + nacks=2 = n: round resolves without decision.
        assert_eq!(h.sm.round(), 1);
        assert!(h.sm.decision().is_none());
        assert!(fx.outputs.iter().any(|o| matches!(o, RotEvent::Round(1))));
    }

    #[test]
    fn learner_adopts_decide_and_acks() {
        let mut h = Harness::new(1, 3, 11);
        h.start();
        let fx = h.deliver(0, RotMsg::Decide { v: 42 });
        assert_eq!(h.sm.decision(), Some(&42));
        assert!(fx.sends.iter().any(|s| matches!(s.msg, RotMsg::DecideAck)));
        // Duplicate: re-ack, no duplicate output.
        let fx = h.deliver(0, RotMsg::Decide { v: 42 });
        assert!(fx.outputs.is_empty());
        assert!(fx.sends.iter().any(|s| matches!(s.msg, RotMsg::DecideAck)));
    }

    #[test]
    fn retry_retransmits_estimate_or_proposal() {
        // Follower retransmits its estimate.
        let mut h = Harness::new(1, 3, 11);
        h.start();
        let fx = h.fire(RETRY_TIMER);
        assert!(fx
            .sends
            .iter()
            .any(|s| matches!(s.msg, RotMsg::Estimate { r: 0, .. })));
        // Coordinator retransmits its proposal to silent peers.
        let mut h = Harness::new(0, 3, 42);
        h.start();
        h.deliver(
            1,
            RotMsg::Estimate {
                r: 0,
                ts: 0,
                est: 7,
            },
        );
        h.deliver(1, RotMsg::Ack { r: 0 }); // decides
        let mut h2 = Harness::new(0, 3, 42);
        h2.start();
        h2.deliver(
            1,
            RotMsg::Estimate {
                r: 0,
                ts: 0,
                est: 7,
            },
        );
        let fx = h2.fire(RETRY_TIMER);
        let proposes = fx
            .sends
            .iter()
            .filter(|s| matches!(s.msg, RotMsg::Propose { r: 0, .. }))
            .count();
        assert_eq!(proposes, 2, "re-propose to both silent peers");
    }

    #[test]
    fn stale_round_messages_are_ignored() {
        let mut h = Harness::new(0, 3, 42);
        h.start();
        h.fire(SUSPECT_TIMER); // now in round 1, no coord state
        let before = h.sm.round();
        h.deliver(
            1,
            RotMsg::Estimate {
                r: 0,
                ts: 0,
                est: 7,
            },
        );
        h.deliver(1, RotMsg::Ack { r: 0 });
        assert_eq!(h.sm.round(), before);
        assert!(h.sm.decision().is_none());
    }
}
