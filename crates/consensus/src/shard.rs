//! Sharded multi-group replication: many independent replicated logs per
//! node, one shared Ω detector feeding leadership to all of them.
//!
//! A single [`ReplicatedLog`] is one serialization
//! point: every command, whatever key it touches, flows through one slot
//! sequence. This module partitions the keyspace into `S` independent RSM
//! *groups* — each with its own slot sequence, WAL segment, and batching
//! parameters — so disjoint keys commit in parallel.
//!
//! The communication-efficiency concern is the heartbeat plane: a naive
//! deployment embeds one Ω per group, multiplying the detector's n−1 timely
//! links by `S`. Here every node runs **one** [`CommEffOmega`] instance and
//! multiplexes its output across all locally attached groups (each group is
//! constructed in external-leadership mode, see
//! [`ReplicatedLog::set_leader`]). Steady-state election traffic is
//! therefore independent of the shard count — the property experiment E20
//! gates on.
//!
//! Pieces:
//!
//! * [`ShardId`] / [`PlacementMap`] — a static-for-now shard map: key →
//!   shard via a stable FNV-1a hash, shard → replica set.
//! * [`PlacementManager`] — which shard groups are attached on this node
//!   (attach/detach).
//! * [`ShardMsg`] — the multiplexed wire envelope: shared-Ω traffic travels
//!   untagged; group traffic carries its [`ShardId`] and is stamped into a
//!   version-3 frame by shard-aware transports (see
//!   [`Wire::shard_tag`]).
//! * [`ShardedNode`] — the per-node composite state machine: one shared Ω,
//!   a map of externally-led groups, timer and message demultiplexing, and
//!   per-group WAL recovery on restart.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use lls_obs::{NoopProbe, Probe};
use lls_primitives::wire::{Wire, WireError, WireReader};
use lls_primitives::{
    Ctx, Effects, Env, Instant, ProcessId, Sm, SnapshotHandle, StorageError, StorageHandle,
    TimerCmd, TimerId,
};
use omega::{CommEffOmega, OmegaMsg};
use serde::{Deserialize, Serialize};

use crate::durable::RsmRecord;
use crate::msg::{classify_rsm_msg, RsmMsg};
use crate::rsm::{LifecycleId, ReplicatedLog, RsmEvent};
use crate::single::{ConsensusParams, OMEGA_TIMER_BASE, RETRY_TIMER};

/// Identifier of one shard group. Shard ids are dense: `0..shard_count`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ShardId(pub u32);

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard{}", self.0)
    }
}

impl Wire for ShardId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ShardId(u32::decode(r)?))
    }
}

/// Stable 64-bit FNV-1a hash — the key router's hash function. Stability
/// matters: the same key must map to the same shard on every node, every
/// incarnation, every build.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The static shard map: key → shard (stable hash mod `S`) and shard →
/// replica set. Placement is static for now — the map is built once and
/// shared by clients (for routing) and nodes (for attachment decisions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementMap {
    shards: u32,
    replica_sets: Vec<Vec<ProcessId>>,
}

impl PlacementMap {
    /// A uniform placement: `shards` groups, each replicated on all `n`
    /// processes. This is the layout the E20 experiment and the in-repo
    /// clusters use — every node hosts every group, so the single shared Ω
    /// leader leads them all.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or ≥ the Ω timer base (the shard id
    /// doubles as the group's retry-timer id on a node, so the id space
    /// below the base (1000) bounds the shard count).
    pub fn uniform(shards: u32, n: usize) -> Self {
        assert!(shards > 0, "at least one shard");
        assert!(
            shards < OMEGA_TIMER_BASE,
            "shard count must stay below the Ω timer base ({OMEGA_TIMER_BASE})"
        );
        let everyone: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
        PlacementMap {
            shards,
            replica_sets: vec![everyone; shards as usize],
        }
    }

    /// Number of shards in the map.
    pub fn shard_count(&self) -> u32 {
        self.shards
    }

    /// Routes a key to its shard: FNV-1a of the key bytes, mod the shard
    /// count. Total (every key maps to exactly one shard) and stable (the
    /// mapping never depends on node, time, or build).
    pub fn shard_of_key(&self, key: &str) -> ShardId {
        self.shard_of_hash(fnv1a64(key.as_bytes()))
    }

    /// Routes a precomputed 64-bit hash to its shard.
    pub fn shard_of_hash(&self, hash: u64) -> ShardId {
        ShardId((hash % u64::from(self.shards)) as u32)
    }

    /// The replica set of `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn replicas(&self, shard: ShardId) -> &[ProcessId] {
        &self.replica_sets[shard.0 as usize]
    }

    /// All shard ids, in order.
    pub fn shard_ids(&self) -> impl Iterator<Item = ShardId> {
        (0..self.shards).map(ShardId)
    }
}

/// Which shard groups are attached on one node, against a shared
/// [`PlacementMap`]. Attachment is what makes a node host a group's
/// acceptor/learner state; the map alone is just routing metadata.
#[derive(Debug, Clone)]
pub struct PlacementManager {
    map: PlacementMap,
    attached: BTreeSet<ShardId>,
}

impl PlacementManager {
    /// A manager with no groups attached yet.
    pub fn new(map: PlacementMap) -> Self {
        PlacementManager {
            map,
            attached: BTreeSet::new(),
        }
    }

    /// A manager with every shard of `map` attached — the uniform layout
    /// where each node hosts each group.
    pub fn with_all_attached(map: PlacementMap) -> Self {
        let attached = map.shard_ids().collect();
        PlacementManager { map, attached }
    }

    /// The shared shard map.
    pub fn map(&self) -> &PlacementMap {
        &self.map
    }

    /// Marks `shard` attached. Returns `true` if it was newly attached.
    pub fn attach(&mut self, shard: ShardId) -> bool {
        self.attached.insert(shard)
    }

    /// Marks `shard` detached. Returns `true` if it was attached.
    pub fn detach(&mut self, shard: ShardId) -> bool {
        self.attached.remove(&shard)
    }

    /// Whether `shard` is attached on this node.
    pub fn is_attached(&self, shard: ShardId) -> bool {
        self.attached.contains(&shard)
    }

    /// The attached shards, in id order.
    pub fn attached(&self) -> impl Iterator<Item = ShardId> + '_ {
        self.attached.iter().copied()
    }
}

/// The multiplexed wire envelope of a sharded node: one link carries the
/// shared Ω's heartbeats (untagged) interleaved with every co-located
/// group's consensus traffic (tagged with its [`ShardId`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardMsg<V> {
    /// Shared per-node leader-election traffic — one Ω however many shards.
    Omega(OmegaMsg),
    /// Consensus traffic of one shard group.
    Rsm {
        /// The group this message belongs to.
        shard: ShardId,
        /// The group's consensus message.
        msg: RsmMsg<V>,
    },
}

impl<V: Wire> Wire for ShardMsg<V> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ShardMsg::Omega(m) => {
                out.push(0);
                m.encode(out);
            }
            ShardMsg::Rsm { shard, msg } => {
                out.push(1);
                shard.encode(out);
                msg.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(ShardMsg::Omega(OmegaMsg::decode(r)?)),
            1 => Ok(ShardMsg::Rsm {
                shard: ShardId::decode(r)?,
                msg: RsmMsg::decode(r)?,
            }),
            tag => Err(WireError::BadTag {
                type_name: "ShardMsg",
                tag,
            }),
        }
    }

    /// Group traffic rides a shard-tagged version-3 frame; the shared Ω's
    /// messages stay untagged (version 2), since they belong to the node,
    /// not to any one group.
    fn shard_tag(&self) -> Option<u32> {
        match self {
            ShardMsg::Omega(_) => None,
            ShardMsg::Rsm { shard, .. } => Some(shard.0),
        }
    }
}

/// Classifier for per-kind message statistics of [`ShardMsg`]: Ω traffic
/// classifies as `ALIVE`/`ACCUSE` exactly like the unsharded stack, group
/// traffic by its consensus kind — so heartbeat-flatness comparisons across
/// shard counts read straight off the substrate's kind counters.
pub fn classify_shard_msg<V>(msg: &ShardMsg<V>) -> &'static str {
    match msg {
        ShardMsg::Omega(m) => omega::classify_msg(m),
        ShardMsg::Rsm { msg, .. } => classify_rsm_msg(msg),
    }
}

/// Observable events of a [`ShardedNode`] run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardEvent<V> {
    /// The shared Ω detector changed its output (one announcement per node,
    /// however many groups it feeds).
    Leader(ProcessId),
    /// A slot of one shard group committed, in strict slot order per group.
    /// `cmd` is `None` for no-op filler slots.
    Committed {
        /// The group the slot belongs to.
        shard: ShardId,
        /// The slot index within that group's log.
        slot: u64,
        /// The committed command, if not a no-op.
        cmd: Option<V>,
    },
    /// One shard group completed a snapshot-install state transfer: the
    /// application must replace that shard's materialized state with
    /// `state` before consuming its further `Committed` events.
    SnapshotInstalled {
        /// The group whose state was replaced.
        shard: ShardId,
        /// First slot of that group's log not covered by the state.
        watermark: u64,
        /// The application state blob for that shard.
        state: Vec<u8>,
    },
    /// One shard group resolved a read-index request: serving the read is
    /// linearizable once the group's applied state covers slots `< index`.
    ReadIndexAt {
        /// The group the read targets.
        shard: ShardId,
        /// The opaque request token passed to
        /// [`ShardedNode::request_read_index`].
        req: u64,
        /// The decided watermark the read must wait for.
        index: u64,
    },
}

/// A client command addressed to one shard group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRequest<V> {
    /// The target group.
    pub shard: ShardId,
    /// The command to replicate in that group's log.
    pub cmd: V,
}

/// One node of a sharded deployment: a single shared [`CommEffOmega`]
/// detector plus one externally-led [`ReplicatedLog`] per locally attached
/// shard group, demultiplexed over a single transport.
///
/// Leadership flows in one direction: the shared Ω elects a per-node
/// leader; every attached group whose replica set contains that leader has
/// it injected via [`ReplicatedLog::set_leader`]. The groups themselves
/// never send Ω traffic, so per-node heartbeat volume is the same for one
/// shard as for a hundred.
///
/// Timer multiplexing: the shared Ω's timers are offset by
/// `OMEGA_TIMER_BASE` (1000); group `s`'s retry timer maps to `TimerId(s)` —
/// which is why shard ids must stay below the base.
#[derive(Debug, Clone)]
pub struct ShardedNode<V, P: Probe = NoopProbe> {
    env: Env,
    omega: CommEffOmega<P>,
    placement: PlacementManager,
    groups: BTreeMap<ShardId, ReplicatedLog<V, P>>,
    omega_store: Option<StorageHandle>,
    believed: Option<ProcessId>,
    params: ConsensusParams,
    probe: P,
    wedged: bool,
}

impl<V> ShardedNode<V>
where
    V: Clone + Eq + fmt::Debug + Send + Wire + LifecycleId + 'static,
{
    /// Creates a node hosting every shard attached in `placement`, all
    /// groups sharing `params` (per-group parameter overrides go through
    /// [`ShardedNode::attach_with_params`]).
    ///
    /// # Panics
    ///
    /// Panics if the Ω parameters are invalid.
    pub fn new(env: &Env, params: ConsensusParams, placement: PlacementManager) -> Self {
        ShardedNode::new_with_probe(env, params, placement, NoopProbe)
    }

    /// Creates a node whose attached groups each recover from their own WAL
    /// segment (`stores`), and whose shared Ω counter recovers from its own
    /// dedicated segment (`omega_store`) — so a restart resumes **every**
    /// co-located group from its own durable state.
    ///
    /// # Errors
    ///
    /// Fails if any WAL cannot be read or a boot record cannot be written.
    ///
    /// # Panics
    ///
    /// Panics if the Ω parameters are invalid, or if an attached shard has
    /// no storage handle in `stores`.
    pub fn with_storage(
        env: &Env,
        params: ConsensusParams,
        placement: PlacementManager,
        stores: &BTreeMap<ShardId, StorageHandle>,
        omega_store: StorageHandle,
    ) -> Result<Self, StorageError> {
        ShardedNode::with_storage_and_probe(env, params, placement, stores, omega_store, NoopProbe)
    }

    /// Like [`ShardedNode::with_storage`], additionally attaching one
    /// snapshot store per shard (shards missing from `snaps` run without
    /// compaction). Each group recovers snapshot-first, then WAL — see
    /// [`ReplicatedLog::with_storage_and_snapshots`].
    ///
    /// # Errors
    ///
    /// Fails if any WAL or snapshot store cannot be read or a boot record
    /// cannot be written.
    ///
    /// # Panics
    ///
    /// Panics if the Ω parameters are invalid, or if an attached shard has
    /// no storage handle in `stores`.
    pub fn with_storage_and_snapshots(
        env: &Env,
        params: ConsensusParams,
        placement: PlacementManager,
        stores: &BTreeMap<ShardId, StorageHandle>,
        snaps: &BTreeMap<ShardId, SnapshotHandle>,
        omega_store: StorageHandle,
    ) -> Result<Self, StorageError> {
        ShardedNode::with_storage_snapshots_and_probe(
            env,
            params,
            placement,
            stores,
            snaps,
            omega_store,
            NoopProbe,
        )
    }
}

impl<V, P> ShardedNode<V, P>
where
    V: Clone + Eq + fmt::Debug + Send + Wire + LifecycleId + 'static,
    P: Probe,
{
    /// Like [`ShardedNode::new`], with an observability probe shared by the
    /// Ω detector and every group.
    ///
    /// # Panics
    ///
    /// Panics if the Ω parameters are invalid.
    pub fn new_with_probe(
        env: &Env,
        params: ConsensusParams,
        placement: PlacementManager,
        probe: P,
    ) -> Self {
        let groups = placement
            .attached()
            .map(|shard| {
                let mut group =
                    ReplicatedLog::new_externally_led_with_probe(env, params, probe.clone());
                group.set_probe_shard(shard.0);
                (shard, group)
            })
            .collect();
        ShardedNode {
            env: *env,
            omega: CommEffOmega::new_with_probe(env, params.omega, probe.clone()),
            placement,
            groups,
            omega_store: None,
            believed: None,
            params,
            probe,
            wedged: false,
        }
    }

    /// Like [`ShardedNode::with_storage`], with an observability probe.
    ///
    /// # Errors
    ///
    /// Fails if any WAL cannot be read or a boot record cannot be written.
    ///
    /// # Panics
    ///
    /// Panics if the Ω parameters are invalid, or if an attached shard has
    /// no storage handle in `stores`.
    pub fn with_storage_and_probe(
        env: &Env,
        params: ConsensusParams,
        placement: PlacementManager,
        stores: &BTreeMap<ShardId, StorageHandle>,
        omega_store: StorageHandle,
        probe: P,
    ) -> Result<Self, StorageError> {
        ShardedNode::with_storage_snapshots_and_probe(
            env,
            params,
            placement,
            stores,
            &BTreeMap::new(),
            omega_store,
            probe,
        )
    }

    /// Like [`ShardedNode::with_storage_and_snapshots`], with an
    /// observability probe.
    ///
    /// # Errors
    ///
    /// Fails if any WAL or snapshot store cannot be read or a boot record
    /// cannot be written.
    ///
    /// # Panics
    ///
    /// Panics if the Ω parameters are invalid, or if an attached shard has
    /// no storage handle in `stores`.
    pub fn with_storage_snapshots_and_probe(
        env: &Env,
        params: ConsensusParams,
        placement: PlacementManager,
        stores: &BTreeMap<ShardId, StorageHandle>,
        snaps: &BTreeMap<ShardId, SnapshotHandle>,
        omega_store: StorageHandle,
        probe: P,
    ) -> Result<Self, StorageError> {
        let mut groups = BTreeMap::new();
        for shard in placement.attached() {
            let store = stores
                .get(&shard)
                .unwrap_or_else(|| panic!("no WAL segment for attached {shard}"))
                .clone();
            let mut group = match snaps.get(&shard) {
                Some(snap) => ReplicatedLog::with_storage_snapshots_externally_led(
                    env,
                    params,
                    store,
                    snap.clone(),
                    probe.clone(),
                )?,
                None => {
                    ReplicatedLog::with_storage_externally_led(env, params, store, probe.clone())?
                }
            };
            group.set_probe_shard(shard.0);
            groups.insert(shard, group);
        }
        // The shared Ω counter lives in its own segment: recover the highest
        // persisted counter, rejoin one incarnation above it (exactly the
        // single-log recovery rule), and write the boot record ahead of any
        // message that could reveal the new counter.
        let records: Vec<RsmRecord<V>> = omega_store.load_records()?;
        let mut counter = 0u64;
        for rec in &records {
            if let RsmRecord::OmegaCounter(c) = rec {
                counter = counter.max(*c);
            }
        }
        let boot = if records.is_empty() {
            0
        } else {
            counter.saturating_add(1)
        };
        omega_store.append_record(&RsmRecord::<V>::OmegaCounter(boot))?;
        let mut sm = ShardedNode {
            env: *env,
            omega: CommEffOmega::new_with_probe(env, params.omega, probe.clone()),
            placement,
            groups,
            omega_store: Some(omega_store),
            believed: None,
            params,
            probe,
            wedged: false,
        };
        sm.omega.restore_own_counter(boot);
        Ok(sm)
    }

    /// The shared Ω detector (for instrumentation).
    pub fn omega(&self) -> &CommEffOmega<P> {
        &self.omega
    }

    /// The placement manager (map + local attachments).
    pub fn placement(&self) -> &PlacementManager {
        &self.placement
    }

    /// The locally attached group of `shard`, if any.
    pub fn group(&self, shard: ShardId) -> Option<&ReplicatedLog<V, P>> {
        self.groups.get(&shard)
    }

    /// All locally attached groups, in shard order.
    pub fn groups(&self) -> impl Iterator<Item = (ShardId, &ReplicatedLog<V, P>)> {
        self.groups.iter().map(|(s, g)| (*s, g))
    }

    /// Compacts one attached group: installs `state` as its durable
    /// snapshot at `watermark` and rewrites its WAL segment to live records
    /// only (see [`ReplicatedLog::compact`]). Returns `Ok(false)` when the
    /// shard is not attached locally or the group declined (no snapshot
    /// store, watermark not advancing, wedged).
    ///
    /// # Errors
    ///
    /// Propagates a WAL rewrite failure; the group is wedged first.
    pub fn compact_shard(
        &mut self,
        shard: ShardId,
        watermark: u64,
        state: Vec<u8>,
    ) -> Result<bool, StorageError> {
        match self.groups.get_mut(&shard) {
            Some(group) => group.compact(watermark, state),
            None => Ok(false),
        }
    }

    /// The leader this node currently believes in (the shared Ω's last
    /// announcement), if any has been made.
    pub fn believed_leader(&self) -> Option<ProcessId> {
        self.believed
    }

    /// Whether this node may serve a lease read for `shard` locally at
    /// `now`: it leads that group and holds a quorum-acked, unexpired
    /// lease. `false` when the shard is not attached.
    pub fn lease_read_allowed(&self, shard: ShardId, now: Instant) -> bool {
        self.groups
            .get(&shard)
            .is_some_and(|g| g.lease_read_allowed(now))
    }

    /// Requests a read index for `shard` (see
    /// [`ReplicatedLog::request_read_index`]): the leaseholder answers with
    /// [`ShardEvent::ReadIndexAt`] synchronously, a follower forwards to the
    /// believed leader. Silently dropped when the shard is not attached.
    pub fn request_read_index(
        &mut self,
        ctx: &mut Ctx<'_, ShardMsg<V>, ShardEvent<V>>,
        shard: ShardId,
        req: u64,
    ) {
        if self.wedged {
            return;
        }
        self.drive_group(ctx, shard, |g, gctx| g.request_read_index(gctx, req));
    }

    /// Attaches `shard` at runtime with this node's default parameters: a
    /// fresh externally-led group is created, started (its retry timer
    /// armed), and fed the currently believed leader. A no-op if already
    /// attached.
    pub fn attach(&mut self, ctx: &mut Ctx<'_, ShardMsg<V>, ShardEvent<V>>, shard: ShardId) {
        let params = self.params;
        self.attach_with_params(ctx, shard, params);
    }

    /// Like [`ShardedNode::attach`], with group-specific parameters (each
    /// group may run its own [`BatchParams`](crate::BatchParams)).
    pub fn attach_with_params(
        &mut self,
        ctx: &mut Ctx<'_, ShardMsg<V>, ShardEvent<V>>,
        shard: ShardId,
        params: ConsensusParams,
    ) {
        if self.groups.contains_key(&shard) {
            return;
        }
        self.placement.attach(shard);
        let mut group =
            ReplicatedLog::new_externally_led_with_probe(&self.env, params, self.probe.clone());
        group.set_probe_shard(shard.0);
        self.groups.insert(shard, group);
        self.drive_group(ctx, shard, |g, gctx| g.on_start(gctx));
        if let Some(leader) = self.believed {
            if self.placement.map().replicas(shard).contains(&leader) {
                self.drive_group(ctx, shard, |g, gctx| g.set_leader(gctx, leader));
            }
        }
    }

    /// Detaches `shard`: its retry timer is cancelled and its group state
    /// dropped (a durable group's WAL segment survives for a future
    /// re-attach). A no-op if not attached.
    pub fn detach(&mut self, ctx: &mut Ctx<'_, ShardMsg<V>, ShardEvent<V>>, shard: ShardId) {
        if self.groups.remove(&shard).is_some() {
            self.placement.detach(shard);
            ctx.cancel_timer(TimerId(shard.0));
        }
    }

    /// Runs one step of the group of `shard` (silently dropped if not
    /// attached), translating its effects into the sharded envelope: sends
    /// are tagged with the shard, the group's retry timer maps to
    /// `TimerId(shard)`, commits become [`ShardEvent::Committed`]. Per-group
    /// `Leader` events are suppressed — the shared Ω's announcement is the
    /// authoritative one and would otherwise repeat per shard.
    fn drive_group(
        &mut self,
        ctx: &mut Ctx<'_, ShardMsg<V>, ShardEvent<V>>,
        shard: ShardId,
        step: impl FnOnce(&mut ReplicatedLog<V, P>, &mut Ctx<'_, RsmMsg<V>, RsmEvent<V>>),
    ) {
        let Some(group) = self.groups.get_mut(&shard) else {
            return;
        };
        let mut fx: Effects<RsmMsg<V>, RsmEvent<V>> = Effects::new();
        {
            let mut gctx = Ctx::new(&self.env, ctx.now(), &mut fx);
            step(group, &mut gctx);
        }
        for s in fx.sends {
            ctx.send(s.to, ShardMsg::Rsm { shard, msg: s.msg });
        }
        for cmd in fx.timers {
            match cmd {
                TimerCmd::Set { timer, after } => {
                    debug_assert_eq!(
                        timer, RETRY_TIMER,
                        "externally led groups only arm the retry timer"
                    );
                    ctx.set_timer(timer.offset(shard.0), after);
                }
                TimerCmd::Cancel { timer } => ctx.cancel_timer(timer.offset(shard.0)),
            }
        }
        for o in fx.outputs {
            match o {
                RsmEvent::Leader(_) => {}
                RsmEvent::Committed { slot, cmd } => {
                    ctx.output(ShardEvent::Committed { shard, slot, cmd });
                }
                RsmEvent::SnapshotInstalled { watermark, state } => {
                    ctx.output(ShardEvent::SnapshotInstalled {
                        shard,
                        watermark,
                        state,
                    });
                }
                RsmEvent::ReadIndexAt { req, index } => {
                    ctx.output(ShardEvent::ReadIndexAt { shard, req, index });
                }
            }
        }
    }

    /// Runs one step of the shared Ω, write-ahead persisting counter bumps
    /// to the dedicated Ω segment, wrapping its sends untagged, offsetting
    /// its timers by `OMEGA_TIMER_BASE`, and fanning each leader output
    /// out to every attached group whose replica set contains the leader.
    fn drive_omega(
        &mut self,
        ctx: &mut Ctx<'_, ShardMsg<V>, ShardEvent<V>>,
        step: impl FnOnce(&mut CommEffOmega<P>, &mut Ctx<'_, OmegaMsg, ProcessId>),
    ) {
        let mut fx: Effects<OmegaMsg, ProcessId> = Effects::new();
        let counter_before = self.omega.own_counter();
        {
            let mut octx = Ctx::new(&self.env, ctx.now(), &mut fx);
            step(&mut self.omega, &mut octx);
        }
        // Write-ahead: a bumped counter must be durable before any message
        // revealing it can leave (effects drain after we return).
        let counter_after = self.omega.own_counter();
        if counter_after != counter_before {
            if let Some(store) = &self.omega_store {
                if store
                    .append_record(&RsmRecord::<V>::OmegaCounter(counter_after))
                    .is_err()
                {
                    // A node that cannot persist must fall silent.
                    self.wedged = true;
                    return;
                }
            }
        }
        for s in fx.sends {
            ctx.send(s.to, ShardMsg::Omega(s.msg));
        }
        for cmd in fx.timers {
            match cmd {
                TimerCmd::Set { timer, after } => {
                    ctx.set_timer(timer.offset(OMEGA_TIMER_BASE), after);
                }
                TimerCmd::Cancel { timer } => {
                    ctx.cancel_timer(timer.offset(OMEGA_TIMER_BASE));
                }
            }
        }
        for leader in fx.outputs {
            self.apply_leadership(ctx, leader);
        }
    }

    /// One leader announcement from the shared Ω: record it, emit a single
    /// [`ShardEvent::Leader`], and inject it into every attached group it
    /// can lead (its replica set contains the leader).
    fn apply_leadership(
        &mut self,
        ctx: &mut Ctx<'_, ShardMsg<V>, ShardEvent<V>>,
        leader: ProcessId,
    ) {
        self.believed = Some(leader);
        ctx.output(ShardEvent::Leader(leader));
        let shards: Vec<ShardId> = self.groups.keys().copied().collect();
        for shard in shards {
            if self.placement.map().replicas(shard).contains(&leader) {
                self.drive_group(ctx, shard, |g, gctx| g.set_leader(gctx, leader));
            }
        }
    }
}

impl<V, P> Sm for ShardedNode<V, P>
where
    V: Clone + Eq + fmt::Debug + Send + Wire + LifecycleId + 'static,
    P: Probe,
{
    type Msg = ShardMsg<V>;
    type Output = ShardEvent<V>;
    type Request = ShardRequest<V>;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Output>) {
        if self.wedged {
            return;
        }
        let shards: Vec<ShardId> = self.groups.keys().copied().collect();
        for shard in shards {
            self.drive_group(ctx, shard, |g, gctx| g.on_start(gctx));
        }
        self.drive_omega(ctx, |o, octx| o.on_start(octx));
    }

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Output>,
        from: ProcessId,
        msg: Self::Msg,
    ) {
        if self.wedged {
            return;
        }
        match msg {
            ShardMsg::Omega(m) => {
                self.drive_omega(ctx, |o, octx| o.on_message(octx, from, m));
            }
            ShardMsg::Rsm { shard, msg } => {
                self.drive_group(ctx, shard, |g, gctx| g.on_message(gctx, from, msg));
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Output>, timer: TimerId) {
        if self.wedged {
            return;
        }
        if timer.0 >= OMEGA_TIMER_BASE {
            let inner = TimerId(timer.0 - OMEGA_TIMER_BASE);
            self.drive_omega(ctx, |o, octx| o.on_timer(octx, inner));
        } else {
            // Below the base, the timer id *is* the shard id of a group
            // retry timer (see the struct docs).
            let shard = ShardId(timer.0);
            self.drive_group(ctx, shard, |g, gctx| g.on_timer(gctx, RETRY_TIMER));
        }
    }

    fn on_request(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Output>, req: Self::Request) {
        if self.wedged {
            return;
        }
        let ShardRequest { shard, cmd } = req;
        self.drive_group(ctx, shard, |g, gctx| g.on_request(gctx, cmd));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ballot::Ballot;
    use crate::msg::Entry;
    use lls_primitives::Instant;

    type Node = ShardedNode<u64>;
    type Fx = Effects<ShardMsg<u64>, ShardEvent<u64>>;

    struct Harness {
        env: Env,
        sm: Node,
        fx: Fx,
    }

    impl Harness {
        fn new(me: u32, n: usize, shards: u32) -> Self {
            let env = Env::new(ProcessId(me), n);
            let placement = PlacementManager::with_all_attached(PlacementMap::uniform(shards, n));
            let sm = ShardedNode::new(&env, ConsensusParams::default(), placement);
            Harness {
                env,
                sm,
                fx: Effects::new(),
            }
        }

        fn start(&mut self) -> Fx {
            let mut ctx = Ctx::new(&self.env, Instant::ZERO, &mut self.fx);
            self.sm.on_start(&mut ctx);
            self.fx.take()
        }

        fn deliver(&mut self, from: u32, msg: ShardMsg<u64>) -> Fx {
            let mut ctx = Ctx::new(&self.env, Instant::ZERO, &mut self.fx);
            self.sm.on_message(&mut ctx, ProcessId(from), msg);
            self.fx.take()
        }

        fn request(&mut self, shard: u32, cmd: u64) -> Fx {
            let mut ctx = Ctx::new(&self.env, Instant::ZERO, &mut self.fx);
            self.sm.on_request(
                &mut ctx,
                ShardRequest {
                    shard: ShardId(shard),
                    cmd,
                },
            );
            self.fx.take()
        }

        /// One promise (from `from`) = quorum at p0 in a 3-replica group:
        /// establishes p0's ballot in the group of `shard`.
        fn promise(&mut self, from: u32, shard: u32) -> Fx {
            self.deliver(
                from,
                ShardMsg::Rsm {
                    shard: ShardId(shard),
                    msg: RsmMsg::Promise {
                        b: Ballot::new(1, ProcessId(0)),
                        accepted: vec![],
                        low_slot: 0,
                    },
                },
            )
        }

        /// One accepted (from `from`) = quorum at p0: commits `slot` in the
        /// group of `shard`.
        fn accepted(&mut self, from: u32, shard: u32, slot: u64) -> Fx {
            self.deliver(
                from,
                ShardMsg::Rsm {
                    shard: ShardId(shard),
                    msg: RsmMsg::Accepted {
                        b: Ballot::new(1, ProcessId(0)),
                        slot,
                    },
                },
            )
        }
    }

    #[test]
    fn key_router_is_stable_and_in_range() {
        let map = PlacementMap::uniform(4, 3);
        let a = map.shard_of_key("alpha");
        assert_eq!(map.shard_of_key("alpha"), a, "routing must be stable");
        for key in ["a", "b", "counter", "x:12", ""] {
            assert!(map.shard_of_key(key).0 < 4);
        }
    }

    #[test]
    fn one_omega_however_many_groups() {
        // The heartbeat plane of a 1-shard node and an 8-shard node is
        // identical: on_start emits exactly the shared Ω's sends, untagged.
        let omega_sends = |shards: u32| {
            let mut h = Harness::new(0, 3, shards);
            h.start()
                .sends
                .into_iter()
                .filter(|s| matches!(s.msg, ShardMsg::Omega(_)))
                .count()
        };
        assert_eq!(omega_sends(1), omega_sends(8));
    }

    #[test]
    fn leadership_fans_out_to_every_attached_group() {
        // p0 is the initial Ω leader: one announcement, and every attached
        // group opens its ballot phase at once.
        let mut h = Harness::new(0, 3, 3);
        let out = h.start();
        assert_eq!(
            out.outputs
                .iter()
                .filter(|o| matches!(o, ShardEvent::Leader(l) if *l == ProcessId(0)))
                .count(),
            1,
            "one announcement per node, not per shard: {:?}",
            out.outputs
        );
        for shard in [0u32, 1, 2] {
            assert_eq!(
                out.sends
                    .iter()
                    .filter(|s| matches!(
                        &s.msg,
                        ShardMsg::Rsm { shard: sh, msg: RsmMsg::Prepare { .. } } if sh.0 == shard
                    ))
                    .count(),
                2,
                "shard{shard} must prepare towards both peers"
            );
        }
        for shard in [0u32, 1, 2] {
            h.promise(1, shard);
            assert!(
                h.sm.group(ShardId(shard))
                    .expect("attached")
                    .is_established_leader(),
                "shard{shard} must be led after one promise quorum"
            );
        }
    }

    #[test]
    fn groups_commit_independently() {
        let mut h = Harness::new(0, 3, 2);
        h.start();
        h.promise(1, 0);
        h.promise(1, 1);
        let out = h.request(1, 77);
        assert!(
            out.sends.iter().all(|s| matches!(
                &s.msg,
                ShardMsg::Rsm { shard, msg: RsmMsg::Accept { slot: 0, .. } } if shard.0 == 1
            )),
            "steady state: only shard1 Accepts go out: {:?}",
            out.sends
        );
        let out = h.accepted(1, 1, 0);
        assert!(
            out.outputs.contains(&ShardEvent::Committed {
                shard: ShardId(1),
                slot: 0,
                cmd: Some(77)
            }),
            "{:?}",
            out.outputs
        );
        assert_eq!(h.sm.group(ShardId(1)).unwrap().committed_len(), 1);
        assert_eq!(
            h.sm.group(ShardId(0)).unwrap().committed_len(),
            0,
            "slot sequences are per group"
        );
    }

    #[test]
    fn rsm_traffic_is_tagged_and_omega_traffic_is_not() {
        // The envelope property shard-aware transports key off: group
        // traffic advertises its shard, the shared Ω's does not.
        let mut h = Harness::new(0, 3, 2);
        let out = h.start();
        for s in &out.sends {
            match &s.msg {
                ShardMsg::Omega(_) => assert_eq!(s.msg.shard_tag(), None),
                ShardMsg::Rsm { shard, .. } => assert_eq!(s.msg.shard_tag(), Some(shard.0)),
            }
        }
        let tagged = ShardMsg::<u64>::Rsm {
            shard: ShardId(5),
            msg: RsmMsg::DecideAck { slot: 0 },
        };
        assert_eq!(tagged.shard_tag(), Some(5));
        let untagged = ShardMsg::<u64>::Omega(OmegaMsg::Alive { counter: 0 });
        assert_eq!(untagged.shard_tag(), None);
    }

    #[test]
    fn shard_msg_roundtrips_on_the_wire() {
        let msgs: Vec<ShardMsg<u64>> = vec![
            ShardMsg::Omega(OmegaMsg::Alive { counter: 3 }),
            ShardMsg::Rsm {
                shard: ShardId(2),
                msg: RsmMsg::Accept {
                    b: Ballot::new(1, ProcessId(0)),
                    slot: 4,
                    entry: Entry::Batch(vec![1, 2]),
                },
            },
        ];
        for msg in msgs {
            let decoded = ShardMsg::<u64>::from_bytes(&msg.to_bytes()).expect("roundtrip");
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn classify_shard_msg_reuses_the_flat_kinds() {
        assert_eq!(
            classify_shard_msg(&ShardMsg::<u64>::Omega(OmegaMsg::Alive { counter: 0 })),
            "ALIVE"
        );
        assert_eq!(
            classify_shard_msg(&ShardMsg::<u64>::Rsm {
                shard: ShardId(0),
                msg: RsmMsg::DecideAck { slot: 0 }
            }),
            "DECIDE_ACK"
        );
    }

    #[test]
    fn attach_and_detach_at_runtime() {
        let env = Env::new(ProcessId(0), 3);
        // Start with nothing attached against an 8-shard map.
        let mut sm = ShardedNode::<u64>::new(
            &env,
            ConsensusParams::default(),
            PlacementManager::new(PlacementMap::uniform(8, 3)),
        );
        let mut fx: Effects<ShardMsg<u64>, ShardEvent<u64>> = Effects::new();
        let mut ctx = Ctx::new(&env, Instant::ZERO, &mut fx);
        sm.on_start(&mut ctx);
        fx.take();
        assert!(sm.group(ShardId(7)).is_none());
        let mut ctx = Ctx::new(&env, Instant::ZERO, &mut fx);
        sm.attach(&mut ctx, ShardId(7));
        let out = fx.take();
        assert!(sm.placement().is_attached(ShardId(7)));
        // A late-attached group inherits the believed leader (p0 is the
        // initial Ω output) and opens its ballot phase at once.
        assert_eq!(
            out.sends
                .iter()
                .filter(|s| matches!(
                    &s.msg,
                    ShardMsg::Rsm { shard, msg: RsmMsg::Prepare { .. } } if shard.0 == 7
                ))
                .count(),
            2,
            "late-attached group starts preparing: {:?}",
            out.sends
        );
        assert!(
            out.timers
                .iter()
                .any(|t| matches!(t, TimerCmd::Set { timer, .. } if timer.0 == 7)),
            "the new group's retry timer is multiplexed on its shard id"
        );
        let mut ctx = Ctx::new(&env, Instant::ZERO, &mut fx);
        sm.detach(&mut ctx, ShardId(7));
        let out = fx.take();
        assert!(!sm.placement().is_attached(ShardId(7)));
        assert!(sm.group(ShardId(7)).is_none());
        assert!(
            out.timers
                .iter()
                .any(|t| matches!(t, TimerCmd::Cancel { timer } if timer.0 == 7)),
            "detach cancels the group's multiplexed timer"
        );
    }

    #[test]
    fn restart_recovers_every_attached_group_from_its_own_segment() {
        let placement = PlacementManager::with_all_attached(PlacementMap::uniform(2, 3));
        let mut stores = BTreeMap::new();
        stores.insert(ShardId(0), StorageHandle::in_memory());
        stores.insert(ShardId(1), StorageHandle::in_memory());
        let omega_store = StorageHandle::in_memory();
        {
            let env = Env::new(ProcessId(0), 3);
            let sm: Node = ShardedNode::with_storage(
                &env,
                ConsensusParams::default(),
                placement.clone(),
                &stores,
                omega_store.clone(),
            )
            .expect("fresh stores");
            let mut h = Harness {
                env,
                sm,
                fx: Effects::new(),
            };
            h.start();
            h.promise(1, 0);
            h.promise(1, 1);
            h.request(0, 10);
            h.request(1, 20);
            h.accepted(1, 0, 0);
            h.accepted(1, 1, 0);
            assert_eq!(h.sm.group(ShardId(0)).unwrap().committed_len(), 1);
            assert_eq!(h.sm.group(ShardId(1)).unwrap().committed_len(), 1);
            // Crash: drop the whole node.
        }
        let env = Env::new(ProcessId(0), 3);
        let sm2: Node = ShardedNode::with_storage(
            &env,
            ConsensusParams::default(),
            placement,
            &stores,
            omega_store,
        )
        .expect("recover from WALs");
        assert_eq!(
            sm2.group(ShardId(0))
                .unwrap()
                .committed_commands()
                .copied()
                .collect::<Vec<_>>(),
            vec![10],
            "group 0 recovers its own log"
        );
        assert_eq!(
            sm2.group(ShardId(1))
                .unwrap()
                .committed_commands()
                .copied()
                .collect::<Vec<_>>(),
            vec![20],
            "group 1 recovers its own log"
        );
        assert_eq!(
            sm2.omega().own_counter(),
            1,
            "shared Ω rejoins one incarnation above its persisted counter"
        );
    }
}
