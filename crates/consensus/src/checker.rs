//! Safety oracles for consensus runs.
//!
//! Consensus safety (unlike liveness) must hold in *every* run, including
//! pre-GST chaos, so the checkers return hard errors that tests turn into
//! failures.

use std::collections::BTreeMap;
use std::fmt;

use lls_primitives::{Instant, ProcessId};

/// One decision observed in a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionRecord<V> {
    /// When the process decided.
    pub at: Instant,
    /// The deciding process.
    pub process: ProcessId,
    /// The decided value.
    pub value: V,
}

/// **Agreement**: no two processes decide differently.
///
/// # Errors
///
/// Returns the first conflicting pair found.
pub fn check_agreement<V: Eq + fmt::Debug>(decisions: &[DecisionRecord<V>]) -> Result<(), String> {
    if let Some(first) = decisions.first() {
        for d in &decisions[1..] {
            if d.value != first.value {
                return Err(format!(
                    "agreement violated: {} decided {:?} at {}, {} decided {:?} at {}",
                    first.process, first.value, first.at, d.process, d.value, d.at
                ));
            }
        }
    }
    Ok(())
}

/// **Integrity**: each process decides at most once.
///
/// # Errors
///
/// Returns the first process observed deciding twice.
pub fn check_integrity<V>(decisions: &[DecisionRecord<V>]) -> Result<(), String> {
    let mut seen = BTreeMap::new();
    for d in decisions {
        if let Some(prev) = seen.insert(d.process, d.at) {
            return Err(format!(
                "integrity violated: {} decided at {} and again at {}",
                d.process, prev, d.at
            ));
        }
    }
    Ok(())
}

/// **Validity**: every decided value was proposed by someone.
///
/// # Errors
///
/// Returns the first decided value that matches no proposal.
pub fn check_validity<V: Eq + fmt::Debug>(
    decisions: &[DecisionRecord<V>],
    proposals: &[V],
) -> Result<(), String> {
    for d in decisions {
        if !proposals.contains(&d.value) {
            return Err(format!(
                "validity violated: {} decided {:?}, which nobody proposed",
                d.process, d.value
            ));
        }
    }
    Ok(())
}

/// Runs all three single-shot safety checks.
///
/// # Errors
///
/// Propagates the first failing check.
pub fn check_consensus_safety<V: Eq + fmt::Debug>(
    decisions: &[DecisionRecord<V>],
    proposals: &[V],
) -> Result<(), String> {
    check_agreement(decisions)?;
    check_integrity(decisions)?;
    check_validity(decisions, proposals)
}

/// **Log consistency** (replicated logs): for every slot, all processes that
/// committed the slot committed the same entry; logs are therefore prefixes
/// of one another up to holes still being learned.
///
/// Input: per process, the map `slot → entry`.
///
/// # Errors
///
/// Returns the first slot with conflicting entries.
pub fn check_log_consistency<V: Eq + fmt::Debug>(logs: &[BTreeMap<u64, V>]) -> Result<(), String> {
    let mut reference: BTreeMap<u64, (usize, &V)> = BTreeMap::new();
    for (p, log) in logs.iter().enumerate() {
        for (slot, entry) in log {
            match reference.get(slot) {
                None => {
                    reference.insert(*slot, (p, entry));
                }
                Some((q, other)) if *other != entry => {
                    return Err(format!(
                        "log divergence at slot {slot}: p{q} has {other:?}, p{p} has {entry:?}"
                    ));
                }
                Some(_) => {}
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(process: u32, at: u64, value: u64) -> DecisionRecord<u64> {
        DecisionRecord {
            at: Instant::from_ticks(at),
            process: ProcessId(process),
            value,
        }
    }

    #[test]
    fn agreement_accepts_unanimity_and_empty() {
        assert!(check_agreement::<u64>(&[]).is_ok());
        assert!(check_agreement(&[rec(0, 1, 5), rec(1, 2, 5), rec(2, 9, 5)]).is_ok());
    }

    #[test]
    fn agreement_rejects_conflicts() {
        let err = check_agreement(&[rec(0, 1, 5), rec(1, 2, 6)]).unwrap_err();
        assert!(err.contains("agreement violated"), "{err}");
    }

    #[test]
    fn integrity_rejects_double_decisions() {
        assert!(check_integrity(&[rec(0, 1, 5), rec(1, 2, 5)]).is_ok());
        let err = check_integrity(&[rec(0, 1, 5), rec(0, 9, 5)]).unwrap_err();
        assert!(err.contains("integrity violated"), "{err}");
    }

    #[test]
    fn validity_requires_a_matching_proposal() {
        assert!(check_validity(&[rec(0, 1, 5)], &[4, 5]).is_ok());
        let err = check_validity(&[rec(0, 1, 7)], &[4, 5]).unwrap_err();
        assert!(err.contains("validity violated"), "{err}");
    }

    #[test]
    fn combined_checker_short_circuits() {
        let ds = vec![rec(0, 1, 5), rec(1, 2, 6)];
        assert!(check_consensus_safety(&ds, &[5, 6]).is_err());
        let ds = vec![rec(0, 1, 5), rec(1, 2, 5)];
        assert!(check_consensus_safety(&ds, &[5]).is_ok());
    }

    #[test]
    fn log_consistency_allows_holes_but_not_divergence() {
        let a: BTreeMap<u64, u64> = [(0, 10), (1, 11)].into();
        let b: BTreeMap<u64, u64> = [(1, 11), (2, 12)].into();
        assert!(check_log_consistency(&[a.clone(), b]).is_ok());
        let c: BTreeMap<u64, u64> = [(1, 99)].into();
        let err = check_log_consistency(&[a, c]).unwrap_err();
        assert!(err.contains("slot 1"), "{err}");
    }
}
