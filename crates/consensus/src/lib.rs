//! Consensus and state-machine replication with **limited link synchrony**,
//! the second contribution of the PODC 2004 paper.
//!
//! The paper shows that in the weak system **S_maj** — all links fair lossy,
//! one unknown correct ♦-source, plus a *majority of correct processes* —
//! consensus is solvable, and solvable *communication-efficiently*: once the
//! Ω leader stabilizes, a decision costs one round trip and Θ(n) messages,
//! all sent or solicited by the single leader.
//!
//! This crate provides:
//!
//! * [`Consensus`] — single-shot, ballot-based, leader-driven consensus
//!   (Synod-style) coordinated by the embedded communication-efficient Ω
//!   detector. Retransmission timers defeat fair-lossy links; safety never
//!   depends on timing, only liveness does.
//! * [`ReplicatedLog`] — repeated consensus (Multi-Paxos style): the stable
//!   leader runs the ballot phase *once* and then commits a stream of
//!   commands at one round trip each — the steady state measured by
//!   experiment E7.
//! * [`RotatingConsensus`] — the pre-Ω state of the art (Chandra–Toueg ◇S
//!   rotating coordinator), implemented as the baseline experiment E14
//!   compares against.
//! * [`shard`] — sharded multi-group replication: S independent replicated
//!   logs per cluster, one **shared** Ω per node feeding leadership to all
//!   co-located groups so election traffic stays independent of S
//!   (experiment E20).
//! * [`checker`] — safety oracles (agreement, validity, integrity, log
//!   prefix consistency) applied to run traces by tests and experiments.
//!
//! # Example
//!
//! ```
//! use consensus::{Consensus, ConsensusEvent, ConsensusParams};
//! use lls_primitives::{Instant, ProcessId};
//! use netsim::{SimBuilder, SystemSParams, Topology};
//!
//! let n = 5;
//! let topo = Topology::system_s(n, ProcessId(1), SystemSParams::default());
//! let mut sim = SimBuilder::new(n)
//!     .seed(4)
//!     .topology(topo)
//!     .build_with(|env| {
//!         // Every process proposes its own id as the value.
//!         Consensus::new(env, ConsensusParams::default(), Some(env.id().0 as u64))
//!     });
//! sim.run_until(Instant::from_ticks(60_000));
//!
//! let mut decisions = sim.outputs().iter().filter_map(|e| match &e.output {
//!     ConsensusEvent::Decided(v) => Some(*v),
//!     _ => None,
//! });
//! let first = decisions.next().expect("someone must decide");
//! assert!(decisions.all(|v| v == first), "agreement violated");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod ballot;
pub mod checker;
pub mod durable;
mod msg;
mod rotating;
mod rsm;
pub mod shard;
mod single;

pub use ballot::Ballot;
pub use durable::{AcceptorRecord, RsmRecord};
pub use msg::{classify_consensus_msg, classify_rsm_msg, ConsensusMsg, Entry, RsmMsg};
pub use rotating::{classify_rot_msg, RotEvent, RotMsg, RotatingConsensus};
pub use rsm::{LifecycleId, ReplicatedLog, RsmEvent};
pub use shard::{
    classify_shard_msg, PlacementManager, PlacementMap, ShardEvent, ShardId, ShardMsg,
    ShardRequest, ShardedNode,
};
pub use single::{Consensus, ConsensusEvent, ConsensusParams, LeaseParams};
// Re-exported so callers can tune the log's throughput path without
// depending on the Ω crate directly.
pub use omega::BatchParams;
