//! Ballot numbers.

use std::fmt;

use lls_primitives::wire::{Wire, WireError, WireReader};
use lls_primitives::ProcessId;
use serde::{Deserialize, Serialize};

/// A ballot: a totally ordered proposal epoch, ordered by `(round, leader)`.
///
/// Two distinct proposers can never own the same ballot because the proposer
/// id is part of the order — the classic trick that gives each leader its own
/// disjoint, unbounded supply of ballots.
///
/// # Example
///
/// ```
/// use consensus::Ballot;
/// use lls_primitives::ProcessId;
///
/// let a = Ballot::new(1, ProcessId(2));
/// let b = Ballot::new(2, ProcessId(0));
/// assert!(a < b);                                 // round dominates
/// assert!(Ballot::new(1, ProcessId(0)) < a);      // id breaks ties
/// assert_eq!(a.next_for(ProcessId(0)).round(), 2); // strictly above `a`
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Ballot {
    round: u64,
    leader: ProcessId,
}

impl Ballot {
    /// The ballot below every real ballot; acceptors start promised to it.
    pub const ZERO: Ballot = Ballot {
        round: 0,
        leader: ProcessId(0),
    };

    /// Creates the ballot `(round, leader)`.
    pub fn new(round: u64, leader: ProcessId) -> Self {
        Ballot { round, leader }
    }

    /// The round component.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The proposer that owns this ballot.
    pub fn leader(&self) -> ProcessId {
        self.leader
    }

    /// The smallest ballot owned by `me` that is strictly greater than
    /// `self`.
    pub fn next_for(&self, me: ProcessId) -> Ballot {
        if me > self.leader {
            Ballot {
                round: self.round,
                leader: me,
            }
        } else {
            Ballot {
                round: self.round + 1,
                leader: me,
            }
        }
    }
}

impl Wire for Ballot {
    fn encode(&self, out: &mut Vec<u8>) {
        self.round.encode(out);
        self.leader.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Ballot::new(u64::decode(r)?, ProcessId::decode(r)?))
    }
}

impl fmt::Display for Ballot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b({},{})", self.round, self.leader)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_is_round_then_leader() {
        let mut v = vec![
            Ballot::new(2, ProcessId(0)),
            Ballot::new(1, ProcessId(3)),
            Ballot::new(1, ProcessId(1)),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                Ballot::new(1, ProcessId(1)),
                Ballot::new(1, ProcessId(3)),
                Ballot::new(2, ProcessId(0)),
            ]
        );
    }

    #[test]
    fn next_for_is_strictly_greater_and_minimal_supply() {
        let b = Ballot::new(5, ProcessId(2));
        // Higher id: same round suffices.
        let n = b.next_for(ProcessId(4));
        assert!(n > b);
        assert_eq!(n, Ballot::new(5, ProcessId(4)));
        // Lower or equal id: bump the round.
        let n = b.next_for(ProcessId(1));
        assert!(n > b);
        assert_eq!(n, Ballot::new(6, ProcessId(1)));
        let n = b.next_for(ProcessId(2));
        assert!(n > b);
        assert_eq!(n, Ballot::new(6, ProcessId(2)));
    }

    #[test]
    fn zero_is_minimal() {
        assert!(Ballot::ZERO <= Ballot::new(0, ProcessId(0)));
        assert!(Ballot::ZERO < Ballot::new(0, ProcessId(1)));
        assert!(Ballot::ZERO < Ballot::new(1, ProcessId(0)));
    }

    #[test]
    fn distinct_proposers_never_collide() {
        let a = Ballot::ZERO.next_for(ProcessId(1));
        let b = Ballot::ZERO.next_for(ProcessId(2));
        assert_ne!(a, b);
    }
}
