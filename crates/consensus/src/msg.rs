//! Wire messages of the consensus protocols.

use lls_primitives::wire::{Wire, WireError, WireReader};
use omega::OmegaMsg;
use serde::{Deserialize, Serialize};

use crate::ballot::Ballot;

/// Messages of the single-shot [`Consensus`](crate::Consensus) protocol over
/// values `V`. The embedded Ω detector's traffic travels in the same
/// envelope (`Omega`), so one transport carries the whole stack.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConsensusMsg<V> {
    /// Embedded leader-election traffic.
    Omega(OmegaMsg),
    /// Phase 1a: the proposer asks acceptors to promise ballot `b`.
    Prepare {
        /// The proposer's ballot.
        b: Ballot,
    },
    /// Phase 1b: the acceptor promises `b` and reveals what it last accepted.
    Promise {
        /// The promised ballot (echoed).
        b: Ballot,
        /// The acceptor's highest accepted (ballot, value), if any.
        accepted: Option<(Ballot, V)>,
    },
    /// Phase 2a: the proposer asks acceptors to accept `v` at ballot `b`.
    Accept {
        /// The proposer's ballot.
        b: Ballot,
        /// The value to accept.
        v: V,
    },
    /// Phase 2b: the acceptor accepted ballot `b`.
    Accepted {
        /// The accepted ballot (echoed).
        b: Ballot,
    },
    /// The acceptor refuses `b` because it promised `higher`.
    Nack {
        /// The refused ballot (echoed).
        b: Ballot,
        /// The ballot the acceptor is promised to.
        higher: Ballot,
    },
    /// The decided value, broadcast (and retransmitted) by the decider.
    Decide {
        /// The chosen value.
        v: V,
    },
    /// Acknowledges a `Decide`, silencing retransmission to the sender.
    DecideAck,
}

/// A slot's content in the replicated log: a client command, a batch of
/// commands decided atomically as one entry, or a no-op filler used by a
/// new leader to close gaps left by its predecessor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Entry<V> {
    /// Gap filler; applied as "skip".
    Noop,
    /// A client command.
    Cmd(V),
    /// Several client commands coalesced into one atomic entry: the whole
    /// batch is chosen (and applied, in vector order) or none of it is.
    /// Leaders only mint batches of two or more — a singleton collapses to
    /// [`Entry::Cmd`], keeping the pre-batching wire shape on that path.
    Batch(Vec<V>),
}

impl<V> Entry<V> {
    /// The single command inside, if this is a [`Entry::Cmd`]. Batches
    /// return `None` — use [`Entry::commands`] to see every command.
    pub fn command(&self) -> Option<&V> {
        match self {
            Entry::Noop => None,
            Entry::Cmd(v) => Some(v),
            Entry::Batch(_) => None,
        }
    }

    /// All commands carried by this entry, in application order: empty for
    /// a no-op, one for a plain command, the whole vector for a batch.
    pub fn commands(&self) -> &[V] {
        match self {
            Entry::Noop => &[],
            Entry::Cmd(v) => std::slice::from_ref(v),
            Entry::Batch(vs) => vs.as_slice(),
        }
    }
}

/// Messages of the [`ReplicatedLog`](crate::ReplicatedLog) (Multi-Paxos
/// style): phase 1 covers all slots from `from_slot` on with one ballot;
/// phase 2 runs per slot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RsmMsg<V> {
    /// Embedded leader-election traffic.
    Omega(OmegaMsg),
    /// Phase 1a for every slot ≥ `from_slot` at once.
    Prepare {
        /// The proposer's ballot.
        b: Ballot,
        /// First slot the ballot claims.
        from_slot: u64,
    },
    /// Phase 1b: promise plus everything the acceptor accepted at or above
    /// `from_slot`.
    Promise {
        /// The promised ballot (echoed).
        b: Ballot,
        /// Accepted `(slot, ballot, entry)` triples at or after `from_slot`.
        accepted: Vec<(u64, Ballot, Entry<V>)>,
        /// The acceptor's first slot not known chosen (hint for the leader).
        low_slot: u64,
    },
    /// Phase 2a for one slot.
    Accept {
        /// The proposer's ballot.
        b: Ballot,
        /// The slot being written.
        slot: u64,
        /// The entry to accept.
        entry: Entry<V>,
    },
    /// Phase 2b for one slot.
    Accepted {
        /// The accepted ballot (echoed).
        b: Ballot,
        /// The slot that was written.
        slot: u64,
    },
    /// Refusal: the acceptor is promised to `higher`.
    Nack {
        /// The refused ballot (echoed).
        b: Ballot,
        /// The ballot the acceptor is promised to.
        higher: Ballot,
    },
    /// A chosen slot, broadcast (and retransmitted) by the leader.
    Decide {
        /// The chosen slot.
        slot: u64,
        /// The chosen entry.
        entry: Entry<V>,
    },
    /// Acknowledges `Decide { slot }` to silence retransmission.
    DecideAck {
        /// The acknowledged slot.
        slot: u64,
    },
    /// A laggard asks a peer for everything chosen from `low_slot` on. The
    /// peer answers with `Decide`s, or with a snapshot transfer when its
    /// own log was already compacted past `low_slot`.
    CatchUp {
        /// The requester's first slot not known chosen.
        low_slot: u64,
    },
    /// Announces an incoming snapshot transfer: `chunks` chunks follow,
    /// whose concatenation (CRC `crc`) is the serialized application state
    /// at `watermark`.
    SnapshotOffer {
        /// First slot not covered by the snapshot.
        watermark: u64,
        /// Number of chunks in the transfer.
        chunks: u32,
        /// CRC-32 of the whole reassembled state blob.
        crc: u32,
    },
    /// One chunk of a snapshot transfer. Self-describing (it repeats the
    /// offer's totals), so a transfer completes even if the offer frame
    /// was lost.
    SnapshotChunk {
        /// First slot not covered by the snapshot.
        watermark: u64,
        /// This chunk's index in `0..chunks`.
        index: u32,
        /// Number of chunks in the transfer.
        chunks: u32,
        /// CRC-32 of the whole reassembled state blob.
        crc: u32,
        /// CRC-32 of this chunk's bytes (verified before assembly; the
        /// frame codec's own checksum already covers transport corruption,
        /// this one survives re-framing and storage).
        chunk_crc: u32,
        /// The chunk's bytes.
        data: Vec<u8>,
    },
    /// Acknowledges one snapshot chunk (silencing its retransmission), or
    /// — with `index == u32::MAX` — the whole transfer (received or not
    /// needed), telling the sender to resume Decide streaming at the
    /// watermark.
    SnapshotAck {
        /// The watermark of the transfer being acknowledged.
        watermark: u64,
        /// The chunk received, or `u32::MAX` for "transfer complete".
        index: u32,
    },
    /// The established leader of ballot `b` asks for a lease of round `seq`:
    /// each granter promises to hold off competing elections (Nack any
    /// `Prepare` from a different proposer) for the lease duration plus the
    /// skew bound on its own clock.
    LeaseGrant {
        /// The leader's established ballot.
        b: Ballot,
        /// Monotone renewal-round number under this ballot.
        seq: u64,
    },
    /// A granter's acknowledgement of `LeaseGrant { b, seq }`.
    LeaseAck {
        /// The granted ballot (echoed).
        b: Ballot,
        /// The granted renewal round (echoed).
        seq: u64,
    },
    /// A follower asks the believed leader for a read watermark: "at what
    /// committed length is a read issued now linearizable?"
    ReadIndex {
        /// The follower's opaque request token (echoed in the reply).
        req: u64,
    },
    /// The leaseholder's answer to `ReadIndex { req }`: the read is safe
    /// once the asker has applied `index` contiguous slots. Only a leader
    /// with an *active* lease answers — without the lease its committed
    /// length could be stale.
    ReadIndexReply {
        /// The echoed request token.
        req: u64,
        /// The committed length to wait for before serving the read.
        index: u64,
    },
}

impl<V: Wire> Wire for Entry<V> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Entry::Noop => out.push(0),
            Entry::Cmd(v) => {
                out.push(1);
                v.encode(out);
            }
            Entry::Batch(vs) => {
                out.push(2);
                vs.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(Entry::Noop),
            1 => Ok(Entry::Cmd(V::decode(r)?)),
            2 => Ok(Entry::Batch(Vec::decode(r)?)),
            tag => Err(WireError::BadTag {
                type_name: "Entry",
                tag,
            }),
        }
    }
}

impl<V: Wire> Wire for ConsensusMsg<V> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ConsensusMsg::Omega(m) => {
                out.push(0);
                m.encode(out);
            }
            ConsensusMsg::Prepare { b } => {
                out.push(1);
                b.encode(out);
            }
            ConsensusMsg::Promise { b, accepted } => {
                out.push(2);
                b.encode(out);
                accepted.encode(out);
            }
            ConsensusMsg::Accept { b, v } => {
                out.push(3);
                b.encode(out);
                v.encode(out);
            }
            ConsensusMsg::Accepted { b } => {
                out.push(4);
                b.encode(out);
            }
            ConsensusMsg::Nack { b, higher } => {
                out.push(5);
                b.encode(out);
                higher.encode(out);
            }
            ConsensusMsg::Decide { v } => {
                out.push(6);
                v.encode(out);
            }
            ConsensusMsg::DecideAck => out.push(7),
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(ConsensusMsg::Omega(OmegaMsg::decode(r)?)),
            1 => Ok(ConsensusMsg::Prepare {
                b: Ballot::decode(r)?,
            }),
            2 => Ok(ConsensusMsg::Promise {
                b: Ballot::decode(r)?,
                accepted: Option::decode(r)?,
            }),
            3 => Ok(ConsensusMsg::Accept {
                b: Ballot::decode(r)?,
                v: V::decode(r)?,
            }),
            4 => Ok(ConsensusMsg::Accepted {
                b: Ballot::decode(r)?,
            }),
            5 => Ok(ConsensusMsg::Nack {
                b: Ballot::decode(r)?,
                higher: Ballot::decode(r)?,
            }),
            6 => Ok(ConsensusMsg::Decide { v: V::decode(r)? }),
            7 => Ok(ConsensusMsg::DecideAck),
            tag => Err(WireError::BadTag {
                type_name: "ConsensusMsg",
                tag,
            }),
        }
    }
}

impl<V: Wire> Wire for RsmMsg<V> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            RsmMsg::Omega(m) => {
                out.push(0);
                m.encode(out);
            }
            RsmMsg::Prepare { b, from_slot } => {
                out.push(1);
                b.encode(out);
                from_slot.encode(out);
            }
            RsmMsg::Promise {
                b,
                accepted,
                low_slot,
            } => {
                out.push(2);
                b.encode(out);
                accepted.encode(out);
                low_slot.encode(out);
            }
            RsmMsg::Accept { b, slot, entry } => {
                out.push(3);
                b.encode(out);
                slot.encode(out);
                entry.encode(out);
            }
            RsmMsg::Accepted { b, slot } => {
                out.push(4);
                b.encode(out);
                slot.encode(out);
            }
            RsmMsg::Nack { b, higher } => {
                out.push(5);
                b.encode(out);
                higher.encode(out);
            }
            RsmMsg::Decide { slot, entry } => {
                out.push(6);
                slot.encode(out);
                entry.encode(out);
            }
            RsmMsg::DecideAck { slot } => {
                out.push(7);
                slot.encode(out);
            }
            RsmMsg::CatchUp { low_slot } => {
                out.push(8);
                low_slot.encode(out);
            }
            RsmMsg::SnapshotOffer {
                watermark,
                chunks,
                crc,
            } => {
                out.push(9);
                watermark.encode(out);
                chunks.encode(out);
                crc.encode(out);
            }
            RsmMsg::SnapshotChunk {
                watermark,
                index,
                chunks,
                crc,
                chunk_crc,
                data,
            } => {
                out.push(10);
                watermark.encode(out);
                index.encode(out);
                chunks.encode(out);
                crc.encode(out);
                chunk_crc.encode(out);
                data.encode(out);
            }
            RsmMsg::SnapshotAck { watermark, index } => {
                out.push(11);
                watermark.encode(out);
                index.encode(out);
            }
            RsmMsg::LeaseGrant { b, seq } => {
                out.push(12);
                b.encode(out);
                seq.encode(out);
            }
            RsmMsg::LeaseAck { b, seq } => {
                out.push(13);
                b.encode(out);
                seq.encode(out);
            }
            RsmMsg::ReadIndex { req } => {
                out.push(14);
                req.encode(out);
            }
            RsmMsg::ReadIndexReply { req, index } => {
                out.push(15);
                req.encode(out);
                index.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(RsmMsg::Omega(OmegaMsg::decode(r)?)),
            1 => Ok(RsmMsg::Prepare {
                b: Ballot::decode(r)?,
                from_slot: u64::decode(r)?,
            }),
            2 => Ok(RsmMsg::Promise {
                b: Ballot::decode(r)?,
                accepted: Vec::decode(r)?,
                low_slot: u64::decode(r)?,
            }),
            3 => Ok(RsmMsg::Accept {
                b: Ballot::decode(r)?,
                slot: u64::decode(r)?,
                entry: Entry::decode(r)?,
            }),
            4 => Ok(RsmMsg::Accepted {
                b: Ballot::decode(r)?,
                slot: u64::decode(r)?,
            }),
            5 => Ok(RsmMsg::Nack {
                b: Ballot::decode(r)?,
                higher: Ballot::decode(r)?,
            }),
            6 => Ok(RsmMsg::Decide {
                slot: u64::decode(r)?,
                entry: Entry::decode(r)?,
            }),
            7 => Ok(RsmMsg::DecideAck {
                slot: u64::decode(r)?,
            }),
            8 => Ok(RsmMsg::CatchUp {
                low_slot: u64::decode(r)?,
            }),
            9 => Ok(RsmMsg::SnapshotOffer {
                watermark: u64::decode(r)?,
                chunks: u32::decode(r)?,
                crc: u32::decode(r)?,
            }),
            10 => Ok(RsmMsg::SnapshotChunk {
                watermark: u64::decode(r)?,
                index: u32::decode(r)?,
                chunks: u32::decode(r)?,
                crc: u32::decode(r)?,
                chunk_crc: u32::decode(r)?,
                data: Vec::<u8>::decode(r)?,
            }),
            11 => Ok(RsmMsg::SnapshotAck {
                watermark: u64::decode(r)?,
                index: u32::decode(r)?,
            }),
            12 => Ok(RsmMsg::LeaseGrant {
                b: Ballot::decode(r)?,
                seq: u64::decode(r)?,
            }),
            13 => Ok(RsmMsg::LeaseAck {
                b: Ballot::decode(r)?,
                seq: u64::decode(r)?,
            }),
            14 => Ok(RsmMsg::ReadIndex {
                req: u64::decode(r)?,
            }),
            15 => Ok(RsmMsg::ReadIndexReply {
                req: u64::decode(r)?,
                index: u64::decode(r)?,
            }),
            tag => Err(WireError::BadTag {
                type_name: "RsmMsg",
                tag,
            }),
        }
    }
}

/// Classifier for per-kind message statistics of [`ConsensusMsg`].
pub fn classify_consensus_msg<V>(msg: &ConsensusMsg<V>) -> &'static str {
    match msg {
        ConsensusMsg::Omega(m) => omega::classify_msg(m),
        ConsensusMsg::Prepare { .. } => "PREPARE",
        ConsensusMsg::Promise { .. } => "PROMISE",
        ConsensusMsg::Accept { .. } => "ACCEPT",
        ConsensusMsg::Accepted { .. } => "ACCEPTED",
        ConsensusMsg::Nack { .. } => "NACK",
        ConsensusMsg::Decide { .. } => "DECIDE",
        ConsensusMsg::DecideAck => "DECIDE_ACK",
    }
}

/// Classifier for per-kind message statistics of [`RsmMsg`].
pub fn classify_rsm_msg<V>(msg: &RsmMsg<V>) -> &'static str {
    match msg {
        RsmMsg::Omega(m) => omega::classify_msg(m),
        RsmMsg::Prepare { .. } => "PREPARE",
        RsmMsg::Promise { .. } => "PROMISE",
        RsmMsg::Accept { .. } => "ACCEPT",
        RsmMsg::Accepted { .. } => "ACCEPTED",
        RsmMsg::Nack { .. } => "NACK",
        RsmMsg::Decide { .. } => "DECIDE",
        RsmMsg::DecideAck { .. } => "DECIDE_ACK",
        RsmMsg::CatchUp { .. } => "CATCH_UP",
        RsmMsg::SnapshotOffer { .. } => "SNAP_OFFER",
        RsmMsg::SnapshotChunk { .. } => "SNAP_CHUNK",
        RsmMsg::SnapshotAck { .. } => "SNAP_ACK",
        RsmMsg::LeaseGrant { .. } => "LEASE_GRANT",
        RsmMsg::LeaseAck { .. } => "LEASE_ACK",
        RsmMsg::ReadIndex { .. } => "READ_INDEX",
        RsmMsg::ReadIndexReply { .. } => "READ_INDEX_REPLY",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lls_primitives::ProcessId;

    #[test]
    fn classify_covers_every_variant() {
        let b = Ballot::new(1, ProcessId(0));
        let msgs: Vec<ConsensusMsg<u64>> = vec![
            ConsensusMsg::Omega(OmegaMsg::Alive { counter: 0 }),
            ConsensusMsg::Prepare { b },
            ConsensusMsg::Promise { b, accepted: None },
            ConsensusMsg::Accept { b, v: 1 },
            ConsensusMsg::Accepted { b },
            ConsensusMsg::Nack { b, higher: b },
            ConsensusMsg::Decide { v: 1 },
            ConsensusMsg::DecideAck,
        ];
        let kinds: Vec<_> = msgs.iter().map(classify_consensus_msg).collect();
        assert_eq!(
            kinds,
            vec![
                "ALIVE",
                "PREPARE",
                "PROMISE",
                "ACCEPT",
                "ACCEPTED",
                "NACK",
                "DECIDE",
                "DECIDE_ACK"
            ]
        );
    }

    #[test]
    fn entry_command_projection() {
        assert_eq!(Entry::<u64>::Noop.command(), None);
        assert_eq!(Entry::Cmd(7).command(), Some(&7));
        assert_eq!(Entry::Batch(vec![1u64, 2]).command(), None);
    }

    #[test]
    fn entry_commands_projection() {
        assert_eq!(Entry::<u64>::Noop.commands(), &[] as &[u64]);
        assert_eq!(Entry::Cmd(7).commands(), &[7]);
        assert_eq!(Entry::Batch(vec![1u64, 2, 3]).commands(), &[1, 2, 3]);
    }

    #[test]
    fn batch_entry_round_trips_on_the_wire() {
        let entry: Entry<u64> = Entry::Batch(vec![10, 20, 30]);
        let decoded = Entry::<u64>::from_bytes(&entry.to_bytes()).unwrap();
        assert_eq!(decoded, entry);
        // Tags 0/1 are untouched: the pre-batching shapes still decode.
        let cmd: Entry<u64> = Entry::Cmd(7);
        assert_eq!(Entry::<u64>::from_bytes(&cmd.to_bytes()).unwrap(), cmd);
    }

    #[test]
    fn rsm_classify_covers_every_variant() {
        let b = Ballot::new(1, ProcessId(0));
        let msgs: Vec<RsmMsg<u64>> = vec![
            RsmMsg::Omega(OmegaMsg::Accuse { counter: 0 }),
            RsmMsg::Prepare { b, from_slot: 0 },
            RsmMsg::Promise {
                b,
                accepted: vec![],
                low_slot: 0,
            },
            RsmMsg::Accept {
                b,
                slot: 0,
                entry: Entry::Cmd(1),
            },
            RsmMsg::Accepted { b, slot: 0 },
            RsmMsg::Nack { b, higher: b },
            RsmMsg::Decide {
                slot: 0,
                entry: Entry::Noop,
            },
            RsmMsg::DecideAck { slot: 0 },
            RsmMsg::CatchUp { low_slot: 3 },
            RsmMsg::SnapshotOffer {
                watermark: 5,
                chunks: 2,
                crc: 0,
            },
            RsmMsg::SnapshotChunk {
                watermark: 5,
                index: 0,
                chunks: 2,
                crc: 0,
                chunk_crc: 0,
                data: vec![1],
            },
            RsmMsg::SnapshotAck {
                watermark: 5,
                index: 0,
            },
            RsmMsg::LeaseGrant { b, seq: 1 },
            RsmMsg::LeaseAck { b, seq: 1 },
            RsmMsg::ReadIndex { req: 9 },
            RsmMsg::ReadIndexReply { req: 9, index: 4 },
        ];
        let kinds: Vec<_> = msgs.iter().map(classify_rsm_msg).collect();
        assert_eq!(
            kinds,
            vec![
                "ACCUSE",
                "PREPARE",
                "PROMISE",
                "ACCEPT",
                "ACCEPTED",
                "NACK",
                "DECIDE",
                "DECIDE_ACK",
                "CATCH_UP",
                "SNAP_OFFER",
                "SNAP_CHUNK",
                "SNAP_ACK",
                "LEASE_GRANT",
                "LEASE_ACK",
                "READ_INDEX",
                "READ_INDEX_REPLY"
            ]
        );
    }

    #[test]
    fn snapshot_messages_round_trip_on_the_wire() {
        let msgs: Vec<RsmMsg<u64>> = vec![
            RsmMsg::CatchUp { low_slot: 17 },
            RsmMsg::SnapshotOffer {
                watermark: 40,
                chunks: 3,
                crc: 0xDEAD_BEEF,
            },
            RsmMsg::SnapshotChunk {
                watermark: 40,
                index: 1,
                chunks: 3,
                crc: 0xDEAD_BEEF,
                chunk_crc: 0x1234_5678,
                data: vec![9, 8, 7],
            },
            RsmMsg::SnapshotAck {
                watermark: 40,
                index: u32::MAX,
            },
        ];
        for msg in msgs {
            let decoded = RsmMsg::<u64>::from_bytes(&msg.to_bytes()).unwrap();
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn lease_and_read_messages_round_trip_on_the_wire() {
        let b = Ballot::new(3, ProcessId(1));
        let msgs: Vec<RsmMsg<u64>> = vec![
            RsmMsg::LeaseGrant { b, seq: 7 },
            RsmMsg::LeaseAck { b, seq: 7 },
            RsmMsg::ReadIndex { req: 0xAB_CDEF },
            RsmMsg::ReadIndexReply {
                req: 0xAB_CDEF,
                index: 42,
            },
        ];
        for msg in msgs {
            let decoded = RsmMsg::<u64>::from_bytes(&msg.to_bytes()).unwrap();
            assert_eq!(decoded, msg);
        }
    }
}
