//! Repeated consensus: a replicated log in the Multi-Paxos style, gated by
//! the embedded communication-efficient Ω detector.
//!
//! The point of this module is the paper's *communication-efficient
//! consensus* claim: once Ω stabilizes on a leader `ℓ` after GST, `ℓ` runs
//! the ballot (phase-1) handshake **once** for all future slots, and every
//! subsequent command commits in a single `Accept`/`Accepted` round trip plus
//! a `Decide` notification — Θ(n) messages per decision, all sent by or
//! addressed to `ℓ`. Experiment E7 measures exactly this steady state.
//!
//! Mechanics:
//!
//! * One [`Ballot`] covers every slot from `from_slot` on; acceptors promise
//!   it once and reveal everything they accepted at or above that slot.
//! * A newly `Led` leader re-proposes inherited entries, plugs the gaps left
//!   by its predecessor with [`Entry::Noop`], then drains its pending command
//!   queue into fresh slots.
//! * Chosen slots are broadcast as `Decide` and retransmitted until each peer
//!   acknowledges (fair-lossy links), and every process emits
//!   [`RsmEvent::Committed`] in strict slot order.
//!
//! # Throughput path: batching and pipelining
//!
//! The steady-state fast path scales past one-command-per-round-trip with
//! two knobs in [`BatchParams`](omega::BatchParams)
//! (`ConsensusParams::batch`):
//!
//! * **Batching** — up to `max_batch` queued commands coalesce into one
//!   [`Entry::Batch`], decided atomically in a single slot (one accept
//!   round trip, one WAL record, one `Decide` for the whole batch);
//! * **Pipelining** — up to `pipeline_depth` slots may be awaiting their
//!   quorums concurrently; commands arriving while the pipeline is full
//!   queue in `pending` and coalesce into the next batch.
//!
//! All new `Accepted` WAL records minted by one pump of the pipeline are
//! persisted as a *single group* ([`StorageHandle::append_records`]) — one
//! fsync-equivalent flush per pump, not per slot — so durability does not
//! serialize the pipeline. Neither knob touches safety: every slot is still
//! chosen by the ordinary ballot/quorum rules, a batch is just one entry
//! whose payload happens to hold several commands, and the write-ahead rule
//! (records durable before the handler returns, hence before any `Accept`
//! leaves) is preserved verbatim. Experiment E19 measures the resulting
//! decided-commands/sec and latency percentiles.
//!
//! # Bounded recovery: snapshots, compaction, and snapshot-install catch-up
//!
//! Without compaction the WAL grows with uptime and a restarted replica
//! replays its whole history. With a [`SnapshotHandle`] attached
//! ([`ReplicatedLog::with_storage_and_snapshots`]), the application may call
//! [`ReplicatedLog::compact`] after applying a prefix: the serialized state
//! at `watermark` is installed durably *first* (atomic tmp-then-rename in
//! the file backend), then the WAL is rewritten to only the live records
//! (latest Ω counter, latest promise, accepted/chosen entries at or above
//! the watermark), then the in-memory maps drop the covered prefix. A crash
//! between the two installs replays a superset — never a subset — of the
//! compacted state, so the durable-prefix safety envelope of
//! [`crate::durable`] is preserved (see row "compaction" there).
//!
//! Catch-up changes shape once logs can be compacted. A laggard whose gap
//! lies *above* every peer's watermark is served plain `Decide`s via
//! [`RsmMsg::CatchUp`]; a laggard whose gap dips *below* a peer's watermark
//! (it was down long enough for the cluster to compact, or it is a fresh
//! replacement) is served a chunked, CRC-checked snapshot transfer
//! (`SnapshotOffer`/`SnapshotChunk`/`SnapshotAck`, retransmitted with
//! jittered exponential backoff), installs it, emits
//! [`RsmEvent::SnapshotInstalled`], and resumes Decide streaming at the
//! watermark. Symmetrically, a *new leader* never no-op-fills a slot below
//! the highest `low_slot` any promiser reported — those slots are chosen
//! somewhere (possibly compacted away); it fetches them by `CatchUp`
//! instead. Experiment E21 exercises all of this under sustained chaos.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use lls_obs::{CmdId, CmdStage, NoopProbe, Probe, ProbeEvent};
use lls_primitives::wire::crc32;
use lls_primitives::{
    Ctx, Duration, Effects, Env, Instant, ProcessId, Sm, Snapshot, SnapshotHandle, StorageError,
    StorageHandle, StorageStats, TimerCmd, TimerId, Wire,
};
use omega::{CommEffOmega, OmegaMsg};
use serde::{Deserialize, Serialize};

use crate::ballot::Ballot;
use crate::durable::RsmRecord;
use crate::msg::{Entry, RsmMsg};
use crate::single::{ConsensusParams, OMEGA_TIMER_BASE, RETRY_TIMER};

/// Extracts a client-visible [`CmdId`] from a command payload, letting the
/// replicated log emit per-command [`CmdStage`] lifecycle events without
/// knowing the application's command shape. Payloads without a meaningful
/// identity return `None` and stay invisible to latency attribution (their
/// slots still decide and commit exactly as before).
pub trait LifecycleId {
    /// The command's lifecycle identity, if it has one.
    fn lifecycle_id(&self) -> Option<CmdId>;
}

/// Bare `u64` payloads (the benches and consensus tests) use the value
/// itself as the sequence number under a synthetic client 0.
impl LifecycleId for u64 {
    fn lifecycle_id(&self) -> Option<CmdId> {
        Some(CmdId {
            client: 0,
            seq: *self,
        })
    }
}

/// Observable events of a [`ReplicatedLog`] run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RsmEvent<V> {
    /// The embedded Ω detector changed its output.
    Leader(ProcessId),
    /// Slot `slot` committed (emitted in strict slot order at each process).
    /// `cmd` is `None` for no-op filler slots.
    Committed {
        /// The slot index.
        slot: u64,
        /// The committed command, if not a no-op.
        cmd: Option<V>,
    },
    /// A snapshot transfer completed: the application must replace its
    /// materialized state with `state` (its own serialization at
    /// `watermark`) before consuming any further `Committed` events — the
    /// log prefix below the watermark will never be emitted here.
    SnapshotInstalled {
        /// First slot not covered by the installed state.
        watermark: u64,
        /// The application state blob, exactly as a peer serialized it.
        state: Vec<u8>,
    },
    /// Answer to [`ReplicatedLog::request_read_index`]: the read tagged
    /// `req` is linearizable once this replica has applied `index`
    /// contiguous slots. Produced locally by a leaseholding leader, or on
    /// receipt of the leaseholder's [`RsmMsg::ReadIndexReply`].
    ReadIndexAt {
        /// The request token passed to `request_read_index`.
        req: u64,
        /// The committed length to wait for before serving the read.
        index: u64,
    },
}

#[derive(Debug, Clone)]
enum LeaderState<V> {
    Follower,
    Preparing {
        b: Ballot,
        from_slot: u64,
        promised_by: Vec<bool>,
        gathered: BTreeMap<u64, (Ballot, Entry<V>)>,
        /// Each promiser's `low_slot` (first slot it does not know chosen).
        /// Slots below the max over the promising quorum are chosen
        /// *somewhere* and must never be no-op-filled.
        low_slots: Vec<u64>,
    },
    Led {
        b: Ballot,
        next_slot: u64,
    },
}

#[derive(Debug, Clone)]
struct Inflight<V> {
    entry: Entry<V>,
    acks: Vec<bool>,
}

/// Bytes per [`RsmMsg::SnapshotChunk`] — small enough to stay far below the
/// wire codec's frame cap with envelope overhead, large enough that real
/// state blobs move in few round trips.
const SNAP_CHUNK_BYTES: usize = 32 * 1024;

/// Retransmission rounds before an outgoing snapshot transfer is abandoned
/// (a fresh `CatchUp` from the peer restarts it from scratch).
const SNAP_MAX_ATTEMPTS: u32 = 10;

/// Max `Decide`s served per `CatchUp` request — the laggard re-requests as
/// it advances, so one huge burst never floods a link.
const CATCHUP_BURST: usize = 128;

/// splitmix64 — the deterministic hash behind retransmission jitter (no RNG
/// dependency; the same seeds always produce the same schedule, which keeps
/// netsim campaigns reproducible).
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Sender side of one snapshot transfer to one peer.
#[derive(Debug, Clone)]
struct OutgoingSnapshot {
    watermark: u64,
    crc: u32,
    chunks: Vec<Vec<u8>>,
    acked: Vec<bool>,
    attempt: u32,
    cooldown: u32,
}

/// Receiver side of the (single) in-progress snapshot transfer.
#[derive(Debug, Clone)]
struct IncomingSnapshot {
    watermark: u64,
    chunks: u32,
    crc: u32,
    parts: Vec<Option<Vec<u8>>>,
}

/// A replicated log: repeated consensus with a stable-leader fast path.
///
/// # Example
///
/// ```
/// use consensus::{ReplicatedLog, ConsensusParams, RsmEvent};
/// use lls_primitives::{Duration, Instant, ProcessId};
/// use netsim::{SimBuilder, Topology};
///
/// let n = 3;
/// let mut sim = SimBuilder::new(n)
///     .topology(Topology::all_timely(n, Duration::from_ticks(2)))
///     .request_at(Instant::from_ticks(500), ProcessId(0), 7u64)
///     .request_at(Instant::from_ticks(600), ProcessId(0), 8u64)
///     .build_with(|env| ReplicatedLog::new(env, ConsensusParams::default()));
/// sim.run_until(Instant::from_ticks(5_000));
/// let committed: Vec<u64> = sim.node(ProcessId(1)).committed_commands().cloned().collect();
/// assert_eq!(committed, vec![7, 8]);
/// ```
#[derive(Debug, Clone)]
pub struct ReplicatedLog<V, P: Probe = NoopProbe> {
    env: Env,
    params: ConsensusParams,
    omega: CommEffOmega<P>,
    // Acceptor state.
    promised: Ballot,
    accepted: BTreeMap<u64, (Ballot, Entry<V>)>,
    // Learner state.
    chosen: BTreeMap<u64, Entry<V>>,
    emitted_upto: u64,
    // Leader state.
    state: LeaderState<V>,
    highest_seen: Ballot,
    pending: VecDeque<V>,
    inflight: BTreeMap<u64, Inflight<V>>,
    decide_trackers: BTreeMap<u64, Vec<bool>>,
    /// Peers that had not acknowledged a Decide when compaction pruned its
    /// tracker. The Decide bytes no longer exist here, so the next retry
    /// tick serves these peers a snapshot transfer instead — a peer missing
    /// the *final* slot has no later chosen slot to trigger its own
    /// CatchUp, and would otherwise never converge in a quiet cluster.
    snapshot_debtors: BTreeSet<ProcessId>,
    /// Highest log frontier overheard from peers: a `CatchUp { low_slot }`
    /// advertises that its sender has emitted everything below `low_slot`,
    /// and a snapshot offer advertises its watermark. Evidence that slots
    /// up to the frontier exist even when we hold nothing above our cursor
    /// — the case after the decider of our missing suffix crashed (its
    /// in-memory retransmission state dies with it) and rejoined.
    known_frontier: u64,
    // Durability (see `crate::durable` for the safety arguments).
    storage: Option<StorageHandle>,
    wedged: bool,
    // Snapshots + compaction (see the module docs).
    snapshots: Option<SnapshotHandle>,
    /// First slot *not* covered by the latest durable snapshot. Everything
    /// below is chosen, applied, and may be absent from WAL and maps.
    watermark: u64,
    /// The snapshot a `with_storage_and_snapshots` constructor recovered,
    /// for the application to rebuild its state from.
    recovered_snapshot: Option<Snapshot>,
    /// Whether this incarnation recovered non-empty durable state (it then
    /// broadcasts one `CatchUp` on start to find where the log has moved).
    recovered: bool,
    outgoing_snaps: BTreeMap<ProcessId, OutgoingSnapshot>,
    incoming_snap: Option<IncomingSnapshot>,
    // External-leadership mode: the embedded Ω is inert and leadership is
    // injected via `set_leader` (one shared Ω per node drives many groups).
    external: bool,
    believed: Option<ProcessId>,
    // Leader leases (see `LeaseParams`). All of this state is *volatile by
    // design*: a restarted replica forgets both sides of every lease, and
    // the boot blackout in `on_start` covers the forgotten promises.
    /// Granter side: until when this replica refuses to promise (or start)
    /// a ballot from anyone but `holdoff_for` on its own clock.
    holdoff_until: Instant,
    /// The leaseholder the current holdoff protects (`None` during the
    /// boot blackout, which protects *whoever* held a lease pre-crash).
    holdoff_for: Option<ProcessId>,
    /// Leader side: conservative local expiry of the active lease.
    lease_until: Option<Instant>,
    /// Grant-round number, monotone within this incarnation and ballot.
    lease_seq: u64,
    /// Start of the in-flight grant round on this (leader) clock — the
    /// anchor the serving window is measured from.
    lease_round_start: Instant,
    /// Per-process acks of the in-flight grant round.
    lease_acks: Vec<bool>,
    /// Shard tag stamped on lease/read probe events (0 when unsharded; a
    /// log embedded in a sharded node doesn't otherwise know its group).
    probe_shard: u32,
    /// Observability sink; `NoopProbe` by default (zero cost).
    probe: P,
    /// Wall of the last stimulus (`ctx.now()` at handler entry) — gives the
    /// persistence path a timestamp without threading `ctx` through it.
    clock: Instant,
}

impl<V> ReplicatedLog<V>
where
    V: Clone + Eq + fmt::Debug + Send + Wire + LifecycleId + 'static,
{
    /// Creates a replica.
    ///
    /// # Panics
    ///
    /// Panics if the Ω parameters are invalid.
    pub fn new(env: &Env, params: ConsensusParams) -> Self {
        ReplicatedLog::new_with_probe(env, params, NoopProbe)
    }

    /// Creates a replica backed by a durable log, recovering the promised
    /// ballot, accepted entries, chosen prefix and Ω counter a previous
    /// incarnation persisted.
    ///
    /// Recovery runs synchronously before any stimulus (the "recovering
    /// rejoin mode"). Recovered chosen slots are restored *without*
    /// re-emitting their `Committed` outputs — the pre-crash incarnation
    /// already emitted them; applications rebuilding state after a restart
    /// read [`Self::chosen_log`] / [`Self::committed_commands`] instead. The
    /// recovered Ω counter is bumped once so the restarted replica rejoins
    /// as a follower. See [`crate::durable`] for the per-field safety
    /// arguments.
    ///
    /// # Errors
    ///
    /// Fails if the log cannot be read or the boot record cannot be written.
    ///
    /// # Panics
    ///
    /// Panics if the Ω parameters are invalid.
    pub fn with_storage(
        env: &Env,
        params: ConsensusParams,
        storage: StorageHandle,
    ) -> Result<Self, StorageError> {
        ReplicatedLog::with_storage_and_probe(env, params, storage, NoopProbe)
    }

    /// Like [`ReplicatedLog::with_storage`], additionally attaching a
    /// snapshot store (see
    /// [`ReplicatedLog::with_storage_snapshots_and_probe`]).
    ///
    /// # Errors
    ///
    /// Fails if the log or snapshot store cannot be read or the boot record
    /// cannot be written.
    ///
    /// # Panics
    ///
    /// Panics if the Ω parameters are invalid.
    pub fn with_storage_and_snapshots(
        env: &Env,
        params: ConsensusParams,
        storage: StorageHandle,
        snapshots: SnapshotHandle,
    ) -> Result<Self, StorageError> {
        ReplicatedLog::with_storage_snapshots_and_probe(env, params, storage, snapshots, NoopProbe)
    }
}

impl<V, P> ReplicatedLog<V, P>
where
    V: Clone + Eq + fmt::Debug + Send + Wire + LifecycleId + 'static,
    P: Probe,
{
    /// Like [`ReplicatedLog::new`], with an observability probe (shared
    /// with the embedded Ω detector, so one sink sees both layers).
    ///
    /// # Panics
    ///
    /// Panics if the Ω parameters are invalid.
    pub fn new_with_probe(env: &Env, params: ConsensusParams, probe: P) -> Self {
        ReplicatedLog {
            env: *env,
            params,
            omega: CommEffOmega::new_with_probe(env, params.omega, probe.clone()),
            promised: Ballot::ZERO,
            accepted: BTreeMap::new(),
            chosen: BTreeMap::new(),
            emitted_upto: 0,
            state: LeaderState::Follower,
            highest_seen: Ballot::ZERO,
            pending: VecDeque::new(),
            inflight: BTreeMap::new(),
            decide_trackers: BTreeMap::new(),
            snapshot_debtors: BTreeSet::new(),
            known_frontier: 0,
            storage: None,
            wedged: false,
            snapshots: None,
            watermark: 0,
            recovered_snapshot: None,
            recovered: false,
            outgoing_snaps: BTreeMap::new(),
            incoming_snap: None,
            external: false,
            believed: None,
            holdoff_until: Instant::ZERO,
            holdoff_for: None,
            lease_until: None,
            lease_seq: 0,
            lease_round_start: Instant::ZERO,
            lease_acks: vec![false; env.n()],
            probe_shard: 0,
            probe,
            clock: Instant::ZERO,
        }
    }

    /// Like [`ReplicatedLog::new`], but in *external-leadership* mode: the
    /// embedded Ω detector stays inert (no heartbeats, no timers, Ω
    /// messages dropped) and leadership is injected with
    /// [`ReplicatedLog::set_leader`] instead. This is how a node hosting
    /// many co-located shard groups shares **one** Ω across all of them —
    /// steady-state election traffic stays independent of the group count.
    ///
    /// # Panics
    ///
    /// Panics if the Ω parameters are invalid.
    pub fn new_externally_led(env: &Env, params: ConsensusParams) -> Self
    where
        P: Default,
    {
        let mut sm = ReplicatedLog::new_with_probe(env, params, P::default());
        sm.external = true;
        sm
    }

    /// Like [`ReplicatedLog::new_externally_led`], with an observability
    /// probe.
    ///
    /// # Panics
    ///
    /// Panics if the Ω parameters are invalid.
    pub fn new_externally_led_with_probe(env: &Env, params: ConsensusParams, probe: P) -> Self {
        let mut sm = ReplicatedLog::new_with_probe(env, params, probe);
        sm.external = true;
        sm
    }

    /// Like [`ReplicatedLog::with_storage_and_probe`], but in
    /// external-leadership mode (see
    /// [`ReplicatedLog::new_externally_led`]): the group recovers its own
    /// WAL segment exactly as usual, then waits for leadership from the
    /// shared detector.
    ///
    /// # Errors
    ///
    /// Fails if the log cannot be read or the boot record cannot be written.
    ///
    /// # Panics
    ///
    /// Panics if the Ω parameters are invalid.
    pub fn with_storage_externally_led(
        env: &Env,
        params: ConsensusParams,
        storage: StorageHandle,
        probe: P,
    ) -> Result<Self, StorageError> {
        let mut sm = ReplicatedLog::with_storage_and_probe(env, params, storage, probe)?;
        sm.external = true;
        Ok(sm)
    }

    /// Like [`ReplicatedLog::with_storage`], with an observability probe.
    ///
    /// # Errors
    ///
    /// Fails if the log cannot be read or the boot record cannot be written.
    ///
    /// # Panics
    ///
    /// Panics if the Ω parameters are invalid.
    pub fn with_storage_and_probe(
        env: &Env,
        params: ConsensusParams,
        storage: StorageHandle,
        probe: P,
    ) -> Result<Self, StorageError> {
        let mut sm = ReplicatedLog::new_with_probe(env, params, probe);
        let records: Vec<RsmRecord<V>> = storage.load_records()?;
        sm.probe.emit(ProbeEvent::WalRecover {
            node: env.id(),
            at: Instant::ZERO,
            records: records.len() as u64,
        });
        // The WAL bytes just replayed are exactly what snapshots exist to
        // bound — surfaced as the `recovery_replay_bytes` counter.
        sm.probe.emit(ProbeEvent::RecoveryReplay {
            node: env.id(),
            at: Instant::ZERO,
            bytes: storage.stats().live_bytes,
        });
        let recovering = !records.is_empty();
        sm.recovered = recovering;
        let mut omega_counter = 0u64;
        for rec in records {
            match rec {
                RsmRecord::OmegaCounter(c) => omega_counter = omega_counter.max(c),
                RsmRecord::Promised(b) => sm.promised = sm.promised.max(b),
                RsmRecord::Accepted { slot, b, entry } => {
                    sm.promised = sm.promised.max(b);
                    match sm.accepted.get(&slot) {
                        Some((prev, _)) if *prev > b => {}
                        _ => {
                            sm.accepted.insert(slot, (b, entry));
                        }
                    }
                }
                RsmRecord::Chosen { slot, entry } => {
                    sm.chosen.entry(slot).or_insert(entry);
                }
            }
        }
        sm.highest_seen = sm.promised;
        // Quietly advance past the contiguous recovered prefix: those
        // Committed events were already emitted by the previous incarnation.
        while sm.chosen.contains_key(&sm.emitted_upto) {
            sm.emitted_upto += 1;
        }
        let boot_counter = if recovering {
            omega_counter.saturating_add(1)
        } else {
            0
        };
        storage.append_record(&RsmRecord::<V>::OmegaCounter(boot_counter))?;
        sm.omega.restore_own_counter(boot_counter);
        sm.storage = Some(storage);
        Ok(sm)
    }

    /// Like [`ReplicatedLog::with_storage_and_probe`], additionally
    /// attaching a snapshot store: any snapshot it holds floors the
    /// replica's watermark before WAL replay semantics apply (records below
    /// the watermark are covered by the snapshot and ignored), and
    /// [`ReplicatedLog::compact`] becomes available. The recovered snapshot
    /// blob is exposed through [`ReplicatedLog::recovered_snapshot`] for the
    /// application to rebuild its state from.
    ///
    /// # Errors
    ///
    /// Fails if the log or snapshot store cannot be read, or the boot
    /// record cannot be written.
    ///
    /// # Panics
    ///
    /// Panics if the Ω parameters are invalid.
    pub fn with_storage_snapshots_and_probe(
        env: &Env,
        params: ConsensusParams,
        storage: StorageHandle,
        snapshots: SnapshotHandle,
        probe: P,
    ) -> Result<Self, StorageError> {
        let mut sm = ReplicatedLog::with_storage_and_probe(env, params, storage, probe)?;
        sm.attach_snapshots(snapshots)?;
        Ok(sm)
    }

    /// Like [`ReplicatedLog::with_storage_snapshots_and_probe`], in
    /// external-leadership mode (see [`ReplicatedLog::new_externally_led`]).
    ///
    /// # Errors
    ///
    /// Fails if the log or snapshot store cannot be read, or the boot
    /// record cannot be written.
    ///
    /// # Panics
    ///
    /// Panics if the Ω parameters are invalid.
    pub fn with_storage_snapshots_externally_led(
        env: &Env,
        params: ConsensusParams,
        storage: StorageHandle,
        snapshots: SnapshotHandle,
        probe: P,
    ) -> Result<Self, StorageError> {
        let mut sm = ReplicatedLog::with_storage_snapshots_and_probe(
            env, params, storage, snapshots, probe,
        )?;
        sm.external = true;
        Ok(sm)
    }

    /// Loads the snapshot store's current snapshot (if any), floors the
    /// replica at its watermark, and keeps the handle for
    /// [`ReplicatedLog::compact`].
    fn attach_snapshots(&mut self, snapshots: SnapshotHandle) -> Result<(), StorageError> {
        if let Some(snap) = snapshots.load()? {
            self.recovered = true;
            self.apply_watermark(snap.watermark);
            // Quiet advance, as in WAL recovery: the pre-crash incarnation
            // already emitted everything contiguous above the watermark.
            while self.chosen.contains_key(&self.emitted_upto) {
                self.emitted_upto += 1;
            }
            self.recovered_snapshot = Some(snap);
        }
        self.snapshots = Some(snapshots);
        Ok(())
    }

    /// Floors the replica at `watermark`: drops acceptor/learner state below
    /// it (all of it is chosen and covered by a snapshot) and advances the
    /// emission cursor to at least the watermark. Emits nothing — callers on
    /// the live path drain committed events themselves *after* announcing
    /// the snapshot.
    fn apply_watermark(&mut self, watermark: u64) {
        if watermark <= self.watermark {
            return;
        }
        self.watermark = watermark;
        self.accepted = self.accepted.split_off(&watermark);
        self.chosen = self.chosen.split_off(&watermark);
        // Pruning a tracker that still has unacknowledged peers would drop
        // their retransmission silently; remember them as snapshot debtors
        // so the next retry tick serves them a state transfer instead.
        let mut owed: Vec<ProcessId> = Vec::new();
        for (_, acks) in self.decide_trackers.range(..watermark) {
            for q in self.env.membership().others(self.me()) {
                if !acks[q.as_usize()] {
                    owed.push(q);
                }
            }
        }
        self.snapshot_debtors.extend(owed);
        self.decide_trackers = self.decide_trackers.split_off(&watermark);
        if self.emitted_upto < watermark {
            self.emitted_upto = watermark;
        }
    }

    /// The records that must survive a WAL rewrite at the current horizon:
    /// the latest Ω counter and promise, and every accepted/chosen entry at
    /// or above the watermark.
    fn live_records(&self) -> Vec<RsmRecord<V>> {
        let mut live: Vec<RsmRecord<V>> =
            Vec::with_capacity(2 + self.accepted.len() + self.chosen.len());
        live.push(RsmRecord::OmegaCounter(self.omega.own_counter()));
        live.push(RsmRecord::Promised(self.promised));
        for (slot, (b, entry)) in &self.accepted {
            live.push(RsmRecord::Accepted {
                slot: *slot,
                b: *b,
                entry: entry.clone(),
            });
        }
        for (slot, entry) in &self.chosen {
            live.push(RsmRecord::Chosen {
                slot: *slot,
                entry: entry.clone(),
            });
        }
        live
    }

    /// Durably snapshots the application's serialized `state` at `watermark`
    /// and truncates the WAL behind it, bounding both disk use and future
    /// recovery replay. Ordering is the whole safety argument: the snapshot
    /// is installed durably *first*, then the WAL is rewritten to only the
    /// live records, then the in-memory maps drop the covered prefix — a
    /// crash between any two steps recovers a superset of the compacted
    /// state. `watermark` is clamped to the contiguously committed prefix
    /// (state can only describe applied slots).
    ///
    /// Returns `Ok(false)` (and does nothing) when no snapshot store is
    /// attached, the replica is wedged, or the clamped watermark does not
    /// advance. Call it from the application after applying commands — e.g.
    /// every N applied commands.
    ///
    /// # Errors
    ///
    /// Fails (wedging the replica, on the WAL-rewrite step) if persistence
    /// fails — a replica that cannot compact safely must fall silent rather
    /// than risk serving an uncovered prefix.
    pub fn compact(&mut self, watermark: u64, state: Vec<u8>) -> Result<bool, StorageError> {
        if self.wedged {
            return Ok(false);
        }
        let Some(snaps) = self.snapshots.clone() else {
            return Ok(false);
        };
        let watermark = watermark.min(self.emitted_upto);
        if watermark <= self.watermark {
            return Ok(false);
        }
        // 1. Snapshot durable first.
        snaps.install(&Snapshot {
            watermark,
            data: state,
        })?;
        // 2. In-memory horizon defines the live set…
        self.apply_watermark(watermark);
        // 3. …and the WAL is rewritten to exactly that set.
        if let Some(store) = self.storage.clone() {
            if let Err(e) = store.compact_records(&self.live_records()) {
                self.probe.emit(ProbeEvent::WalWedge {
                    node: self.me(),
                    at: self.clock,
                });
                self.wedged = true;
                return Err(e);
            }
        }
        self.probe.emit(ProbeEvent::SnapshotWrite {
            node: self.me(),
            at: self.clock,
            watermark,
            live_bytes: self.wal_stats().live_bytes,
        });
        Ok(true)
    }

    /// First slot not covered by the latest durable snapshot (0 when no
    /// compaction has happened).
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Live/appended byte counts of the attached WAL (zeros when none) —
    /// what E21 gates its disk-bound claim on.
    pub fn wal_stats(&self) -> StorageStats {
        self.storage
            .as_ref()
            .map(StorageHandle::stats)
            .unwrap_or_default()
    }

    /// The snapshot recovered at construction, if any — the application
    /// rebuilds its state from this blob, then replays
    /// [`ReplicatedLog::committed_commands_from`] the watermark on.
    pub fn recovered_snapshot(&self) -> Option<&Snapshot> {
        self.recovered_snapshot.as_ref()
    }

    /// Appends `rec` to the durable log, if one is attached; wedges the
    /// machine on failure (a replica that cannot persist must fall silent).
    fn persist(&mut self, rec: &RsmRecord<V>) -> bool {
        if self.wedged {
            return false;
        }
        match &self.storage {
            None => true,
            Some(store) => {
                if store.append_record(rec).is_ok() {
                    self.probe.emit(ProbeEvent::WalAppend {
                        node: self.env.id(),
                        at: self.clock,
                    });
                    true
                } else {
                    self.probe.emit(ProbeEvent::WalWedge {
                        node: self.env.id(),
                        at: self.clock,
                    });
                    self.wedged = true;
                    false
                }
            }
        }
    }

    /// Appends `recs` to the durable log as one group commit — a single
    /// fsync-equivalent flush on file-backed WALs, however many slots the
    /// pipeline pump minted — if storage is attached; wedges the machine on
    /// failure. An empty group is a no-op.
    fn persist_group(&mut self, recs: &[RsmRecord<V>]) -> bool {
        if self.wedged {
            return false;
        }
        if recs.is_empty() {
            return true;
        }
        match &self.storage {
            None => true,
            Some(store) => {
                if store.append_records(recs).is_ok() {
                    // One probe event per record keeps the wal_append counter
                    // meaning "records persisted", not "flushes issued".
                    for _ in recs {
                        self.probe.emit(ProbeEvent::WalAppend {
                            node: self.env.id(),
                            at: self.clock,
                        });
                    }
                    true
                } else {
                    self.probe.emit(ProbeEvent::WalWedge {
                        node: self.env.id(),
                        at: self.clock,
                    });
                    self.wedged = true;
                    false
                }
            }
        }
    }

    /// Emits one [`CmdStage`] lifecycle event per identifiable command in
    /// `entry`. Guarded by [`Probe::ENABLED`] so `NoopProbe` builds never
    /// walk batch payloads — the command hot path stays exactly as wide as
    /// before this instrumentation existed.
    fn emit_stage(&mut self, at: Instant, entry: &Entry<V>, stage: CmdStage) {
        if !P::ENABLED {
            return;
        }
        match entry {
            Entry::Noop => {}
            Entry::Cmd(v) => self.emit_cmd_stage(at, v, stage),
            Entry::Batch(vs) => {
                for v in vs {
                    self.emit_cmd_stage(at, v, stage);
                }
            }
        }
    }

    fn emit_cmd_stage(&mut self, at: Instant, v: &V, stage: CmdStage) {
        if let Some(cmd) = v.lifecycle_id() {
            self.probe.emit(ProbeEvent::CmdLifecycle {
                node: self.me(),
                at,
                cmd,
                stage,
                // The log is shard-agnostic; the client-side router stamps
                // the true shard on its ShardRoute event and path
                // reconstruction takes the max over a command's events.
                shard: 0,
            });
        }
    }

    /// The attached observability probe — layered emitters (e.g. the KV
    /// replica stamping the `Apply` lifecycle stage) share the log's sink
    /// so one recorder sees a command's whole path.
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// The embedded Ω detector (for instrumentation).
    pub fn omega(&self) -> &CommEffOmega<P> {
        &self.omega
    }

    /// `true` if this log runs in external-leadership mode (embedded Ω
    /// inert, leadership injected via [`ReplicatedLog::set_leader`]).
    pub fn is_externally_led(&self) -> bool {
        self.external
    }

    /// Injects the current leader from an external detector (the shared
    /// per-node Ω of a sharded deployment). Emits [`RsmEvent::Leader`] and
    /// runs the same prepare/abdicate transition the embedded Ω output
    /// would: becoming leader starts phase 1 once, losing leadership drops
    /// in-flight proposals. Repeated injections of the same leader are
    /// no-ops. Ignored unless the log is in external-leadership mode.
    pub fn set_leader(&mut self, ctx: &mut Ctx<'_, RsmMsg<V>, RsmEvent<V>>, leader: ProcessId) {
        self.clock = ctx.now();
        if !self.external || self.wedged || self.believed == Some(leader) {
            return;
        }
        self.believed = Some(leader);
        ctx.output(RsmEvent::Leader(leader));
        if leader == self.me() {
            if matches!(self.state, LeaderState::Follower) {
                self.start_prepare(ctx);
            }
        } else {
            self.abdicate(ctx.now());
        }
    }

    /// Whether this replica currently believes it should lead: the external
    /// detector's word in external mode, the embedded Ω's otherwise.
    fn believes_leadership(&self) -> bool {
        if self.external {
            self.believed == Some(self.me())
        } else {
            self.omega.is_leader()
        }
    }

    /// Returns `true` if this replica currently leads with an established
    /// ballot (steady-state fast path active).
    pub fn is_established_leader(&self) -> bool {
        matches!(self.state, LeaderState::Led { .. })
    }

    /// Number of contiguously committed slots.
    pub fn committed_len(&self) -> u64 {
        self.emitted_upto
    }

    /// Stamps lease/read probe events with `shard`. Sharded nodes call this
    /// once per group at construction; unsharded logs stay at 0.
    pub fn set_probe_shard(&mut self, shard: u32) {
        self.probe_shard = shard;
    }

    /// Whether the lease plane is configured on at all (see
    /// [`crate::LeaseParams::enabled`]); the fast read path is only wired
    /// up when it is.
    pub fn lease_enabled(&self) -> bool {
        self.params.lease.enabled
    }

    /// Whether this replica may serve a linearizable read locally *right
    /// now*: leases are on, it is an established leader, and its
    /// quorum-acked lease has not reached its conservative local expiry.
    pub fn lease_read_allowed(&self, now: Instant) -> bool {
        self.params.lease.enabled
            && matches!(self.state, LeaderState::Led { .. })
            && self.lease_until.is_some_and(|until| now < until)
    }

    /// Conservative local expiry of the active lease, if one is held.
    pub fn lease_active_until(&self) -> Option<Instant> {
        self.lease_until
    }

    /// Starts (or re-starts) a follower read: asks the believed leader at
    /// what committed length a read issued now is linearizable; the answer
    /// arrives as [`RsmEvent::ReadIndexAt`] (synchronously when this
    /// replica itself holds the lease). A no-op without a believed leader,
    /// and the request travels over fair-lossy links — callers re-issue on
    /// their own retry cadence until the event arrives.
    pub fn request_read_index(&mut self, ctx: &mut Ctx<'_, RsmMsg<V>, RsmEvent<V>>, req: u64) {
        self.clock = ctx.now();
        if self.wedged {
            return;
        }
        if self.lease_read_allowed(ctx.now()) {
            let index = self.emitted_upto;
            ctx.output(RsmEvent::ReadIndexAt { req, index });
            return;
        }
        let believed = if self.external {
            self.believed
        } else {
            Some(self.omega.leader())
        };
        if let Some(leader) = believed {
            if leader != self.me() {
                ctx.send(leader, RsmMsg::ReadIndex { req });
            }
        }
    }

    /// Leader-side serving margin: how far past a grant round's start the
    /// leader may serve lease-reads. Conservative by `skew` — unless the
    /// test-only sabotage switch inverts the margin (see
    /// [`crate::LeaseParams::unsafe_skew_inversion`]).
    fn lease_serve_margin(&self) -> Duration {
        let lease = &self.params.lease;
        if lease.unsafe_skew_inversion {
            lease.duration + lease.skew
        } else {
            lease.duration - lease.skew
        }
    }

    /// Granter-side holdoff margin: how long past a grant's receipt the
    /// granter refuses competing elections. Generous by `skew` (inverted by
    /// the sabotage switch).
    fn lease_grant_margin(&self) -> Duration {
        let lease = &self.params.lease;
        if lease.unsafe_skew_inversion {
            lease.duration - lease.skew
        } else {
            lease.duration + lease.skew
        }
    }

    /// Whether this replica is currently holding off elections on behalf of
    /// a leaseholder other than itself — in which case it must neither
    /// promise a competing ballot nor start one (its own self-promise would
    /// bypass the `Prepare` gate and break quorum intersection).
    fn holding_off_for_other(&self, now: Instant) -> bool {
        now < self.holdoff_until && self.holdoff_for != Some(self.me())
    }

    /// One lease grant/renewal round, riding every retry tick while `Led`:
    /// a fresh `seq`, a fresh ack vector, a fresh expiry anchored at *this*
    /// round's start. Also lets an already-expired lease lapse observably
    /// before the new round begins.
    fn lease_tick(&mut self, ctx: &mut Ctx<'_, RsmMsg<V>, RsmEvent<V>>, b: Ballot) {
        if !self.params.lease.enabled {
            return;
        }
        self.note_lease_lapse(ctx.now());
        // A holdoff owed to another holder (or the boot blackout) outranks
        // our own renewal: flipping `holdoff_for` back to ourselves here
        // would usurp a promise this replica's acceptor already made to a
        // newer leader, and after abdication it could then elect itself
        // inside that holder's live lease window. Skip the whole round —
        // a stale leader learns of the higher ballot from the Nacks its
        // grants (or Accepts) draw and abdicates.
        if self.holding_off_for_other(ctx.now()) {
            return;
        }
        self.lease_seq += 1;
        self.lease_round_start = ctx.now();
        self.lease_acks = vec![false; self.env.n()];
        let me = self.me().as_usize();
        self.lease_acks[me] = true;
        // The leader grants to itself on the same terms as everyone else:
        // its own acceptor must block competing ballots while its lease
        // runs, or a quorum intersecting only at the leader would not
        // intersect the holdoff at all.
        let self_holdoff = ctx.now() + self.lease_grant_margin();
        self.holdoff_until = self.holdoff_until.max(self_holdoff);
        self.holdoff_for = Some(self.me());
        let seq = self.lease_seq;
        for q in self.env.membership().others(self.me()) {
            ctx.send(q, RsmMsg::LeaseGrant { b, seq });
        }
        // n == 1: the self-ack already is a quorum.
        self.try_activate_lease(ctx.now());
    }

    /// Activates (or extends) the lease once the current grant round has a
    /// majority of acks. Emitted once per activating round — every renewal
    /// advances the window, so the watchdog's `until` tracking stays fresh.
    fn try_activate_lease(&mut self, now: Instant) {
        if self.lease_acks.iter().filter(|a| **a).count() < self.majority() {
            return;
        }
        let until = self.lease_round_start + self.lease_serve_margin();
        if self.lease_until.is_none_or(|u| until > u) {
            self.lease_until = Some(until);
            self.probe.emit(ProbeEvent::LeaseAcquired {
                node: self.me(),
                at: now,
                shard: self.probe_shard,
                seq: self.lease_seq,
                until,
            });
        }
    }

    /// Observably drops a lease whose conservative expiry has passed.
    fn note_lease_lapse(&mut self, now: Instant) {
        if self.lease_until.is_some_and(|until| now >= until) {
            self.lease_until = None;
            self.probe.emit(ProbeEvent::LeaseExpired {
                node: self.me(),
                at: now,
                shard: self.probe_shard,
                seq: self.lease_seq,
            });
        }
    }

    /// The chosen entry of `slot`, if this replica learned it.
    pub fn chosen(&self, slot: u64) -> Option<&Entry<V>> {
        self.chosen.get(&slot)
    }

    /// All contiguously committed client commands in slot order (no-ops
    /// skipped; batched slots contribute each of their commands in batch
    /// order).
    pub fn committed_commands(&self) -> impl Iterator<Item = &V> {
        self.chosen
            .range(0..self.emitted_upto)
            .flat_map(|(_, e)| e.commands().iter())
    }

    /// Contiguously committed client commands from slot `from` on — the
    /// replay iterator for a replica rebuilding state on top of a snapshot
    /// (pass the snapshot's watermark; slots below it were compacted away).
    pub fn committed_commands_from(&self, from: u64) -> impl Iterator<Item = &V> {
        self.chosen
            .range(from..self.emitted_upto.max(from))
            .flat_map(|(_, e)| e.commands().iter())
    }

    /// Commands queued locally but not yet committed.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Number of slots proposed but not yet chosen (the occupied pipeline
    /// window; only ever non-zero at an established leader).
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }

    /// The full chosen map (slot → single command), for the log-consistency
    /// checker. Like no-ops, batched slots map to `None` — a batch is not
    /// *one* command; use [`Self::chosen_entries`] for the lossless view.
    pub fn chosen_log(&self) -> BTreeMap<u64, Option<V>> {
        self.chosen
            .iter()
            .map(|(s, e)| (*s, e.command().cloned()))
            .collect()
    }

    /// The full chosen map (slot → entry), lossless: batched slots keep
    /// their whole command vectors. The consistency check for batched runs
    /// compares these maps across replicas.
    pub fn chosen_entries(&self) -> BTreeMap<u64, Entry<V>> {
        self.chosen.clone()
    }

    fn me(&self) -> ProcessId {
        self.env.id()
    }

    fn majority(&self) -> usize {
        self.env.membership().majority()
    }

    fn drive_omega(
        &mut self,
        ctx: &mut Ctx<'_, RsmMsg<V>, RsmEvent<V>>,
        step: impl FnOnce(&mut CommEffOmega<P>, &mut Ctx<'_, OmegaMsg, ProcessId>),
    ) {
        let mut fx: Effects<OmegaMsg, ProcessId> = Effects::new();
        let counter_before = self.omega.own_counter();
        {
            let mut octx = Ctx::new(&self.env, ctx.now(), &mut fx);
            step(&mut self.omega, &mut octx);
        }
        // Write-ahead: the bumped counter must be durable before any message
        // revealing it can leave (effects are drained after we return).
        let counter_after = self.omega.own_counter();
        if counter_after != counter_before && !self.persist(&RsmRecord::OmegaCounter(counter_after))
        {
            return;
        }
        for s in fx.sends {
            ctx.send(s.to, RsmMsg::Omega(s.msg));
        }
        for cmd in fx.timers {
            match cmd {
                TimerCmd::Set { timer, after } => {
                    ctx.set_timer(timer.offset(OMEGA_TIMER_BASE), after);
                }
                TimerCmd::Cancel { timer } => {
                    ctx.cancel_timer(timer.offset(OMEGA_TIMER_BASE));
                }
            }
        }
        for leader in fx.outputs {
            ctx.output(RsmEvent::Leader(leader));
            if leader == self.me() {
                if matches!(self.state, LeaderState::Follower) {
                    self.start_prepare(ctx);
                }
            } else {
                self.abdicate(ctx.now());
            }
        }
    }

    fn abdicate(&mut self, now: Instant) {
        if let LeaderState::Preparing { b, .. } | LeaderState::Led { b, .. } = &self.state {
            self.probe.emit(ProbeEvent::PhaseEnter {
                node: self.me(),
                at: now,
                label: "follower",
                number: b.round(),
            });
        }
        self.state = LeaderState::Follower;
        self.inflight.clear();
        // A deposed leader must stop serving lease-reads immediately — the
        // Nack that deposed it proves a higher ballot exists.
        if self.lease_until.take().is_some() {
            self.probe.emit(ProbeEvent::LeaseExpired {
                node: self.me(),
                at: now,
                shard: self.probe_shard,
                seq: self.lease_seq,
            });
        }
    }

    fn start_prepare(&mut self, ctx: &mut Ctx<'_, RsmMsg<V>, RsmEvent<V>>) {
        // A granter inside someone else's holdoff must not elect itself:
        // its self-promise would bypass the `Prepare` gate below and break
        // the quorum-intersection argument. Retry ticks re-attempt after
        // the holdoff expires.
        if self.holding_off_for_other(self.clock) {
            return;
        }
        let b = self.highest_seen.max(self.promised).next_for(self.me());
        if !self.persist(&RsmRecord::Promised(b)) {
            return;
        }
        self.highest_seen = b;
        let from_slot = self.emitted_upto;
        // Self-promise, revealing our own accepted suffix.
        self.promised = b;
        let mut promised_by = vec![false; self.env.n()];
        promised_by[self.me().as_usize()] = true;
        let gathered: BTreeMap<u64, (Ballot, Entry<V>)> = self
            .accepted
            .range(from_slot..)
            .map(|(s, (ab, e))| (*s, (*ab, e.clone())))
            .collect();
        let mut low_slots = vec![0u64; self.env.n()];
        low_slots[self.me().as_usize()] = self.emitted_upto;
        self.state = LeaderState::Preparing {
            b,
            from_slot,
            promised_by,
            gathered,
            low_slots,
        };
        self.probe.emit(ProbeEvent::PhaseEnter {
            node: self.me(),
            at: ctx.now(),
            label: "prepare",
            number: b.round(),
        });
        ctx.broadcast(RsmMsg::Prepare { b, from_slot });
        self.try_assume_leadership(ctx);
    }

    /// Preparing → Led once a majority promised: re-propose inherited
    /// entries, plug gaps with no-ops, then drain the pending queue.
    fn try_assume_leadership(&mut self, ctx: &mut Ctx<'_, RsmMsg<V>, RsmEvent<V>>) {
        let LeaderState::Preparing {
            b,
            from_slot,
            promised_by,
            gathered,
            low_slots,
        } = &self.state
        else {
            return;
        };
        if promised_by.iter().filter(|p| **p).count() < self.majority() {
            return;
        }
        let (b, from_slot) = (*b, *from_slot);
        let gathered = gathered.clone();
        // Safety floor: every slot below some promiser's low_slot is chosen
        // *somewhere* — any quorum that chose it intersects our promising
        // quorum, so the choice is either revealed in `gathered` or lies
        // below the revealer's (compacted) low_slot. Never no-op-fill below
        // the floor, and never propose fresh commands there: fetch by
        // CatchUp (answered with Decides or a snapshot transfer) instead.
        let floor = low_slots
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
            .max(self.watermark);
        let horizon = gathered
            .keys()
            .next_back()
            .map(|s| s + 1)
            .unwrap_or(from_slot)
            .max(self.chosen.keys().next_back().map(|s| s + 1).unwrap_or(0))
            .max(floor);
        self.state = LeaderState::Led {
            b,
            next_slot: horizon,
        };
        self.probe.emit(ProbeEvent::PhaseEnter {
            node: self.me(),
            at: ctx.now(),
            label: "led",
            number: b.round(),
        });
        let mut announce: Vec<(u64, Entry<V>)> = Vec::new();
        let mut proposals: Vec<(u64, Entry<V>)> = Vec::new();
        let mut needs_catchup = false;
        for slot in from_slot..horizon {
            if let Some(entry) = self.chosen.get(&slot).cloned() {
                announce.push((slot, entry));
            } else if let Some((_, entry)) = gathered.get(&slot).cloned() {
                proposals.push((slot, entry));
            } else if slot < floor {
                needs_catchup = true;
            } else {
                proposals.push((slot, Entry::Noop));
            }
        }
        if needs_catchup {
            let low_slot = self.emitted_upto;
            for q in self.env.membership().others(self.me()) {
                ctx.send(q, RsmMsg::CatchUp { low_slot });
            }
        }
        // Group commit: one flush covers every inherited/no-op re-proposal.
        let records: Vec<RsmRecord<V>> = proposals
            .iter()
            .map(|(slot, entry)| RsmRecord::Accepted {
                slot: *slot,
                b,
                entry: entry.clone(),
            })
            .collect();
        if !self.persist_group(&records) {
            return;
        }
        for (slot, entry) in announce {
            // Already chosen here: (re)announce so laggards catch up.
            self.track_decide(slot);
            self.broadcast_decide(ctx, slot, entry);
        }
        for (slot, entry) in proposals {
            self.accept_persisted(ctx, slot, entry);
        }
        self.pump(ctx);
    }

    /// Fills free pipeline slots from the pending queue: coalesces up to
    /// `max_batch` queued commands per slot (a singleton stays [`Entry::Cmd`],
    /// the pre-batching wire shape), persists every new `Accepted` record as
    /// a single WAL group, then self-accepts and broadcasts each slot. A
    /// no-op unless this replica is an established leader with both free
    /// pipeline capacity and queued commands.
    fn pump(&mut self, ctx: &mut Ctx<'_, RsmMsg<V>, RsmEvent<V>>) {
        let LeaderState::Led { b, next_slot } = self.state else {
            return;
        };
        let max_batch = self.params.batch.max_batch.max(1);
        let depth = self.params.batch.pipeline_depth.max(1);
        let mut planned: Vec<(u64, Entry<V>)> = Vec::new();
        let mut slot = next_slot;
        while !self.pending.is_empty() && self.inflight.len() + planned.len() < depth {
            let take = self.pending.len().min(max_batch);
            let mut cmds: Vec<V> = self.pending.drain(..take).collect();
            let entry = if cmds.len() == 1 {
                Entry::Cmd(cmds.pop().expect("len checked"))
            } else {
                Entry::Batch(cmds)
            };
            planned.push((slot, entry));
            slot += 1;
        }
        if planned.is_empty() {
            return;
        }
        if P::ENABLED {
            for (_, entry) in &planned {
                self.emit_stage(ctx.now(), entry, CmdStage::BatchSeal);
            }
        }
        // Write-ahead, once: all records of this pump become durable with a
        // single flush before any Accept can leave.
        let records: Vec<RsmRecord<V>> = planned
            .iter()
            .map(|(s, e)| RsmRecord::Accepted {
                slot: *s,
                b,
                entry: e.clone(),
            })
            .collect();
        let flushed_before = if P::ENABLED {
            self.storage.as_ref().map(StorageHandle::flush_stats)
        } else {
            None
        };
        if !self.persist_group(&records) {
            return;
        }
        if P::ENABLED {
            // One WalFsync per pump: the group commit is the unit the disk
            // saw, and its duration is what the fsync-spike detector and the
            // wal_commit lifecycle stage attribute.
            if let (Some(before), Some(store)) = (flushed_before, &self.storage) {
                let micros = store
                    .flush_stats()
                    .total_micros
                    .saturating_sub(before.total_micros);
                self.probe.emit(ProbeEvent::WalFsync {
                    node: self.env.id(),
                    at: ctx.now(),
                    micros,
                    records: records.len() as u64,
                });
            }
            for (_, entry) in &planned {
                self.emit_stage(ctx.now(), entry, CmdStage::WalCommit);
            }
        }
        if let LeaderState::Led { next_slot, .. } = &mut self.state {
            *next_slot = slot;
        }
        for (s, entry) in planned {
            self.accept_persisted(ctx, s, entry);
        }
    }

    /// Self-accepts `entry` at `slot`, broadcasts the `Accept`, and checks
    /// for an (n = 1 or retransmission-fed) instant quorum. The matching
    /// `Accepted` WAL record must already be durable — callers persist
    /// (individually or as a group) *before* this runs, preserving the
    /// write-ahead rule.
    fn accept_persisted(
        &mut self,
        ctx: &mut Ctx<'_, RsmMsg<V>, RsmEvent<V>>,
        slot: u64,
        entry: Entry<V>,
    ) {
        let LeaderState::Led { b, .. } = self.state else {
            return;
        };
        self.accepted.insert(slot, (b, entry.clone()));
        let mut acks = vec![false; self.env.n()];
        acks[self.me().as_usize()] = true;
        self.inflight.insert(
            slot,
            Inflight {
                entry: entry.clone(),
                acks,
            },
        );
        self.emit_stage(ctx.now(), &entry, CmdStage::Propose);
        ctx.broadcast(RsmMsg::Accept { b, slot, entry });
        self.try_choose(ctx, slot);
    }

    fn try_choose(&mut self, ctx: &mut Ctx<'_, RsmMsg<V>, RsmEvent<V>>, slot: u64) {
        let Some(inf) = self.inflight.get(&slot) else {
            return;
        };
        if inf.acks.iter().filter(|a| **a).count() < self.majority() {
            return;
        }
        let entry = inf.entry.clone();
        self.inflight.remove(&slot);
        self.learn(ctx, slot, entry.clone());
        if self.wedged {
            return;
        }
        self.track_decide(slot);
        self.broadcast_decide(ctx, slot, entry);
    }

    fn track_decide(&mut self, slot: u64) {
        let mut acks = vec![false; self.env.n()];
        acks[self.me().as_usize()] = true;
        self.decide_trackers.insert(slot, acks);
    }

    fn broadcast_decide(
        &mut self,
        ctx: &mut Ctx<'_, RsmMsg<V>, RsmEvent<V>>,
        slot: u64,
        entry: Entry<V>,
    ) {
        ctx.broadcast(RsmMsg::Decide { slot, entry });
    }

    fn learn(&mut self, ctx: &mut Ctx<'_, RsmMsg<V>, RsmEvent<V>>, slot: u64, entry: Entry<V>) {
        if slot < self.watermark {
            // Covered by the installed snapshot: already applied (possibly
            // on a peer's behalf), never re-emitted, never re-grown.
            return;
        }
        if !self.chosen.contains_key(&slot) {
            // Write-ahead: the choice must be durable before the Committed
            // output (and any Decide broadcast) can be observed.
            if !self.persist(&RsmRecord::Chosen {
                slot,
                entry: entry.clone(),
            }) {
                return;
            }
            self.emit_stage(ctx.now(), &entry, CmdStage::Decide);
            self.chosen.insert(slot, entry);
            self.probe.emit(ProbeEvent::Decide {
                node: self.me(),
                at: ctx.now(),
                slot,
            });
        }
        self.drain_committed(ctx);
    }

    /// Emits `Committed` for every contiguously chosen slot at the emission
    /// cursor (one event per command; batches unfold in batch order).
    fn drain_committed(&mut self, ctx: &mut Ctx<'_, RsmMsg<V>, RsmEvent<V>>) {
        while let Some(e) = self.chosen.get(&self.emitted_upto) {
            let slot = self.emitted_upto;
            // One Committed event *per command*: a batched slot unfolds into
            // its commands in batch order (same slot index repeated), so
            // downstream appliers never need to know batching exists.
            match e.clone() {
                Entry::Noop => ctx.output(RsmEvent::Committed { slot, cmd: None }),
                Entry::Cmd(v) => ctx.output(RsmEvent::Committed { slot, cmd: Some(v) }),
                Entry::Batch(vs) => {
                    self.probe.emit(ProbeEvent::BatchCommit {
                        node: self.me(),
                        at: ctx.now(),
                        slot,
                        cmds: vs.len() as u64,
                    });
                    for v in vs {
                        ctx.output(RsmEvent::Committed { slot, cmd: Some(v) });
                    }
                }
            }
            self.emitted_upto += 1;
        }
    }

    /// Answers a peer that declared everything below `low_slot` known: plain
    /// `Decide`s when our log still holds the requested range, a snapshot
    /// transfer when it was compacted away. Any node serves this — catch-up
    /// is not a leader privilege, which matters when the old leader (the
    /// only one retransmitting Decides) is itself the process that died.
    fn serve_catchup(
        &mut self,
        ctx: &mut Ctx<'_, RsmMsg<V>, RsmEvent<V>>,
        peer: ProcessId,
        low_slot: u64,
    ) {
        if peer == self.me() {
            return;
        }
        if low_slot < self.watermark {
            self.start_snapshot_transfer(ctx, peer);
            return;
        }
        let decides: Vec<(u64, Entry<V>)> = self
            .chosen
            .range(low_slot..self.emitted_upto.max(low_slot))
            .take(CATCHUP_BURST)
            .map(|(s, e)| (*s, e.clone()))
            .collect();
        for (slot, entry) in decides {
            ctx.send(peer, RsmMsg::Decide { slot, entry });
        }
    }

    /// Begins (or restarts a stalled) chunked snapshot transfer to `peer`
    /// from the latest durable snapshot. A no-op without a loadable
    /// snapshot, or while a transfer to that peer is still making progress.
    fn start_snapshot_transfer(
        &mut self,
        ctx: &mut Ctx<'_, RsmMsg<V>, RsmEvent<V>>,
        peer: ProcessId,
    ) {
        if let Some(out) = self.outgoing_snaps.get(&peer) {
            // Every chunk acked but the peer asks again: its reassembly
            // failed (total-CRC mismatch) or the final ack got lost after a
            // restart — start over. Otherwise let the backoff retransmit.
            if !out.acked.iter().all(|a| *a) {
                return;
            }
            self.outgoing_snaps.remove(&peer);
        }
        let Some(snaps) = &self.snapshots else {
            return;
        };
        let Ok(Some(snap)) = snaps.load() else {
            return;
        };
        let crc = crc32(&snap.data);
        let chunks: Vec<Vec<u8>> = if snap.data.is_empty() {
            vec![Vec::new()]
        } else {
            snap.data
                .chunks(SNAP_CHUNK_BYTES)
                .map(<[u8]>::to_vec)
                .collect()
        };
        let out = OutgoingSnapshot {
            watermark: snap.watermark,
            crc,
            acked: vec![false; chunks.len()],
            chunks,
            attempt: 0,
            cooldown: 0,
        };
        self.send_snapshot_round(ctx, peer, &out);
        self.outgoing_snaps.insert(peer, out);
    }

    /// Sends the offer plus every not-yet-acked chunk of one transfer.
    fn send_snapshot_round(
        &self,
        ctx: &mut Ctx<'_, RsmMsg<V>, RsmEvent<V>>,
        peer: ProcessId,
        out: &OutgoingSnapshot,
    ) {
        let total = out.chunks.len() as u32;
        ctx.send(
            peer,
            RsmMsg::SnapshotOffer {
                watermark: out.watermark,
                chunks: total,
                crc: out.crc,
            },
        );
        for (i, chunk) in out.chunks.iter().enumerate() {
            if out.acked[i] {
                continue;
            }
            ctx.send(
                peer,
                RsmMsg::SnapshotChunk {
                    watermark: out.watermark,
                    index: i as u32,
                    chunks: total,
                    crc: out.crc,
                    chunk_crc: crc32(chunk),
                    data: chunk.clone(),
                },
            );
        }
    }

    /// Retry-timer duty for outgoing transfers: retransmit what the peer has
    /// not acked, spaced by jittered exponential backoff (deterministic —
    /// the jitter hashes `(me, peer, watermark, attempt)`), and abandon the
    /// transfer after [`SNAP_MAX_ATTEMPTS`] rounds.
    fn pump_snapshot_retries(&mut self, ctx: &mut Ctx<'_, RsmMsg<V>, RsmEvent<V>>) {
        let me = self.me().as_usize() as u64;
        let mut abandoned: Vec<ProcessId> = Vec::new();
        let mut rounds: Vec<ProcessId> = Vec::new();
        for (peer, out) in &mut self.outgoing_snaps {
            if out.cooldown > 0 {
                out.cooldown -= 1;
                continue;
            }
            if out.attempt >= SNAP_MAX_ATTEMPTS {
                abandoned.push(*peer);
                continue;
            }
            out.attempt += 1;
            let backoff = 1u32 << out.attempt.min(4);
            let seed = me
                ^ ((peer.as_usize() as u64) << 8)
                ^ out.watermark.rotate_left(17)
                ^ ((u64::from(out.attempt)) << 32);
            let jitter = (mix64(seed) % (u64::from(out.attempt) + 1)) as u32;
            out.cooldown = backoff + jitter;
            rounds.push(*peer);
        }
        for peer in abandoned {
            self.outgoing_snaps.remove(&peer);
        }
        for peer in rounds {
            if let Some(out) = self.outgoing_snaps.get(&peer) {
                let out = out.clone();
                self.send_snapshot_round(ctx, peer, &out);
            }
        }
    }

    /// Registers an announced transfer on the receiver. Returns `false`
    /// when the transfer is stale (already covered locally — acked as
    /// complete so the sender stops) or loses to a further-ahead transfer
    /// already in progress.
    fn note_snapshot_offer(
        &mut self,
        ctx: &mut Ctx<'_, RsmMsg<V>, RsmEvent<V>>,
        from: ProcessId,
        watermark: u64,
        chunks: u32,
        crc: u32,
    ) -> bool {
        if chunks == 0 || chunks as usize > 4096 {
            return false;
        }
        self.known_frontier = self.known_frontier.max(watermark);
        if watermark <= self.emitted_upto {
            ctx.send(
                from,
                RsmMsg::SnapshotAck {
                    watermark,
                    index: u32::MAX,
                },
            );
            return false;
        }
        match &self.incoming_snap {
            Some(inc) if inc.watermark > watermark => false,
            Some(inc) if inc.watermark == watermark => inc.chunks == chunks && inc.crc == crc,
            _ => {
                self.incoming_snap = Some(IncomingSnapshot {
                    watermark,
                    chunks,
                    crc,
                    parts: vec![None; chunks as usize],
                });
                true
            }
        }
    }

    /// Accepts one chunk (dropping it silently on a per-chunk CRC mismatch
    /// so the sender retransmits), acks it, and installs the snapshot once
    /// every part is present.
    #[allow(clippy::too_many_arguments)] // mirrors the wire message's fields
    fn on_snapshot_chunk(
        &mut self,
        ctx: &mut Ctx<'_, RsmMsg<V>, RsmEvent<V>>,
        from: ProcessId,
        watermark: u64,
        index: u32,
        chunks: u32,
        crc: u32,
        chunk_crc: u32,
        data: Vec<u8>,
    ) {
        if crc32(&data) != chunk_crc {
            return;
        }
        // Chunks are self-describing, so a lost offer frame cannot stall
        // the transfer: the first surviving chunk recreates the assembly.
        if !self.note_snapshot_offer(ctx, from, watermark, chunks, crc) {
            return;
        }
        let Some(inc) = &mut self.incoming_snap else {
            return;
        };
        if inc.watermark != watermark || inc.chunks != chunks {
            return;
        }
        let Some(part) = inc.parts.get_mut(index as usize) else {
            return;
        };
        *part = Some(data);
        ctx.send(from, RsmMsg::SnapshotAck { watermark, index });
        if self
            .incoming_snap
            .as_ref()
            .is_some_and(|inc| inc.parts.iter().all(Option::is_some))
        {
            self.install_incoming_snapshot(ctx, from);
        }
    }

    /// Reassembles and installs the completed transfer: verify the total
    /// CRC, make the snapshot durable, compact our own WAL behind it, floor
    /// the in-memory maps, announce [`RsmEvent::SnapshotInstalled`], then
    /// emit whatever became contiguous above the watermark and ask the
    /// sender to resume Decide streaming there.
    fn install_incoming_snapshot(
        &mut self,
        ctx: &mut Ctx<'_, RsmMsg<V>, RsmEvent<V>>,
        from: ProcessId,
    ) {
        let Some(inc) = self.incoming_snap.take() else {
            return;
        };
        let mut data = Vec::new();
        for part in inc.parts {
            data.extend_from_slice(&part.unwrap_or_default());
        }
        if crc32(&data) != inc.crc {
            // Poisoned reassembly: drop it. The gap persists, so the next
            // catch-up round restarts the transfer from scratch (the sender
            // treats a fully-acked-but-unfinished transfer as restartable).
            ctx.send(
                from,
                RsmMsg::CatchUp {
                    low_slot: self.emitted_upto,
                },
            );
            return;
        }
        let watermark = inc.watermark;
        // Durable snapshot BEFORE compacting the WAL below: a crash between
        // the two must find the snapshot. Without a snapshot store the
        // install is memory-only and the WAL is left alone — a crash then
        // just re-runs the transfer (equivalent to crashing earlier).
        if let Some(snaps) = self.snapshots.clone() {
            if snaps
                .install(&Snapshot {
                    watermark,
                    data: data.clone(),
                })
                .is_err()
            {
                self.probe.emit(ProbeEvent::WalWedge {
                    node: self.me(),
                    at: ctx.now(),
                });
                self.wedged = true;
                return;
            }
            self.apply_watermark(watermark);
            if let Some(store) = self.storage.clone() {
                if store.compact_records(&self.live_records()).is_err() {
                    self.probe.emit(ProbeEvent::WalWedge {
                        node: self.me(),
                        at: ctx.now(),
                    });
                    self.wedged = true;
                    return;
                }
            }
        } else {
            self.apply_watermark(watermark);
        }
        self.probe.emit(ProbeEvent::SnapshotInstall {
            node: self.me(),
            at: ctx.now(),
            watermark,
        });
        ctx.output(RsmEvent::SnapshotInstalled {
            watermark,
            state: data,
        });
        self.drain_committed(ctx);
        ctx.send(
            from,
            RsmMsg::SnapshotAck {
                watermark,
                index: u32::MAX,
            },
        );
        ctx.send(
            from,
            RsmMsg::CatchUp {
                low_slot: self.emitted_upto,
            },
        );
    }

    fn on_retry(&mut self, ctx: &mut Ctx<'_, RsmMsg<V>, RsmEvent<V>>) {
        self.pump_snapshot_retries(ctx);
        // Serve peers whose un-acked Decides were compacted away: the
        // snapshot is the only remaining form of those bytes. An offer to a
        // peer that was merely slow to ack is self-terminating (a receiver
        // already past the watermark immediately acks the transfer away).
        if !self.snapshot_debtors.is_empty() {
            let owed: Vec<ProcessId> = std::mem::take(&mut self.snapshot_debtors)
                .into_iter()
                .collect();
            for q in owed {
                self.start_snapshot_transfer(ctx, q);
            }
        }
        // A chosen slot above the emission cursor means a gap below it —
        // slots we may never see by retransmission (their chooser may have
        // compacted and restarted). An overheard frontier above the cursor
        // means the same thing even with nothing local to show for it: the
        // decider of our missing suffix may have crashed and lost its
        // retransmission state. Ask the cluster: peers answer with Decides
        // or a snapshot transfer. Quiet steady state sends nothing.
        if self.incoming_snap.is_none()
            && (self
                .chosen
                .keys()
                .next_back()
                .is_some_and(|s| *s >= self.emitted_upto)
                || self.known_frontier > self.emitted_upto)
        {
            let low_slot = self.emitted_upto;
            for q in self.env.membership().others(self.me()) {
                ctx.send(q, RsmMsg::CatchUp { low_slot });
            }
        }
        // Retransmit decided slots to peers that have not acknowledged.
        let mut done = Vec::new();
        let trackers: Vec<(u64, Vec<bool>)> = self
            .decide_trackers
            .iter()
            .map(|(s, a)| (*s, a.clone()))
            .collect();
        for (slot, acks) in trackers {
            if acks.iter().all(|a| *a) {
                done.push(slot);
                continue;
            }
            let Some(entry) = self.chosen.get(&slot).cloned() else {
                // Defensive: a tracker without its chosen entry can only
                // mean the slot fell below the watermark — the snapshot
                // supersedes it, so convert the tracker into debts.
                let owed: Vec<ProcessId> = self
                    .env
                    .membership()
                    .others(self.me())
                    .filter(|q| !acks[q.as_usize()])
                    .collect();
                self.snapshot_debtors.extend(owed);
                done.push(slot);
                continue;
            };
            for q in self.env.membership().others(self.me()) {
                if !acks[q.as_usize()] {
                    ctx.send(
                        q,
                        RsmMsg::Decide {
                            slot,
                            entry: entry.clone(),
                        },
                    );
                }
            }
        }
        for slot in done {
            self.decide_trackers.remove(&slot);
        }
        if !self.believes_leadership() {
            if !matches!(self.state, LeaderState::Follower) {
                self.abdicate(ctx.now());
            }
            return;
        }
        match &self.state {
            LeaderState::Follower => self.start_prepare(ctx),
            LeaderState::Preparing {
                b,
                from_slot,
                promised_by,
                ..
            } => {
                let (b, from_slot) = (*b, *from_slot);
                let missing: Vec<ProcessId> = self
                    .env
                    .membership()
                    .others(self.me())
                    .filter(|q| !promised_by[q.as_usize()])
                    .collect();
                for q in missing {
                    ctx.send(q, RsmMsg::Prepare { b, from_slot });
                }
            }
            LeaderState::Led { b, .. } => {
                let b = *b;
                let inflight: Vec<(u64, Entry<V>, Vec<bool>)> = self
                    .inflight
                    .iter()
                    .map(|(s, i)| (*s, i.entry.clone(), i.acks.clone()))
                    .collect();
                for (slot, entry, acks) in inflight {
                    for q in self.env.membership().others(self.me()) {
                        if !acks[q.as_usize()] {
                            ctx.send(
                                q,
                                RsmMsg::Accept {
                                    b,
                                    slot,
                                    entry: entry.clone(),
                                },
                            );
                        }
                    }
                }
                // Belt and braces: if capacity freed without an Accepted
                // arriving (e.g. acks were satisfied by retransmissions),
                // keep the pipeline full.
                self.pump(ctx);
                // Lease renewal rides the same cadence: one grant round per
                // retry tick keeps the serving window continuously ahead of
                // `now` while the quorum keeps answering.
                self.lease_tick(ctx, b);
            }
        }
    }

    fn on_rsm_msg(
        &mut self,
        ctx: &mut Ctx<'_, RsmMsg<V>, RsmEvent<V>>,
        from: ProcessId,
        msg: RsmMsg<V>,
    ) {
        match msg {
            RsmMsg::Omega(_) => unreachable!("routed by caller"),
            RsmMsg::Prepare { b, from_slot } => {
                self.highest_seen = self.highest_seen.max(b);
                // Lease holdoff: while a granted lease (or the boot
                // blackout) runs, refuse ballots from anyone but the
                // leaseholder — this is the promise a `LeaseAck` made.
                if self.holdoff_until > ctx.now() && self.holdoff_for != Some(b.leader()) {
                    ctx.send(
                        from,
                        RsmMsg::Nack {
                            b,
                            higher: self.promised,
                        },
                    );
                    return;
                }
                if b >= self.promised {
                    // Write-ahead: the promise must be durable before the
                    // Promise reply can leave.
                    if !self.persist(&RsmRecord::Promised(b)) {
                        return;
                    }
                    self.promised = b;
                    let accepted: Vec<(u64, Ballot, Entry<V>)> = self
                        .accepted
                        .range(from_slot..)
                        .map(|(s, (ab, e))| (*s, *ab, e.clone()))
                        .collect();
                    ctx.send(
                        from,
                        RsmMsg::Promise {
                            b,
                            accepted,
                            low_slot: self.emitted_upto,
                        },
                    );
                } else {
                    ctx.send(
                        from,
                        RsmMsg::Nack {
                            b,
                            higher: self.promised,
                        },
                    );
                }
            }
            RsmMsg::Promise {
                b,
                accepted,
                low_slot,
            } => {
                // Help a lagging promiser catch up on already-chosen slots —
                // by Decides, or by snapshot transfer when our log below its
                // low_slot is compacted away. (The promiser may also be
                // *ahead* of us: empty range, nothing sent.)
                self.serve_catchup(ctx, from, low_slot);
                if let LeaderState::Preparing {
                    b: cur,
                    promised_by,
                    gathered,
                    low_slots,
                    ..
                } = &mut self.state
                {
                    if *cur == b {
                        promised_by[from.as_usize()] = true;
                        low_slots[from.as_usize()] = low_slots[from.as_usize()].max(low_slot);
                        for (slot, ab, entry) in accepted {
                            match gathered.get(&slot) {
                                Some((prev, _)) if *prev >= ab => {}
                                _ => {
                                    gathered.insert(slot, (ab, entry));
                                }
                            }
                        }
                        self.try_assume_leadership(ctx);
                    }
                }
            }
            RsmMsg::Accept { b, slot, entry } => {
                self.highest_seen = self.highest_seen.max(b);
                if b >= self.promised {
                    // Write-ahead: the vote must be durable before the
                    // Accepted reply can leave.
                    if !self.persist(&RsmRecord::Accepted {
                        slot,
                        b,
                        entry: entry.clone(),
                    }) {
                        return;
                    }
                    self.promised = b;
                    self.accepted.insert(slot, (b, entry));
                    ctx.send(from, RsmMsg::Accepted { b, slot });
                } else {
                    ctx.send(
                        from,
                        RsmMsg::Nack {
                            b,
                            higher: self.promised,
                        },
                    );
                }
            }
            RsmMsg::Accepted { b, slot } => {
                if let LeaderState::Led { b: cur, .. } = self.state {
                    if cur == b {
                        if let Some(inf) = self.inflight.get_mut(&slot) {
                            inf.acks[from.as_usize()] = true;
                            self.try_choose(ctx, slot);
                            // A chosen slot frees pipeline capacity: refill
                            // it from the pending queue.
                            self.pump(ctx);
                        }
                    }
                }
            }
            RsmMsg::Nack { b, higher } => {
                self.highest_seen = self.highest_seen.max(higher);
                let ours = match &self.state {
                    LeaderState::Preparing { b: cur, .. } | LeaderState::Led { b: cur, .. } => {
                        *cur == b
                    }
                    LeaderState::Follower => false,
                };
                if ours {
                    self.abdicate(ctx.now());
                }
            }
            RsmMsg::Decide { slot, entry } => {
                self.learn(ctx, slot, entry);
                ctx.send(from, RsmMsg::DecideAck { slot });
            }
            RsmMsg::DecideAck { slot } => {
                if let Some(acks) = self.decide_trackers.get_mut(&slot) {
                    acks[from.as_usize()] = true;
                    if acks.iter().all(|a| *a) {
                        self.decide_trackers.remove(&slot);
                    }
                }
            }
            RsmMsg::CatchUp { low_slot } => {
                // The asker has emitted everything below `low_slot` — that
                // is frontier evidence for *us* too (we may be the laggard).
                self.known_frontier = self.known_frontier.max(low_slot);
                self.serve_catchup(ctx, from, low_slot);
            }
            RsmMsg::SnapshotOffer {
                watermark,
                chunks,
                crc,
            } => {
                self.note_snapshot_offer(ctx, from, watermark, chunks, crc);
            }
            RsmMsg::SnapshotChunk {
                watermark,
                index,
                chunks,
                crc,
                chunk_crc,
                data,
            } => {
                self.on_snapshot_chunk(ctx, from, watermark, index, chunks, crc, chunk_crc, data);
            }
            RsmMsg::SnapshotAck { watermark, index } => {
                if index == u32::MAX {
                    if self
                        .outgoing_snaps
                        .get(&from)
                        .is_some_and(|o| o.watermark <= watermark)
                    {
                        self.outgoing_snaps.remove(&from);
                    }
                } else if let Some(out) = self.outgoing_snaps.get_mut(&from) {
                    if out.watermark == watermark {
                        if let Some(acked) = out.acked.get_mut(index as usize) {
                            *acked = true;
                        }
                        // Progress proves the link: reset the backoff so the
                        // remainder retransmits promptly if needed.
                        out.attempt = 0;
                        out.cooldown = 0;
                    }
                }
            }
            RsmMsg::LeaseGrant { b, seq } => {
                self.highest_seen = self.highest_seen.max(b);
                if b >= self.promised {
                    // A grant that outranks the ballot this replica leads
                    // (or prepares) under proves a newer leader exists:
                    // depose ourselves *before* promising the holdoff.
                    // Otherwise a stale-but-still-Led leader would both owe
                    // the holdoff to the new holder and keep renewing its
                    // own lease on every retry tick, silently replacing
                    // that promise with a self-grant.
                    if let LeaderState::Preparing { b: cur, .. } | LeaderState::Led { b: cur, .. } =
                        &self.state
                    {
                        if b > *cur {
                            self.abdicate(ctx.now());
                        }
                    }
                    let until = ctx.now() + self.lease_grant_margin();
                    self.holdoff_until = self.holdoff_until.max(until);
                    self.holdoff_for = Some(b.leader());
                    self.probe.emit(ProbeEvent::LeaseGranted {
                        node: self.me(),
                        at: ctx.now(),
                        shard: self.probe_shard,
                        seq,
                        holder: b.leader(),
                    });
                    ctx.send(from, RsmMsg::LeaseAck { b, seq });
                } else {
                    // A deposed leader renewing its lease learns here that
                    // a higher ballot exists and abdicates on the Nack.
                    ctx.send(
                        from,
                        RsmMsg::Nack {
                            b,
                            higher: self.promised,
                        },
                    );
                }
            }
            RsmMsg::LeaseAck { b, seq } => {
                if let LeaderState::Led { b: cur, .. } = self.state {
                    if cur == b && seq == self.lease_seq {
                        self.lease_acks[from.as_usize()] = true;
                        self.try_activate_lease(ctx.now());
                    }
                }
            }
            RsmMsg::ReadIndex { req } => {
                // Answer only while holding the lease: without it, this
                // replica's committed length could trail a newer leader's
                // decisions, and the index would certify a stale read.
                if self.lease_read_allowed(ctx.now()) {
                    ctx.send(
                        from,
                        RsmMsg::ReadIndexReply {
                            req,
                            index: self.emitted_upto,
                        },
                    );
                }
            }
            RsmMsg::ReadIndexReply { req, index } => {
                ctx.output(RsmEvent::ReadIndexAt { req, index });
            }
        }
    }
}

impl<V, P> Sm for ReplicatedLog<V, P>
where
    V: Clone + Eq + fmt::Debug + Send + Wire + LifecycleId + 'static,
    P: Probe,
{
    type Msg = RsmMsg<V>;
    type Output = RsmEvent<V>;
    type Request = V;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Output>) {
        self.clock = ctx.now();
        if self.wedged {
            return;
        }
        ctx.set_timer(RETRY_TIMER, self.params.retry);
        // Boot blackout: lease promises are volatile, so a restarted
        // granter no longer remembers a holdoff it may owe. Refusing *all*
        // elections for one full lease + skew after boot conservatively
        // covers any lease a previous incarnation granted — and, applied
        // unconditionally, also guarantees a restarted *leader* can never
        // resume serving an expired lease (it re-elects and re-acquires
        // from scratch). Costs one lease worth of election delay at boot.
        if self.params.lease.enabled {
            let blackout = ctx.now() + self.params.lease.duration + self.params.lease.skew;
            self.holdoff_until = self.holdoff_until.max(blackout);
            self.holdoff_for = None;
        }
        // A restarted replica proactively asks where the log has moved: the
        // cluster may have chosen (and compacted) a long prefix while it was
        // down, and nobody may be retransmitting that history anymore.
        if self.recovered {
            ctx.broadcast(RsmMsg::CatchUp {
                low_slot: self.emitted_upto,
            });
        }
        // In external-leadership mode the embedded Ω never runs: the shared
        // per-node detector injects leadership via `set_leader`.
        if !self.external {
            self.drive_omega(ctx, |omega, octx| omega.on_start(octx));
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Output>,
        from: ProcessId,
        msg: Self::Msg,
    ) {
        self.clock = ctx.now();
        if self.wedged {
            return;
        }
        match msg {
            RsmMsg::Omega(m) => {
                // Ω traffic is not ours in external mode — the shared
                // per-node detector owns it.
                if !self.external {
                    self.drive_omega(ctx, |omega, octx| omega.on_message(octx, from, m));
                }
            }
            other => self.on_rsm_msg(ctx, from, other),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Output>, timer: TimerId) {
        self.clock = ctx.now();
        if self.wedged {
            return;
        }
        if timer.0 >= OMEGA_TIMER_BASE {
            if self.external {
                return;
            }
            let inner = TimerId(timer.0 - OMEGA_TIMER_BASE);
            self.drive_omega(ctx, |omega, octx| omega.on_timer(octx, inner));
        } else if timer == RETRY_TIMER {
            self.on_retry(ctx);
            ctx.set_timer(RETRY_TIMER, self.params.retry);
        } else {
            debug_assert!(false, "unexpected timer {timer}");
        }
    }

    /// Queues a client command; an established leader with free pipeline
    /// capacity proposes immediately (coalescing any queued commands into a
    /// batch of up to `batch.max_batch`), otherwise the command waits — for
    /// leadership, or for a pipeline slot to free up (clients of a real
    /// deployment would resubmit to the actual leader).
    fn on_request(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Output>, req: V) {
        self.clock = ctx.now();
        if self.wedged {
            return;
        }
        self.pending.push_back(req);
        self.pump(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lls_primitives::Instant;

    type Log = ReplicatedLog<u64>;

    struct Harness {
        env: Env,
        sm: Log,
        fx: Effects<RsmMsg<u64>, RsmEvent<u64>>,
    }

    impl Harness {
        fn new(me: u32, n: usize) -> Self {
            Harness::with_params(me, n, ConsensusParams::default())
        }

        fn with_params(me: u32, n: usize, params: ConsensusParams) -> Self {
            let env = Env::new(ProcessId(me), n);
            let sm = ReplicatedLog::new(&env, params);
            Harness {
                env,
                sm,
                fx: Effects::new(),
            }
        }

        fn start(&mut self) -> Effects<RsmMsg<u64>, RsmEvent<u64>> {
            let mut ctx = Ctx::new(&self.env, Instant::ZERO, &mut self.fx);
            self.sm.on_start(&mut ctx);
            self.fx.take()
        }

        fn deliver(&mut self, from: u32, msg: RsmMsg<u64>) -> Effects<RsmMsg<u64>, RsmEvent<u64>> {
            let mut ctx = Ctx::new(&self.env, Instant::ZERO, &mut self.fx);
            self.sm.on_message(&mut ctx, ProcessId(from), msg);
            self.fx.take()
        }

        fn request(&mut self, v: u64) -> Effects<RsmMsg<u64>, RsmEvent<u64>> {
            let mut ctx = Ctx::new(&self.env, Instant::ZERO, &mut self.fx);
            self.sm.on_request(&mut ctx, v);
            self.fx.take()
        }

        /// Like [`Harness::deliver`], at an explicit wall — the lease tests
        /// are all about *when* things happen.
        fn deliver_at(
            &mut self,
            now: Instant,
            from: u32,
            msg: RsmMsg<u64>,
        ) -> Effects<RsmMsg<u64>, RsmEvent<u64>> {
            let mut ctx = Ctx::new(&self.env, now, &mut self.fx);
            self.sm.on_message(&mut ctx, ProcessId(from), msg);
            self.fx.take()
        }

        /// Fires the retry timer at an explicit wall.
        fn retry_at(&mut self, now: Instant) -> Effects<RsmMsg<u64>, RsmEvent<u64>> {
            let mut ctx = Ctx::new(&self.env, now, &mut self.fx);
            self.sm.on_timer(&mut ctx, RETRY_TIMER);
            self.fx.take()
        }
    }

    fn b(round: u64, leader: u32) -> Ballot {
        Ballot::new(round, ProcessId(leader))
    }

    /// Drives p0 (initial Ω leader) to the Led state in a 3-replica group.
    fn led_leader() -> Harness {
        led_leader_with(ConsensusParams::default())
    }

    /// Like [`led_leader`], with explicit parameters (batching knobs).
    fn led_leader_with(params: ConsensusParams) -> Harness {
        let mut h = Harness::with_params(0, 3, params);
        h.start();
        h.deliver(
            1,
            RsmMsg::Promise {
                b: b(1, 0),
                accepted: vec![],
                low_slot: 0,
            },
        );
        assert!(h.sm.is_established_leader());
        h
    }

    /// Parameters with batching and a shallow pipeline, for throughput-path
    /// tests.
    fn batched_params(max_batch: usize, pipeline_depth: usize) -> ConsensusParams {
        ConsensusParams {
            batch: omega::BatchParams {
                max_batch,
                pipeline_depth,
            },
            ..ConsensusParams::default()
        }
    }

    #[test]
    fn externally_led_log_is_silent_until_leadership_is_injected() {
        let env = Env::new(ProcessId(0), 3);
        let mut sm: Log = ReplicatedLog::new_externally_led(&env, ConsensusParams::default());
        assert!(sm.is_externally_led());
        let mut fx: Effects<RsmMsg<u64>, RsmEvent<u64>> = Effects::new();
        sm.on_start(&mut Ctx::new(&env, Instant::ZERO, &mut fx));
        let out = fx.take();
        assert!(
            out.sends.is_empty(),
            "no Ω heartbeats, no prepares: {:?}",
            out.sends
        );
        // Only the retry timer is armed — no Ω timers.
        assert!(out
            .timers
            .iter()
            .all(|t| matches!(t, TimerCmd::Set { timer, .. } if *timer == RETRY_TIMER)));

        // Injecting our own id starts phase 1 exactly like an Ω output.
        let mut ctx = Ctx::new(&env, Instant::ZERO, &mut fx);
        sm.set_leader(&mut ctx, ProcessId(0));
        let out = fx.take();
        assert!(out.outputs.contains(&RsmEvent::Leader(ProcessId(0))));
        assert_eq!(
            out.sends
                .iter()
                .filter(|s| matches!(s.msg, RsmMsg::Prepare { .. }))
                .count(),
            2
        );
        // Re-injecting the same leader is a no-op.
        let mut ctx = Ctx::new(&env, Instant::ZERO, &mut fx);
        sm.set_leader(&mut ctx, ProcessId(0));
        assert!(fx.take().outputs.is_empty());

        // Losing leadership abdicates.
        let mut ctx = Ctx::new(&env, Instant::ZERO, &mut fx);
        sm.set_leader(&mut ctx, ProcessId(2));
        let out = fx.take();
        assert!(out.outputs.contains(&RsmEvent::Leader(ProcessId(2))));
        assert!(!sm.is_established_leader());
    }

    #[test]
    fn externally_led_log_drops_omega_messages_and_timers() {
        let env = Env::new(ProcessId(1), 3);
        let mut sm: Log = ReplicatedLog::new_externally_led(&env, ConsensusParams::default());
        let mut fx: Effects<RsmMsg<u64>, RsmEvent<u64>> = Effects::new();
        sm.on_start(&mut Ctx::new(&env, Instant::ZERO, &mut fx));
        fx.take();
        let counter_before = sm.omega().own_counter();
        let mut ctx = Ctx::new(&env, Instant::ZERO, &mut fx);
        sm.on_message(
            &mut ctx,
            ProcessId(0),
            RsmMsg::Omega(omega::OmegaMsg::Alive { counter: 9 }),
        );
        let out = fx.take();
        assert!(out.sends.is_empty() && out.outputs.is_empty());
        let mut ctx = Ctx::new(&env, Instant::ZERO, &mut fx);
        sm.on_timer(&mut ctx, TimerId(OMEGA_TIMER_BASE));
        let out = fx.take();
        assert!(out.sends.is_empty() && out.outputs.is_empty());
        assert_eq!(sm.omega().own_counter(), counter_before);
    }

    #[test]
    fn leader_establishes_ballot_with_one_prepare() {
        let mut h = Harness::new(0, 3);
        let fx = h.start();
        let prepares = fx
            .sends
            .iter()
            .filter(|s| matches!(s.msg, RsmMsg::Prepare { from_slot: 0, .. }))
            .count();
        assert_eq!(prepares, 2);
        let _ = led_leader();
    }

    #[test]
    fn steady_state_commits_in_one_round_trip() {
        let mut h = led_leader();
        let fx = h.request(7);
        // Phase 1 is NOT re-run: only Accepts go out.
        assert!(fx
            .sends
            .iter()
            .all(|s| matches!(s.msg, RsmMsg::Accept { slot: 0, .. })));
        assert_eq!(fx.sends.len(), 2);
        // One Accepted (plus self) = majority: commit + decide broadcast.
        let fx = h.deliver(
            1,
            RsmMsg::Accepted {
                b: b(1, 0),
                slot: 0,
            },
        );
        assert!(fx.outputs.contains(&RsmEvent::Committed {
            slot: 0,
            cmd: Some(7)
        }));
        assert_eq!(
            fx.sends
                .iter()
                .filter(|s| matches!(s.msg, RsmMsg::Decide { slot: 0, .. }))
                .count(),
            2
        );
        assert_eq!(h.sm.committed_len(), 1);
    }

    #[test]
    fn commits_are_emitted_in_slot_order_despite_reordering() {
        let mut h = Harness::new(2, 3);
        h.start();
        // Decide for slot 1 arrives before slot 0 (links are not FIFO).
        let fx = h.deliver(
            0,
            RsmMsg::Decide {
                slot: 1,
                entry: Entry::Cmd(11),
            },
        );
        assert!(fx
            .outputs
            .iter()
            .all(|o| !matches!(o, RsmEvent::Committed { .. })));
        let fx = h.deliver(
            0,
            RsmMsg::Decide {
                slot: 0,
                entry: Entry::Cmd(10),
            },
        );
        let committed: Vec<_> = fx
            .outputs
            .iter()
            .filter_map(|o| match o {
                RsmEvent::Committed { slot, cmd } => Some((*slot, *cmd)),
                _ => None,
            })
            .collect();
        assert_eq!(committed, vec![(0, Some(10)), (1, Some(11))]);
    }

    #[test]
    fn new_leader_inherits_accepted_entries_and_fills_gaps() {
        let mut h = Harness::new(0, 5);
        h.start();
        // Two promises arrive; one reveals an accepted entry at slot 1 only
        // (slot 0 is a gap the new leader must fill with a no-op).
        h.deliver(
            1,
            RsmMsg::Promise {
                b: b(1, 0),
                accepted: vec![(1, b(0, 4), Entry::Cmd(99))],
                low_slot: 0,
            },
        );
        let fx = h.deliver(
            2,
            RsmMsg::Promise {
                b: b(1, 0),
                accepted: vec![],
                low_slot: 0,
            },
        );
        assert!(h.sm.is_established_leader());
        let accepts: Vec<(u64, Entry<u64>)> = fx
            .sends
            .iter()
            .filter_map(|s| match &s.msg {
                RsmMsg::Accept { slot, entry, .. } => Some((*slot, entry.clone())),
                _ => None,
            })
            .collect();
        assert!(
            accepts.contains(&(0, Entry::Noop)),
            "gap must be filled: {accepts:?}"
        );
        assert!(
            accepts.contains(&(1, Entry::Cmd(99))),
            "inherited entry must be re-proposed"
        );
    }

    #[test]
    fn acceptor_reveals_suffix_on_prepare() {
        let mut h = Harness::new(1, 3);
        h.start();
        h.deliver(
            0,
            RsmMsg::Accept {
                b: b(1, 0),
                slot: 0,
                entry: Entry::Cmd(5),
            },
        );
        h.deliver(
            0,
            RsmMsg::Accept {
                b: b(1, 0),
                slot: 3,
                entry: Entry::Cmd(8),
            },
        );
        let fx = h.deliver(
            2,
            RsmMsg::Prepare {
                b: b(2, 2),
                from_slot: 2,
            },
        );
        let promise = fx
            .sends
            .iter()
            .find_map(|s| match &s.msg {
                RsmMsg::Promise { accepted, .. } => Some(accepted.clone()),
                _ => None,
            })
            .expect("must promise the higher ballot");
        // Only slots ≥ from_slot are revealed.
        assert_eq!(promise, vec![(3, b(1, 0), Entry::Cmd(8))]);
    }

    #[test]
    fn follower_queues_requests_until_leadership() {
        let mut h = Harness::new(1, 3);
        h.start();
        let fx = h.request(42);
        assert!(fx.sends.is_empty());
        assert_eq!(h.sm.pending_len(), 1);
    }

    #[test]
    fn stale_ballot_accept_is_nacked() {
        let mut h = Harness::new(1, 3);
        h.start();
        h.deliver(
            2,
            RsmMsg::Prepare {
                b: b(5, 2),
                from_slot: 0,
            },
        );
        let fx = h.deliver(
            0,
            RsmMsg::Accept {
                b: b(1, 0),
                slot: 0,
                entry: Entry::Cmd(1),
            },
        );
        assert!(fx
            .sends
            .iter()
            .any(|s| matches!(s.msg, RsmMsg::Nack { higher, .. } if higher == b(5, 2))));
    }

    #[test]
    fn nack_abdicates_leadership() {
        let mut h = led_leader();
        h.request(7);
        h.deliver(
            2,
            RsmMsg::Nack {
                b: b(1, 0),
                higher: b(4, 2),
            },
        );
        assert!(!h.sm.is_established_leader());
        assert_eq!(
            h.sm.inflight.len(),
            0,
            "inflight must be dropped on abdication"
        );
    }

    #[test]
    fn promise_triggers_catchup_decides_for_lagging_peer() {
        let mut h = led_leader();
        h.request(7);
        h.deliver(
            1,
            RsmMsg::Accepted {
                b: b(1, 0),
                slot: 0,
            },
        );
        assert_eq!(h.sm.committed_len(), 1);
        // A new prepare from us after re-election would carry catch-up; here
        // simulate a late promise from p2 with low_slot 0.
        let fx = h.deliver(
            2,
            RsmMsg::Promise {
                b: b(1, 0),
                accepted: vec![],
                low_slot: 0,
            },
        );
        assert!(fx
            .sends
            .iter()
            .any(|s| s.to == ProcessId(2) && matches!(s.msg, RsmMsg::Decide { slot: 0, .. })));
    }

    #[test]
    fn promise_from_a_peer_ahead_of_us_is_harmless() {
        // Regression: the catch-up range must not invert when the promiser
        // has committed further than the (new) leader.
        let mut h = Harness::new(0, 3);
        h.start();
        let fx = h.deliver(
            1,
            RsmMsg::Promise {
                b: b(1, 0),
                accepted: vec![],
                low_slot: 10, // p1 is way ahead
            },
        );
        assert!(h.sm.is_established_leader());
        assert!(!fx
            .sends
            .iter()
            .any(|s| matches!(s.msg, RsmMsg::Decide { .. })));
    }

    #[test]
    fn decide_ack_completes_tracker() {
        let mut h = led_leader();
        h.request(7);
        h.deliver(
            1,
            RsmMsg::Accepted {
                b: b(1, 0),
                slot: 0,
            },
        );
        assert!(h.sm.decide_trackers.contains_key(&0));
        h.deliver(1, RsmMsg::DecideAck { slot: 0 });
        h.deliver(2, RsmMsg::DecideAck { slot: 0 });
        assert!(!h.sm.decide_trackers.contains_key(&0));
    }

    #[test]
    fn pipeline_depth_caps_inflight_slots() {
        let mut h = led_leader_with(batched_params(1, 2));
        for v in 0..5 {
            h.request(v);
        }
        assert_eq!(h.sm.inflight_len(), 2, "pipeline must cap at depth");
        assert_eq!(h.sm.pending_len(), 3, "overflow queues locally");
        // Choosing slot 0 frees capacity; the pump refills to depth.
        let fx = h.deliver(
            1,
            RsmMsg::Accepted {
                b: b(1, 0),
                slot: 0,
            },
        );
        assert_eq!(h.sm.inflight_len(), 2);
        assert_eq!(h.sm.pending_len(), 2);
        assert!(fx
            .sends
            .iter()
            .any(|s| matches!(s.msg, RsmMsg::Accept { slot: 2, .. })));
    }

    #[test]
    fn queued_commands_coalesce_into_one_batch_slot() {
        // Depth 1: the first command occupies the pipeline, the next three
        // queue up and must ride out together in a single batched slot.
        let mut h = led_leader_with(batched_params(8, 1));
        h.request(10);
        for v in [11, 12, 13] {
            let fx = h.request(v);
            assert!(fx.sends.is_empty(), "pipeline full: nothing may leave");
        }
        let fx = h.deliver(
            1,
            RsmMsg::Accepted {
                b: b(1, 0),
                slot: 0,
            },
        );
        let batched: Vec<Entry<u64>> = fx
            .sends
            .iter()
            .filter_map(|s| match &s.msg {
                RsmMsg::Accept { slot: 1, entry, .. } => Some(entry.clone()),
                _ => None,
            })
            .collect();
        assert!(
            batched.iter().all(|e| *e == Entry::Batch(vec![11, 12, 13])),
            "queued commands must coalesce: {batched:?}"
        );
        assert_eq!(batched.len(), 2, "one Accept per peer");
        assert_eq!(h.sm.pending_len(), 0);
    }

    #[test]
    fn batched_slot_commits_one_event_per_command_in_order() {
        let mut h = led_leader_with(batched_params(8, 1));
        h.request(10);
        for v in [11, 12, 13] {
            h.request(v);
        }
        h.deliver(
            1,
            RsmMsg::Accepted {
                b: b(1, 0),
                slot: 0,
            },
        );
        let fx = h.deliver(
            1,
            RsmMsg::Accepted {
                b: b(1, 0),
                slot: 1,
            },
        );
        let committed: Vec<(u64, Option<u64>)> = fx
            .outputs
            .iter()
            .filter_map(|o| match o {
                RsmEvent::Committed { slot, cmd } => Some((*slot, *cmd)),
                _ => None,
            })
            .collect();
        assert_eq!(
            committed,
            vec![(1, Some(11)), (1, Some(12)), (1, Some(13))],
            "a batch unfolds into per-command commits at its slot"
        );
        assert_eq!(
            h.sm.committed_commands().copied().collect::<Vec<_>>(),
            vec![10, 11, 12, 13]
        );
        assert_eq!(h.sm.committed_len(), 2, "two slots, four commands");
    }

    #[test]
    fn singleton_batch_stays_a_plain_cmd_on_the_wire() {
        // max_batch > 1 with exactly one queued command must not change the
        // wire shape: peers running older assumptions see Entry::Cmd.
        let mut h = led_leader_with(batched_params(8, 4));
        let fx = h.request(7);
        assert!(fx.sends.iter().all(|s| matches!(
            &s.msg,
            RsmMsg::Accept {
                slot: 0,
                entry: Entry::Cmd(7),
                ..
            }
        )));
    }

    #[test]
    fn learner_unfolds_a_batched_decide_from_the_leader() {
        // A non-leader replica receiving Decide{Batch} emits the same
        // per-command commit stream as the leader did.
        let mut h = Harness::new(2, 3);
        h.start();
        let fx = h.deliver(
            0,
            RsmMsg::Decide {
                slot: 0,
                entry: Entry::Batch(vec![5, 6]),
            },
        );
        let committed: Vec<(u64, Option<u64>)> = fx
            .outputs
            .iter()
            .filter_map(|o| match o {
                RsmEvent::Committed { slot, cmd } => Some((*slot, *cmd)),
                _ => None,
            })
            .collect();
        assert_eq!(committed, vec![(0, Some(5)), (0, Some(6))]);
        assert_eq!(
            h.sm.chosen_entries().get(&0),
            Some(&Entry::Batch(vec![5, 6])),
            "the lossless view keeps the batch intact"
        );
        assert_eq!(
            h.sm.chosen_log().get(&0),
            Some(&None),
            "the single-command view maps batches to None"
        );
    }

    #[test]
    fn batched_slots_survive_a_crash_restart() {
        use lls_primitives::StorageHandle;
        let env = Env::new(ProcessId(1), 3);
        let store = StorageHandle::in_memory();
        let mut fx: Effects<RsmMsg<u64>, RsmEvent<u64>> = Effects::new();
        {
            let mut sm: Log =
                ReplicatedLog::with_storage(&env, batched_params(8, 4), store.clone()).unwrap();
            let mut ctx = Ctx::new(&env, Instant::ZERO, &mut fx);
            sm.on_message(
                &mut ctx,
                ProcessId(0),
                RsmMsg::Decide {
                    slot: 0,
                    entry: Entry::Batch(vec![1, 2, 3]),
                },
            );
            fx.take();
            // Crash.
        }
        let sm2: Log = ReplicatedLog::with_storage(&env, batched_params(8, 4), store).unwrap();
        assert_eq!(
            sm2.chosen(0),
            Some(&Entry::Batch(vec![1, 2, 3])),
            "a chosen batch must survive the crash whole"
        );
        assert_eq!(
            sm2.committed_commands().copied().collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn restart_from_wal_preserves_log_and_rejoins_quietly() {
        use lls_primitives::StorageHandle;
        let env = Env::new(ProcessId(1), 3);
        let store = StorageHandle::in_memory();
        let mut fx: Effects<RsmMsg<u64>, RsmEvent<u64>> = Effects::new();
        {
            let mut sm: Log =
                ReplicatedLog::with_storage(&env, ConsensusParams::default(), store.clone())
                    .unwrap();
            let mut ctx = Ctx::new(&env, Instant::ZERO, &mut fx);
            sm.on_message(
                &mut ctx,
                ProcessId(0),
                RsmMsg::Prepare {
                    b: b(2, 0),
                    from_slot: 0,
                },
            );
            fx.take();
            let mut ctx = Ctx::new(&env, Instant::ZERO, &mut fx);
            sm.on_message(
                &mut ctx,
                ProcessId(0),
                RsmMsg::Accept {
                    b: b(2, 0),
                    slot: 1,
                    entry: Entry::Cmd(8),
                },
            );
            fx.take();
            let mut ctx = Ctx::new(&env, Instant::ZERO, &mut fx);
            sm.on_message(
                &mut ctx,
                ProcessId(0),
                RsmMsg::Decide {
                    slot: 0,
                    entry: Entry::Cmd(5),
                },
            );
            let out = fx.take();
            assert!(out.outputs.contains(&RsmEvent::Committed {
                slot: 0,
                cmd: Some(5)
            }));
            // Crash: the in-memory replica is dropped, only the WAL survives.
        }
        let mut sm2: Log =
            ReplicatedLog::with_storage(&env, ConsensusParams::default(), store).unwrap();
        assert_eq!(sm2.promised, b(2, 0), "promise must survive the crash");
        assert_eq!(
            sm2.chosen(0),
            Some(&Entry::Cmd(5)),
            "chosen slot must survive the crash"
        );
        assert_eq!(
            sm2.committed_len(),
            1,
            "recovered prefix is advanced past without re-emitting"
        );
        assert_eq!(
            sm2.omega().own_counter(),
            1,
            "incarnation bump: recovered counter 0 + 1"
        );
        // A higher-ballot Prepare reveals the pre-crash accepted suffix.
        let mut ctx = Ctx::new(&env, Instant::ZERO, &mut fx);
        sm2.on_message(
            &mut ctx,
            ProcessId(2),
            RsmMsg::Prepare {
                b: b(4, 2),
                from_slot: 0,
            },
        );
        let out = fx.take();
        let revealed = out
            .sends
            .iter()
            .find_map(|s| match &s.msg {
                RsmMsg::Promise { accepted, .. } => Some(accepted.clone()),
                _ => None,
            })
            .expect("restarted acceptor must promise the higher ballot");
        assert!(
            revealed.contains(&(1, b(2, 0), Entry::Cmd(8))),
            "pre-crash accepted entry must be revealed: {revealed:?}"
        );
        // A later Decide for slot 1 commits only slot 1 — slot 0 is not
        // re-emitted after recovery.
        let mut ctx = Ctx::new(&env, Instant::ZERO, &mut fx);
        sm2.on_message(
            &mut ctx,
            ProcessId(0),
            RsmMsg::Decide {
                slot: 1,
                entry: Entry::Cmd(8),
            },
        );
        let out = fx.take();
        let committed: Vec<u64> = out
            .outputs
            .iter()
            .filter_map(|o| match o {
                RsmEvent::Committed { slot, .. } => Some(*slot),
                _ => None,
            })
            .collect();
        assert_eq!(committed, vec![1]);
    }

    /// Decides `slots` commands (value = slot) on `sm` by direct Decide
    /// delivery, oldest first.
    fn decide_prefix(env: &Env, sm: &mut Log, slots: u64) {
        let mut fx: Effects<RsmMsg<u64>, RsmEvent<u64>> = Effects::new();
        for slot in 0..slots {
            let mut ctx = Ctx::new(env, Instant::ZERO, &mut fx);
            sm.on_message(
                &mut ctx,
                ProcessId(0),
                RsmMsg::Decide {
                    slot,
                    entry: Entry::Cmd(slot),
                },
            );
            fx.take();
        }
    }

    #[test]
    fn compaction_prunes_the_wal_and_recovery_starts_from_the_snapshot() {
        use lls_primitives::{SnapshotHandle, StorageHandle};
        let env = Env::new(ProcessId(1), 3);
        let store = StorageHandle::in_memory();
        let snaps = SnapshotHandle::in_memory();
        {
            let mut sm: Log = ReplicatedLog::with_storage_and_snapshots(
                &env,
                ConsensusParams::default(),
                store.clone(),
                snaps.clone(),
            )
            .unwrap();
            decide_prefix(&env, &mut sm, 10);
            let before = sm.wal_stats().live_bytes;
            assert!(sm.compact(8, vec![0xAB; 4]).unwrap(), "compaction runs");
            assert_eq!(sm.watermark(), 8);
            assert!(
                sm.wal_stats().live_bytes < before,
                "live bytes shrink: {} -> {}",
                before,
                sm.wal_stats().live_bytes
            );
            // Re-compacting at a non-advancing watermark declines.
            assert!(!sm.compact(8, vec![]).unwrap());
            // Crash.
        }
        let sm2: Log = ReplicatedLog::with_storage_and_snapshots(
            &env,
            ConsensusParams::default(),
            store,
            snaps,
        )
        .unwrap();
        assert_eq!(sm2.watermark(), 8);
        let snap = sm2.recovered_snapshot().expect("snapshot recovered");
        assert_eq!((snap.watermark, snap.data.clone()), (8, vec![0xAB; 4]));
        assert_eq!(
            sm2.committed_len(),
            10,
            "snapshot watermark + replayed WAL tail"
        );
        assert_eq!(
            sm2.committed_commands_from(sm2.watermark())
                .copied()
                .collect::<Vec<_>>(),
            vec![8, 9],
            "only the post-snapshot tail replays"
        );
    }

    #[test]
    fn compacted_acceptor_still_reveals_its_live_suffix_and_low_slot() {
        use lls_primitives::{SnapshotHandle, StorageHandle};
        let env = Env::new(ProcessId(1), 3);
        let mut sm: Log = ReplicatedLog::with_storage_and_snapshots(
            &env,
            ConsensusParams::default(),
            StorageHandle::in_memory(),
            SnapshotHandle::in_memory(),
        )
        .unwrap();
        let mut fx: Effects<RsmMsg<u64>, RsmEvent<u64>> = Effects::new();
        decide_prefix(&env, &mut sm, 5);
        // An accepted-but-undecided entry above the prefix.
        let mut ctx = Ctx::new(&env, Instant::ZERO, &mut fx);
        sm.on_message(
            &mut ctx,
            ProcessId(0),
            RsmMsg::Accept {
                b: b(1, 0),
                slot: 6,
                entry: Entry::Cmd(60),
            },
        );
        fx.take();
        sm.compact(5, vec![1]).unwrap();
        // A higher-ballot Prepare from scratch: the promise must carry the
        // compaction horizon as low_slot and still reveal the live suffix.
        let mut ctx = Ctx::new(&env, Instant::ZERO, &mut fx);
        sm.on_message(
            &mut ctx,
            ProcessId(2),
            RsmMsg::Prepare {
                b: b(9, 2),
                from_slot: 0,
            },
        );
        let out = fx.take();
        let (low_slot, accepted) = out
            .sends
            .iter()
            .find_map(|s| match &s.msg {
                RsmMsg::Promise {
                    low_slot, accepted, ..
                } => Some((*low_slot, accepted.clone())),
                _ => None,
            })
            .expect("acceptor promises");
        assert_eq!(low_slot, 5, "low_slot reports the compacted watermark");
        assert!(
            accepted.contains(&(6, b(1, 0), Entry::Cmd(60))),
            "the live accepted suffix survives compaction: {accepted:?}"
        );
    }

    #[test]
    fn new_leader_floor_never_proposes_below_a_promised_low_slot() {
        // p0 prepares; p1's promise reports low_slot 4 (its slots 0..4 are
        // compacted away). The new leader must not Noop-fill below 4.
        let mut h = Harness::new(0, 3);
        h.start();
        let fx = h.deliver(
            1,
            RsmMsg::Promise {
                b: b(1, 0),
                accepted: vec![(5, b(1, 1), Entry::Cmd(50))],
                low_slot: 4,
            },
        );
        assert!(h.sm.is_established_leader());
        let proposed: Vec<u64> = fx
            .sends
            .iter()
            .filter_map(|s| match &s.msg {
                RsmMsg::Accept { slot, .. } => Some(*slot),
                _ => None,
            })
            .collect();
        assert!(
            proposed.iter().all(|slot| *slot >= 4),
            "no proposal below the floor: {proposed:?}"
        );
        assert!(
            proposed.contains(&5),
            "the revealed suffix is re-proposed: {proposed:?}"
        );
        // The leader asked the compacted peer nothing, but it *did* ask the
        // cluster to backfill its own gap below the floor.
        assert!(
            fx.sends
                .iter()
                .any(|s| matches!(s.msg, RsmMsg::CatchUp { .. })),
            "leader requests catch-up for slots below its floor"
        );
    }

    #[test]
    fn snapshot_transfer_catches_up_a_far_behind_follower() {
        use lls_primitives::{SnapshotHandle, StorageHandle};
        let env0 = Env::new(ProcessId(0), 3);
        // The sender: a compacted leader-side replica with a snapshot.
        let mut sender: Log = ReplicatedLog::with_storage_and_snapshots(
            &env0,
            ConsensusParams::default(),
            StorageHandle::in_memory(),
            SnapshotHandle::in_memory(),
        )
        .unwrap();
        decide_prefix(&env0, &mut sender, 12);
        sender.compact(12, vec![7; 100]).unwrap();
        // A fresh follower asks for slot 0: below the watermark, so the
        // sender must offer a snapshot, not stream Decides.
        let mut fx: Effects<RsmMsg<u64>, RsmEvent<u64>> = Effects::new();
        let mut ctx = Ctx::new(&env0, Instant::ZERO, &mut fx);
        sender.on_message(&mut ctx, ProcessId(2), RsmMsg::CatchUp { low_slot: 0 });
        let out = fx.take();
        let to_follower: Vec<RsmMsg<u64>> = out
            .sends
            .into_iter()
            .filter(|s| s.to == ProcessId(2))
            .map(|s| s.msg)
            .collect();
        assert!(
            to_follower
                .iter()
                .any(|m| matches!(m, RsmMsg::SnapshotOffer { watermark: 12, .. })),
            "below-watermark catch-up is served by state transfer"
        );
        assert!(
            to_follower
                .iter()
                .any(|m| matches!(m, RsmMsg::SnapshotChunk { .. })),
            "chunks ride along with the offer"
        );

        // The receiver: a fresh replica with its own (empty) stores.
        let env2 = Env::new(ProcessId(2), 3);
        let store2 = StorageHandle::in_memory();
        let snaps2 = SnapshotHandle::in_memory();
        let mut recv: Log = ReplicatedLog::with_storage_and_snapshots(
            &env2,
            ConsensusParams::default(),
            store2.clone(),
            snaps2.clone(),
        )
        .unwrap();
        let mut acks = Vec::new();
        let mut installed = Vec::new();
        for msg in to_follower {
            let mut ctx = Ctx::new(&env2, Instant::ZERO, &mut fx);
            recv.on_message(&mut ctx, ProcessId(0), msg);
            let out = fx.take();
            for s in out.sends {
                if let RsmMsg::SnapshotAck { index, .. } = s.msg {
                    acks.push(index);
                }
            }
            for o in out.outputs {
                if let RsmEvent::SnapshotInstalled { watermark, state } = o {
                    installed.push((watermark, state));
                }
            }
        }
        assert_eq!(
            installed,
            vec![(12, vec![7; 100])],
            "the follower installs the sender's exact state"
        );
        assert_eq!(recv.watermark(), 12);
        assert_eq!(recv.committed_len(), 12);
        assert!(
            acks.contains(&u32::MAX),
            "completion is acked so the sender can retire the transfer: {acks:?}"
        );
        // The install is durable: a crash right after recovers from the
        // installed snapshot.
        drop(recv);
        let recv2: Log = ReplicatedLog::with_storage_and_snapshots(
            &env2,
            ConsensusParams::default(),
            store2,
            snaps2,
        )
        .unwrap();
        assert_eq!(recv2.watermark(), 12, "installed snapshot survives a crash");

        // The completion ack retires the sender's outgoing transfer state.
        let mut ctx = Ctx::new(&env0, Instant::ZERO, &mut fx);
        sender.on_message(
            &mut ctx,
            ProcessId(2),
            RsmMsg::SnapshotAck {
                watermark: 12,
                index: u32::MAX,
            },
        );
        fx.take();
        let mut ctx = Ctx::new(&env0, Instant::ZERO, &mut fx);
        sender.on_timer(&mut ctx, RETRY_TIMER);
        let out = fx.take();
        assert!(
            !out.sends
                .iter()
                .any(|s| matches!(s.msg, RsmMsg::SnapshotChunk { .. })),
            "no further chunk retries after completion"
        );
    }

    #[test]
    fn compaction_converts_unacked_decides_into_snapshot_transfers() {
        use lls_primitives::{SnapshotHandle, StorageHandle};
        // Regression: a decider whose un-acked Decide is compacted away must
        // not go silent — a peer missing the *final* slot has no later
        // chosen slot to trigger its own CatchUp, so in a quiet cluster the
        // decider's retry tick is the only remaining delivery path.
        let env = Env::new(ProcessId(0), 3);
        let mut sm: Log = ReplicatedLog::with_storage_and_snapshots(
            &env,
            ConsensusParams::default(),
            StorageHandle::in_memory(),
            SnapshotHandle::in_memory(),
        )
        .unwrap();
        let mut fx: Effects<RsmMsg<u64>, RsmEvent<u64>> = Effects::new();
        let mut ctx = Ctx::new(&env, Instant::ZERO, &mut fx);
        sm.on_start(&mut ctx);
        fx.take();
        let mut ctx = Ctx::new(&env, Instant::ZERO, &mut fx);
        sm.on_message(
            &mut ctx,
            ProcessId(1),
            RsmMsg::Promise {
                b: b(1, 0),
                accepted: vec![],
                low_slot: 0,
            },
        );
        fx.take();
        assert!(sm.is_established_leader());
        let mut ctx = Ctx::new(&env, Instant::ZERO, &mut fx);
        sm.on_request(&mut ctx, 7);
        fx.take();
        let mut ctx = Ctx::new(&env, Instant::ZERO, &mut fx);
        sm.on_message(
            &mut ctx,
            ProcessId(1),
            RsmMsg::Accepted {
                b: b(1, 0),
                slot: 0,
            },
        );
        fx.take();
        assert!(sm.decide_trackers.contains_key(&0), "slot 0 is tracked");
        // p1 acknowledges the Decide; p2 never does.
        let mut ctx = Ctx::new(&env, Instant::ZERO, &mut fx);
        sm.on_message(&mut ctx, ProcessId(1), RsmMsg::DecideAck { slot: 0 });
        fx.take();
        // Compaction prunes the tracker — but remembers who is still owed.
        sm.compact(1, vec![9; 64]).unwrap();
        assert!(sm.decide_trackers.is_empty());
        let mut ctx = Ctx::new(&env, Instant::ZERO, &mut fx);
        sm.on_timer(&mut ctx, RETRY_TIMER);
        let out = fx.take();
        let offered: Vec<ProcessId> = out
            .sends
            .iter()
            .filter(|s| matches!(s.msg, RsmMsg::SnapshotOffer { watermark: 1, .. }))
            .map(|s| s.to)
            .collect();
        assert_eq!(
            offered,
            vec![ProcessId(2)],
            "only the un-acked peer is served a state transfer"
        );
        assert!(
            !out.sends
                .iter()
                .any(|s| matches!(s.msg, RsmMsg::Decide { slot: 0, .. })),
            "the compacted Decide itself is not (and cannot be) resent"
        );
    }

    #[test]
    fn overheard_frontier_triggers_catchup_for_a_silent_gap() {
        // Regression: p2 misses the final suffix of the log; the decider
        // crashed, so nobody retransmits. The decider rejoins and broadcasts
        // CatchUp { low_slot: 5 } (it wants nothing — it *has* everything
        // below 5). That advert is p2's only evidence the suffix exists.
        let mut h = Harness::new(2, 3);
        h.start();
        // Quiet replica with no local evidence: retry ticks stay silent.
        let mut ctx = Ctx::new(&h.env, Instant::ZERO, &mut h.fx);
        h.sm.on_timer(&mut ctx, RETRY_TIMER);
        assert!(
            !h.fx
                .take()
                .sends
                .iter()
                .any(|s| matches!(s.msg, RsmMsg::CatchUp { .. })),
            "no catch-up without evidence of missing slots"
        );
        h.deliver(0, RsmMsg::CatchUp { low_slot: 5 });
        let mut ctx = Ctx::new(&h.env, Instant::ZERO, &mut h.fx);
        h.sm.on_timer(&mut ctx, RETRY_TIMER);
        let out = h.fx.take();
        assert!(
            out.sends
                .iter()
                .any(|s| matches!(s.msg, RsmMsg::CatchUp { low_slot: 0 })),
            "an overheard frontier above the cursor asks the cluster: {:?}",
            out.sends
        );
    }

    #[test]
    fn corrupt_chunk_is_ignored_and_retried_round_resends_it() {
        use lls_primitives::{SnapshotHandle, StorageHandle};
        let env0 = Env::new(ProcessId(0), 3);
        let mut sender: Log = ReplicatedLog::with_storage_and_snapshots(
            &env0,
            ConsensusParams::default(),
            StorageHandle::in_memory(),
            SnapshotHandle::in_memory(),
        )
        .unwrap();
        decide_prefix(&env0, &mut sender, 4);
        // A state large enough for several chunks.
        sender.compact(4, vec![9; 80 * 1024]).unwrap();
        let mut fx: Effects<RsmMsg<u64>, RsmEvent<u64>> = Effects::new();
        let mut ctx = Ctx::new(&env0, Instant::ZERO, &mut fx);
        sender.on_message(&mut ctx, ProcessId(2), RsmMsg::CatchUp { low_slot: 0 });
        let out = fx.take();
        let chunks: Vec<RsmMsg<u64>> = out
            .sends
            .into_iter()
            .filter(|s| matches!(s.msg, RsmMsg::SnapshotChunk { .. }))
            .map(|s| s.msg)
            .collect();
        assert!(
            chunks.len() >= 3,
            "32 KiB chunking: {} chunks",
            chunks.len()
        );

        let env2 = Env::new(ProcessId(2), 3);
        let mut recv: Log = ReplicatedLog::with_storage_and_snapshots(
            &env2,
            ConsensusParams::default(),
            StorageHandle::in_memory(),
            SnapshotHandle::in_memory(),
        )
        .unwrap();
        // Corrupt the first chunk's payload; its CRC no longer matches.
        let mut corrupted = chunks.clone();
        if let RsmMsg::SnapshotChunk { data, .. } = &mut corrupted[0] {
            data[0] ^= 0xFF;
        }
        for msg in corrupted {
            let mut ctx = Ctx::new(&env2, Instant::ZERO, &mut fx);
            recv.on_message(&mut ctx, ProcessId(0), msg);
            fx.take();
        }
        assert_eq!(
            recv.watermark(),
            0,
            "a transfer with a corrupt chunk must not install"
        );
        // Redelivering the genuine first chunk completes the transfer.
        let mut ctx = Ctx::new(&env2, Instant::ZERO, &mut fx);
        recv.on_message(&mut ctx, ProcessId(0), chunks[0].clone());
        let out = fx.take();
        assert!(
            out.outputs
                .iter()
                .any(|o| matches!(o, RsmEvent::SnapshotInstalled { watermark: 4, .. })),
            "the repaired chunk completes the install"
        );
        assert_eq!(recv.watermark(), 4);
    }

    #[test]
    fn decides_below_the_watermark_are_dropped() {
        use lls_primitives::{SnapshotHandle, StorageHandle};
        let env = Env::new(ProcessId(1), 3);
        let mut sm: Log = ReplicatedLog::with_storage_and_snapshots(
            &env,
            ConsensusParams::default(),
            StorageHandle::in_memory(),
            SnapshotHandle::in_memory(),
        )
        .unwrap();
        decide_prefix(&env, &mut sm, 6);
        sm.compact(6, vec![]).unwrap();
        let mut fx: Effects<RsmMsg<u64>, RsmEvent<u64>> = Effects::new();
        let mut ctx = Ctx::new(&env, Instant::ZERO, &mut fx);
        sm.on_message(
            &mut ctx,
            ProcessId(0),
            RsmMsg::Decide {
                slot: 2,
                entry: Entry::Cmd(999),
            },
        );
        let out = fx.take();
        assert!(
            out.outputs.is_empty(),
            "a pre-watermark Decide re-emits nothing"
        );
        assert_eq!(sm.chosen(2), None, "and is not re-admitted into the log");
    }

    // ---- Leader leases and the fast read path ----

    use crate::single::LeaseParams;

    fn t(ticks: u64) -> Instant {
        Instant::from_ticks(ticks)
    }

    /// Defaults with leases on: duration 120, skew 8 — blackout ends at
    /// tick 128, serving margin 112, holdoff margin 128.
    fn lease_params() -> ConsensusParams {
        ConsensusParams {
            lease: LeaseParams::enabled(),
            ..ConsensusParams::default()
        }
    }

    /// Drives p0 to `Led` *after* the boot blackout (leases delay the first
    /// election by one lease + skew): start at 0, retry tick at 200 starts
    /// the prepare, p1's promise completes the quorum.
    fn led_leaseholder() -> Harness {
        let mut h = Harness::with_params(0, 3, lease_params());
        h.start();
        let out = h.retry_at(t(200));
        assert!(
            out.sends
                .iter()
                .any(|s| matches!(s.msg, RsmMsg::Prepare { .. })),
            "the blackout has expired; the retry tick starts the prepare"
        );
        h.deliver_at(
            t(201),
            1,
            RsmMsg::Promise {
                b: b(1, 0),
                accepted: vec![],
                low_slot: 0,
            },
        );
        assert!(h.sm.is_established_leader());
        h
    }

    #[test]
    fn boot_blackout_delays_the_first_election() {
        let mut h = Harness::with_params(0, 3, lease_params());
        let out = h.start();
        assert!(
            !out.sends
                .iter()
                .any(|s| matches!(s.msg, RsmMsg::Prepare { .. })),
            "no prepare may start inside the boot blackout"
        );
        let out = h.retry_at(t(40));
        assert!(
            !out.sends
                .iter()
                .any(|s| matches!(s.msg, RsmMsg::Prepare { .. })),
            "still inside the blackout at tick 40"
        );
        let out = h.retry_at(t(129));
        assert!(
            out.sends
                .iter()
                .any(|s| matches!(s.msg, RsmMsg::Prepare { .. })),
            "the first tick past duration+skew may elect"
        );
    }

    #[test]
    fn lease_activates_on_quorum_ack_and_expires_conservatively() {
        let mut h = led_leaseholder();
        assert!(!h.sm.lease_read_allowed(t(201)), "no grant round yet");
        let out = h.retry_at(t(210));
        let grants = out
            .sends
            .iter()
            .filter(|s| matches!(s.msg, RsmMsg::LeaseGrant { seq: 1, .. }))
            .count();
        assert_eq!(grants, 2, "one grant per peer, riding the retry tick");
        assert!(
            !h.sm.lease_read_allowed(t(210)),
            "a self-ack alone is not a quorum at n=3"
        );
        h.deliver_at(t(211), 1, RsmMsg::LeaseAck { b: b(1, 0), seq: 1 });
        assert!(h.sm.lease_read_allowed(t(211)));
        // Serving window: round_start (210) + duration (120) - skew (8).
        assert_eq!(h.sm.lease_active_until(), Some(t(322)));
        assert!(h.sm.lease_read_allowed(t(321)));
        assert!(
            !h.sm.lease_read_allowed(t(322)),
            "the conservative local expiry is exclusive"
        );
    }

    #[test]
    fn stale_lease_acks_do_not_activate() {
        let mut h = led_leaseholder();
        h.retry_at(t(210));
        h.retry_at(t(250)); // seq 2 supersedes seq 1
        h.deliver_at(t(251), 1, RsmMsg::LeaseAck { b: b(1, 0), seq: 1 });
        assert!(
            !h.sm.lease_read_allowed(t(251)),
            "an ack of a superseded round must not activate the lease"
        );
        h.deliver_at(t(252), 2, RsmMsg::LeaseAck { b: b(1, 0), seq: 2 });
        assert!(h.sm.lease_read_allowed(t(252)));
    }

    #[test]
    fn granter_nacks_competing_prepares_until_holdoff_expires() {
        let mut h = Harness::with_params(1, 3, lease_params());
        h.start();
        // p0's established leader grants at tick 200: holdoff until
        // 200 + 120 + 8 = 328 on p1's clock.
        let out = h.deliver_at(t(200), 0, RsmMsg::LeaseGrant { b: b(1, 0), seq: 1 });
        assert!(
            out.sends
                .iter()
                .any(|s| s.to == ProcessId(0) && matches!(s.msg, RsmMsg::LeaseAck { seq: 1, .. })),
            "the grant is acked"
        );
        // A competing prepare from p2 is refused while the holdoff runs...
        let out = h.deliver_at(
            t(250),
            2,
            RsmMsg::Prepare {
                b: b(2, 2),
                from_slot: 0,
            },
        );
        assert!(
            out.sends
                .iter()
                .any(|s| s.to == ProcessId(2) && matches!(s.msg, RsmMsg::Nack { .. })),
            "competing prepare must be nacked during the holdoff"
        );
        assert!(
            !out.sends
                .iter()
                .any(|s| matches!(s.msg, RsmMsg::Promise { .. })),
            "and certainly not promised"
        );
        // ...while the holder itself may re-prepare (e.g. after a view
        // change bumps its round)...
        let out = h.deliver_at(
            t(251),
            0,
            RsmMsg::Prepare {
                b: b(3, 0),
                from_slot: 0,
            },
        );
        assert!(
            out.sends
                .iter()
                .any(|s| s.to == ProcessId(0) && matches!(s.msg, RsmMsg::Promise { .. })),
            "the leaseholder's own prepare passes the gate"
        );
        // ...and once the holdoff expires, anyone may.
        let out = h.deliver_at(
            t(400),
            2,
            RsmMsg::Prepare {
                b: b(4, 2),
                from_slot: 0,
            },
        );
        assert!(
            out.sends
                .iter()
                .any(|s| s.to == ProcessId(2) && matches!(s.msg, RsmMsg::Promise { .. })),
            "after expiry the competing prepare is promised"
        );
    }

    #[test]
    fn deposed_leader_grant_is_nacked_and_abdication_drops_the_lease() {
        // Granter p1 has already promised a higher ballot: the old leader's
        // renewal must be refused so it learns and abdicates.
        let mut h = Harness::with_params(1, 3, lease_params());
        h.start();
        h.deliver_at(
            t(200),
            2,
            RsmMsg::Prepare {
                b: b(2, 2),
                from_slot: 0,
            },
        );
        let out = h.deliver_at(t(210), 0, RsmMsg::LeaseGrant { b: b(1, 0), seq: 4 });
        assert!(
            out.sends
                .iter()
                .any(|s| s.to == ProcessId(0) && matches!(s.msg, RsmMsg::Nack { .. })),
            "a grant under a superseded ballot is nacked"
        );
        assert!(
            !out.sends
                .iter()
                .any(|s| matches!(s.msg, RsmMsg::LeaseAck { .. })),
            "and never acked"
        );
        // The old leader, holding an active lease, abdicates on that Nack
        // and must stop serving immediately.
        let mut leader = led_leaseholder();
        leader.retry_at(t(210));
        leader.deliver_at(t(211), 1, RsmMsg::LeaseAck { b: b(1, 0), seq: 1 });
        assert!(leader.sm.lease_read_allowed(t(212)));
        leader.deliver_at(
            t(213),
            1,
            RsmMsg::Nack {
                b: b(1, 0),
                higher: b(2, 2),
            },
        );
        assert!(
            !leader.sm.lease_read_allowed(t(214)),
            "abdication must drop the lease with it"
        );
    }

    #[test]
    fn newer_leaders_grant_deposes_a_stale_leader_and_keeps_its_holdoff() {
        // Regression: a stale leader that acks a newer leader's grant must
        // not usurp the holdoff it now owes. Before the fix, its next
        // retry tick ran lease_tick, flipped `holdoff_for` back to itself
        // while max-extending `holdoff_until`, and after abdicating it
        // could elect itself inside the new holder's live lease window —
        // overlapping leases at n >= 5.
        let mut h = led_leaseholder();
        h.retry_at(t(210)); // p0 self-grants: holdoff_for = p0 until 338
        h.deliver_at(t(211), 1, RsmMsg::LeaseAck { b: b(1, 0), seq: 1 });
        assert!(h.sm.lease_read_allowed(t(212)));
        // p1 won ballot (2, 1) elsewhere and now grants its lease to p0.
        let out = h.deliver_at(t(230), 1, RsmMsg::LeaseGrant { b: b(2, 1), seq: 1 });
        assert!(
            out.sends
                .iter()
                .any(|s| s.to == ProcessId(1) && matches!(s.msg, RsmMsg::LeaseAck { seq: 1, .. })),
            "the outranking grant is acked"
        );
        assert!(
            !h.sm.is_established_leader(),
            "the outranking grant deposes the stale leader before the ack"
        );
        assert!(
            !h.sm.lease_read_allowed(t(231)),
            "deposed means no more lease-reads"
        );
        // The next retry tick must neither renew the old lease nor start a
        // competing prepare inside p1's holdoff (230 + 128 = 358).
        let out = h.retry_at(t(240));
        assert!(
            !out.sends
                .iter()
                .any(|s| matches!(s.msg, RsmMsg::LeaseGrant { .. } | RsmMsg::Prepare { .. })),
            "no self-grant and no election while holding off for p1"
        );
        let out = h.retry_at(t(300));
        assert!(
            !out.sends
                .iter()
                .any(|s| matches!(s.msg, RsmMsg::Prepare { .. })),
            "still holding off for p1 deep into its lease window"
        );
        // Once p1's holdoff expires, p0 may run for election again.
        let out = h.retry_at(t(360));
        assert!(
            out.sends
                .iter()
                .any(|s| matches!(s.msg, RsmMsg::Prepare { .. })),
            "liveness: elections resume after the owed holdoff expires"
        );
    }

    #[test]
    fn lease_tick_never_usurps_a_holdoff_owed_to_another() {
        // Belt and braces for the same regression, exercising the
        // lease_tick guard directly (white-box: the deposing LeaseGrant
        // handler makes Led-while-owing unreachable through messages,
        // which is exactly what this guard backstops).
        let mut h = led_leaseholder();
        h.sm.holdoff_for = Some(ProcessId(1));
        h.sm.holdoff_until = t(400);
        let out = h.retry_at(t(210));
        assert!(
            !out.sends
                .iter()
                .any(|s| matches!(s.msg, RsmMsg::LeaseGrant { .. })),
            "no grant round may start inside an owed holdoff"
        );
        assert_eq!(
            h.sm.holdoff_for,
            Some(ProcessId(1)),
            "the owed holdoff is not replaced by a self-grant"
        );
        // Once the owed holdoff expires, renewals resume.
        let out = h.retry_at(t(410));
        assert!(
            out.sends
                .iter()
                .any(|s| matches!(s.msg, RsmMsg::LeaseGrant { .. })),
            "renewals resume once the owed holdoff expires"
        );
        assert_eq!(h.sm.holdoff_for, Some(ProcessId(0)));
    }

    #[test]
    fn read_index_is_answered_only_under_an_active_lease() {
        let mut h = led_leaseholder();
        let out = h.deliver_at(t(205), 2, RsmMsg::ReadIndex { req: 7 });
        assert!(
            out.sends.is_empty(),
            "no lease yet: the read-index request is dropped, not answered"
        );
        h.retry_at(t(210));
        h.deliver_at(t(211), 1, RsmMsg::LeaseAck { b: b(1, 0), seq: 1 });
        let out = h.deliver_at(t(212), 2, RsmMsg::ReadIndex { req: 7 });
        assert!(
            out.sends
                .iter()
                .any(|s| s.to == ProcessId(2)
                    && s.msg == RsmMsg::ReadIndexReply { req: 7, index: 0 }),
            "a leaseholder answers with its committed length"
        );
        // Past the serving window the same request is dropped again.
        let out = h.deliver_at(t(500), 2, RsmMsg::ReadIndex { req: 8 });
        assert!(
            out.sends.is_empty(),
            "an expired lease must not certify reads"
        );
    }

    #[test]
    fn request_read_index_is_synchronous_on_the_leaseholder() {
        let mut h = led_leaseholder();
        h.retry_at(t(210));
        h.deliver_at(t(211), 1, RsmMsg::LeaseAck { b: b(1, 0), seq: 1 });
        let mut ctx = Ctx::new(&h.env, t(212), &mut h.fx);
        h.sm.request_read_index(&mut ctx, 42);
        let out = h.fx.take();
        assert!(
            out.outputs
                .contains(&RsmEvent::ReadIndexAt { req: 42, index: 0 }),
            "the leaseholder certifies its own reads synchronously"
        );
        assert!(out.sends.is_empty());
    }

    #[test]
    fn skew_inversion_widens_the_serving_window_past_the_holdoff() {
        // The sabotage switch recreates the classic broken lease: the
        // leader serves until +skew while granters free themselves at
        // -skew — the E23 violation plane depends on this inversion.
        let params = ConsensusParams {
            lease: LeaseParams {
                unsafe_skew_inversion: true,
                ..LeaseParams::enabled()
            },
            ..ConsensusParams::default()
        };
        let mut h = Harness::with_params(0, 3, params);
        h.start();
        h.retry_at(t(200));
        h.deliver_at(
            t(201),
            1,
            RsmMsg::Promise {
                b: b(1, 0),
                accepted: vec![],
                low_slot: 0,
            },
        );
        h.retry_at(t(210));
        h.deliver_at(t(211), 1, RsmMsg::LeaseAck { b: b(1, 0), seq: 1 });
        // Broken serving window: 210 + 120 + 8 = 338 (safe: 322).
        assert_eq!(h.sm.lease_active_until(), Some(t(338)));
        // Broken granter holdoff, receiving side: a grant at 210 frees the
        // granter at 210 + 120 - 8 = 322 < 338 — the stale-read gap.
        let mut g = Harness::with_params(1, 3, params);
        g.start();
        g.deliver_at(t(210), 0, RsmMsg::LeaseGrant { b: b(1, 0), seq: 1 });
        let out = g.deliver_at(
            t(330),
            2,
            RsmMsg::Prepare {
                b: b(2, 2),
                from_slot: 0,
            },
        );
        assert!(
            out.sends
                .iter()
                .any(|s| s.to == ProcessId(2) && matches!(s.msg, RsmMsg::Promise { .. })),
            "the broken granter frees itself while the leader still serves"
        );
    }
}
